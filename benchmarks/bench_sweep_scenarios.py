"""Sweep catalog — the new workload shapes beyond the paper's grid.

Runs the flash-crowd, diurnal, and provider-churn-stress scenarios for
the paper's three methods through the sweep subsystem and prints the
per-(scenario, method) summary table (means and p50/p90 quantiles
across seeds).

Shape claims: the overload burst actually stresses the system (churn
response times dominate the captive shapes), and SQLB's feedback loop
retains providers at least as well as the capacity baseline under
churn — the paper's Figure 5(c) ordering, transplanted to the harder
workload.
"""

from __future__ import annotations

from conftest import BENCH_SEEDS

from repro.experiments.executor import get_default_executor
from repro.simulation.config import scaled_config
from repro.sweeps import SweepSpec, format_sweep_table, sweep_summary

NEW_SCENARIOS = ("flash_crowd", "diurnal", "provider_churn_stress")


def run_sweep():
    spec = SweepSpec(
        name="bench-new-workloads",
        scenarios=NEW_SCENARIOS,
        methods=("sqlb", "capacity", "mariposa"),
        seeds=BENCH_SEEDS,
        scale="scaled",
    )
    summaries = sweep_summary(
        spec,
        executor=get_default_executor(),
        base=scaled_config(duration=600.0),
    )
    return spec, summaries


def test_sweep_new_workload_scenarios(benchmark, report_writer):
    spec, summaries = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    report_writer(
        "sweep_new_workloads",
        f"# sweep: {spec.name}   spec: {spec.spec_hash()}\n"
        + format_sweep_table(summaries),
    )

    cells = {(row.scenario, row.method): row for row in summaries}
    assert len(cells) == 9
    for row in cells.values():
        assert row.response_time_mean > 0.0
        assert (
            row.response_time_quantiles[0.5] <= row.response_time_quantiles[0.9]
        )

    # The 120 % overload burst must bite harder than the captive shapes.
    for method in ("sqlb", "capacity", "mariposa"):
        churn = cells[("provider_churn_stress", method)]
        assert (
            churn.response_time_mean
            >= cells[("diurnal", method)].response_time_mean
        ) or churn.provider_departure_fraction > 0.0

    # Figure 5(c) ordering under churn: SQLB keeps at least as many
    # providers on board as the capacity baseline.
    assert (
        cells[("provider_churn_stress", "sqlb")].provider_departure_fraction
        <= cells[
            ("provider_churn_stress", "capacity")
        ].provider_departure_fraction
        + 1e-9
    )
