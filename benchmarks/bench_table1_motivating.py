"""Table 1 / Section 1.1 — the motivating eWine scenario.

Five providers with binary intentions (Table 1 of the paper); eWine
wants two proposals.  Current QLB methods fail here (they would pick
p1/p2 on available capacity); SQLB must surface p5 — the only provider
wanted by both sides — at the top of the ranking.
"""

from __future__ import annotations

import numpy as np

from repro.core.sqlb import allocate_query
from repro.experiments.report import format_curve_table

# Table 1 of the paper: (provider intention, consumer intention,
# available capacity).  Intentions are binary in the example; "Yes"
# maps to +1 and "No" to -1, and p5 is overloaded (capacity 0).
TABLE_1 = {
    "p1": (+1.0, -1.0, 0.85),
    "p2": (-1.0, +1.0, 0.57),
    "p3": (+1.0, -1.0, 0.22),
    "p4": (-1.0, +1.0, 0.15),
    "p5": (+1.0, +1.0, 0.00),
}


def _allocate():
    providers = list(TABLE_1)
    pi = np.array([TABLE_1[p][0] for p in providers])
    ci = np.array([TABLE_1[p][1] for p in providers])
    return providers, allocate_query(
        provider_intentions=pi,
        consumer_intentions=ci,
        consumer_satisfaction=0.5,
        provider_satisfactions=np.full(5, 0.5),
        n_desired=2,
        rng=np.random.default_rng(0),
    )


def test_table1_sqlb_resolves_the_motivating_scenario(
    benchmark, report_writer
):
    providers, allocation = benchmark(_allocate)

    ranked = [providers[i] for i in allocation.ranking]
    report_writer(
        "table1_motivating",
        format_curve_table(
            range(len(providers)),
            {"score": allocation.scores[allocation.ranking]},
            value_label=(
                "Table 1 scenario -- SQLB ranking: " + " > ".join(ranked)
            ),
            x_label="rank",
            x_scale=1.0,
        ),
    )

    # p5 is the only provider with mutual positive intentions: it must
    # be ranked first despite having no available capacity (the paper's
    # point: capacity alone cannot decide here).
    assert ranked[0] == "p5"
    # The query is allocated to exactly q.n = 2 providers.
    assert allocation.selected.size == 2
    # p5's score is the only positive one.
    assert allocation.scores[allocation.ranking[0]] > 0
    assert (allocation.scores[allocation.ranking[1:]] < 0).all()
