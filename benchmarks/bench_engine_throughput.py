"""Micro-benchmark — end-to-end mediator throughput.

Documents how many queries per second the full pipeline (intentions →
scoring → allocation → queues → satisfaction model) sustains for each
method, which bounds what horizon/population the experiments can use.
"""

from __future__ import annotations

import pytest

from repro.simulation.config import WorkloadSpec, scaled_config
from repro.simulation.engine import run_simulation


@pytest.mark.parametrize("method", ["sqlb", "capacity", "mariposa"])
def test_engine_throughput(benchmark, method):
    config = scaled_config(
        duration=120.0, workload=WorkloadSpec.fixed(0.8)
    )
    result = benchmark.pedantic(
        run_simulation,
        args=(config, method),
        kwargs={"seed": 1},
        rounds=1,
        iterations=1,
    )
    assert result.queries_served > 1000
