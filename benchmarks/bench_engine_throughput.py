"""Micro-benchmark — end-to-end mediator throughput.

Documents how many queries per second the full pipeline (intentions →
scoring → allocation → queues → satisfaction model) sustains on the
engine's *standard perf matrix* (captive + autonomous, small +
paper-scale populations; see ``repro.experiments.perf``), which bounds
what horizon/population the experiments can use.  The committed
``BENCH_engine.json`` holds the reference numbers; ``repro perf``
regenerates them and checks regressions.
"""

from __future__ import annotations

import pytest

from repro.experiments.perf import PERF_MATRIX, PERF_METHODS
from repro.simulation.engine import run_simulation

_CELLS = {cell.name: cell for cell in PERF_MATRIX}


@pytest.mark.parametrize("method", PERF_METHODS)
@pytest.mark.parametrize("cell", sorted(_CELLS))
def test_engine_throughput(benchmark, cell, method):
    config = _CELLS[cell].build()
    result = benchmark.pedantic(
        run_simulation,
        args=(config, method),
        kwargs={"seed": 1},
        rounds=1,
        iterations=1,
    )
    assert result.queries_served > 1000
