"""Figure 5(c) — % of provider departures vs workload (all reasons).

Paper shape: the baselines lose most of their providers at nearly every
workload, while SQLB loses only a modest fraction (≈28 % on average in
the paper) — it keeps the participants the system needs.
"""

from __future__ import annotations

import numpy as np

from conftest import BENCH_SEEDS, BENCH_WORKLOADS, bench_config

from repro.experiments.autonomy import provider_departure_curve
from repro.experiments.report import format_curve_table


def test_fig5c_provider_departures(benchmark, report_writer):
    curve = benchmark.pedantic(
        provider_departure_curve,
        kwargs={
            "config": bench_config(),
            "seeds": BENCH_SEEDS,
            "workloads": BENCH_WORKLOADS,
        },
        rounds=1,
        iterations=1,
    )
    percents = {m: 100.0 * v for m, v in curve.items()}
    report_writer(
        "fig5c_provider_departures",
        format_curve_table(
            BENCH_WORKLOADS,
            percents,
            value_label="Fig 5(c): provider departures (%)",
            precision=1,
        ),
    )

    sqlb = curve["sqlb"]
    capacity = curve["capacity"]
    mariposa = curve["mariposa"]
    # SQLB retains more providers than either baseline across the
    # mid-range workloads.  (At the extremes our scaled reproduction
    # deviates: SQLB's preference concentration also bleeds providers
    # at 20 % and at full saturation — see EXPERIMENTS.md.)
    mid = [i for i, w in enumerate(BENCH_WORKLOADS) if 0.3 <= w <= 0.9]
    assert (sqlb[mid] <= capacity[mid] + 1e-9).all()
    assert (sqlb[mid] <= mariposa[mid] + 1e-9).all()
    # Averages over the mid-range: SQLB moderate, baselines heavy
    # (paper: 28 % vs almost all).
    assert float(np.mean(sqlb[mid])) < 0.50
    assert float(np.mean(capacity[mid])) > 0.45
    assert float(np.mean(mariposa[mid])) > 0.45
