"""Micro-benchmark — vectorised vs scalar scoring (DESIGN.md §4).

The simulator scores every candidate provider per query; this bench
documents the speedup of the NumPy path over the scalar reference
implementation (and re-checks they agree on the benched inputs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scoring import provider_score, provider_score_vector

N_PROVIDERS = 400  # the paper-scale candidate set


@pytest.fixture(scope="module")
def inputs():
    rng = np.random.default_rng(5)
    pi = rng.uniform(-1, 1, N_PROVIDERS)
    ci = rng.uniform(-1, 1, N_PROVIDERS)
    om = rng.uniform(0, 1, N_PROVIDERS)
    return pi, ci, om


def test_scalar_scoring_reference(benchmark, inputs):
    pi, ci, om = inputs

    def scalar():
        return [
            provider_score(pi[i], ci[i], om[i]) for i in range(N_PROVIDERS)
        ]

    result = benchmark(scalar)
    assert len(result) == N_PROVIDERS


def test_vectorized_scoring_matches_and_is_fast(benchmark, inputs):
    pi, ci, om = inputs
    result = benchmark(provider_score_vector, pi, ci, om)
    expected = [
        provider_score(pi[i], ci[i], om[i]) for i in range(N_PROVIDERS)
    ]
    assert np.allclose(result, expected)
