"""Ablation — Definition 8's satisfaction-driven trade-off.

DESIGN.md §4: a provider balances preference against utilisation *by
its own satisfaction*.  We pin that satisfaction to 0 (pure preference
chasing) and 1 (pure load shedding) and compare with the live adaptive
value at a fixed 80 % workload.

Expected: pure preference chasing wrecks load balance (queries pile on
the adapted providers → higher response times); pure load shedding
wrecks preference-based satisfaction; the adaptive rule holds both.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import BENCH_SEEDS, bench_config

from repro.experiments.harness import run_method_family
from repro.experiments.report import format_curve_table
from repro.simulation.config import WorkloadSpec


def _run_variants():
    base = bench_config().with_workload(WorkloadSpec.fixed(0.8))
    variants = {
        "adaptive": base,
        "pref_only": replace(base, fixed_provider_satisfaction=0.0),
        "load_only": replace(base, fixed_provider_satisfaction=1.0),
    }
    results = {}
    for label, config in variants.items():
        family = run_method_family(config, ("sqlb",), BENCH_SEEDS)
        averages = family["sqlb"]
        results[label] = {
            "pref_satisfaction": averages.series(
                "provider_preference_satisfaction_mean"
            )[-1],
            "response_time": averages.response_time(),
            "utilization_fairness": averages.series(
                "utilization_fairness"
            )[-1],
        }
    return results


def test_ablation_provider_intention(benchmark, report_writer):
    results = benchmark.pedantic(_run_variants, rounds=1, iterations=1)

    labels = list(results)
    report_writer(
        "ablation_provider_intention",
        format_curve_table(
            range(len(labels)),
            {
                metric: [results[label][metric] for label in labels]
                for metric in (
                    "pref_satisfaction",
                    "response_time",
                    "utilization_fairness",
                )
            },
            value_label=(
                "Ablation: Definition 8 variants " + " / ".join(labels)
            ),
            x_label="variant#",
            x_scale=1.0,
        ),
    )

    # Chasing preferences only costs response time vs load-only.
    assert (
        results["pref_only"]["response_time"]
        > results["load_only"]["response_time"]
    )
    # Shedding load only costs preference satisfaction.
    assert (
        results["pref_only"]["pref_satisfaction"]
        > results["load_only"]["pref_satisfaction"]
    )
    # The adaptive rule keeps preference satisfaction near the
    # preference-chasing variant at a lower response-time cost.
    assert (
        results["adaptive"]["pref_satisfaction"]
        > results["load_only"]["pref_satisfaction"]
    )
    assert (
        results["adaptive"]["response_time"]
        < results["pref_only"]["response_time"]
    )
