"""Figure 6 — % of consumer departures by dissatisfaction vs workload.

Paper shape: SQLB is "a clear winner with no consumer departures";
both baselines lose more than 20 % of consumers at every workload.
"""

from __future__ import annotations

import numpy as np

from conftest import BENCH_SEEDS, BENCH_WORKLOADS, bench_config

from repro.experiments.autonomy import consumer_departure_curve
from repro.experiments.report import format_curve_table


def test_fig6_consumer_departures(benchmark, report_writer):
    curve = benchmark.pedantic(
        consumer_departure_curve,
        kwargs={
            "config": bench_config(),
            "seeds": BENCH_SEEDS,
            "workloads": BENCH_WORKLOADS,
        },
        rounds=1,
        iterations=1,
    )
    percents = {m: 100.0 * v for m, v in curve.items()}
    report_writer(
        "fig6_consumer_departures",
        format_curve_table(
            BENCH_WORKLOADS,
            percents,
            value_label="Fig 6: consumer departures (%)",
            precision=1,
        ),
    )

    # SQLB: no consumer departures at any workload.
    assert (curve["sqlb"] == 0.0).all()
    # The baselines punish consumers and lose a substantial share.
    assert float(np.mean(curve["capacity"])) > 0.20
    assert float(np.mean(curve["mariposa"])) > 0.20
