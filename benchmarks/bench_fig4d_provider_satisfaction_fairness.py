"""Figure 4(d) — f(δs, P): provider satisfaction fairness.

Paper shape: all three methods guarantee roughly the same satisfaction
fairness (which, the paper stresses, does *not* mean providers are
equally satisfied — see Figures 4(a)-(c)).
"""

from __future__ import annotations

import itertools

from _shape import series_report, tail_mean
from conftest import BENCH_SEEDS, ramp_config

from repro.experiments.captive import captive_ramp


def test_fig4d_provider_satisfaction_fairness(benchmark, report_writer):
    family = benchmark.pedantic(
        captive_ramp,
        kwargs={"config": ramp_config(), "seeds": BENCH_SEEDS},
        rounds=1,
        iterations=1,
    )
    series = "provider_intention_satisfaction_fairness"
    report_writer(
        "fig4d_provider_satisfaction_fairness",
        series_report(family, series, "Fig 4(d): f(δs, P)"),
    )

    tails = {
        method: tail_mean(family[method].series(series))
        for method in family
    }
    for value in tails.values():
        assert 0.0 < value <= 1.0
    # "Almost the same satisfaction fairness" across methods.
    for a, b in itertools.combinations(tails.values(), 2):
        assert abs(a - b) < 0.40
