"""Figure 4(b) — µ(δs, P) based on *preferences* (what providers feel).

Paper shape: SQLB matches Mariposa-like (both route queries towards the
providers that want them) and both clearly beat Capacity based, which
is preference-blind.
"""

from __future__ import annotations

from _shape import series_report, tail_mean
from conftest import BENCH_SEEDS, ramp_config

from repro.experiments.captive import captive_ramp


def test_fig4b_provider_satisfaction_mean_preferences(
    benchmark, report_writer
):
    family = benchmark.pedantic(
        captive_ramp,
        kwargs={"config": ramp_config(), "seeds": BENCH_SEEDS},
        rounds=1,
        iterations=1,
    )
    series = "provider_preference_satisfaction_mean"
    report_writer(
        "fig4b_provider_satisfaction_preferences",
        series_report(family, series, "Fig 4(b): µ(δs, P), preference-based"),
    )

    sqlb = tail_mean(family["sqlb"].series(series))
    capacity = tail_mean(family["capacity"].series(series))
    mariposa = tail_mean(family["mariposa"].series(series))
    assert sqlb > capacity
    assert mariposa > capacity
    # SQLB trails Mariposa by at most a modest margin (the paper reports
    # them equal even though SQLB also serves consumer intentions).
    assert sqlb > 0.75 * mariposa
