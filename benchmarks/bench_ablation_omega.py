"""Ablation — Equation 6's dynamic ω versus fixed ω.

DESIGN.md §4: does recomputing ω from live satisfactions (the paper's
equity mechanism) actually matter?  We pin ω to 0 (consumer-only),
0.5 (static balance), and 1 (provider-only) and compare against the
adaptive Equation 6 at a fixed 80 % workload.

Expected: ω = 0 maximises consumer satisfaction at the providers'
expense, ω = 1 the reverse; Equation 6 sits between the extremes on
*both* sides — the balanced regime neither fixed setting delivers.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import BENCH_SEEDS, bench_config

from repro.experiments.harness import run_method_family
from repro.experiments.report import format_curve_table
from repro.simulation.config import WorkloadSpec


def _run_variants():
    base = bench_config().with_workload(WorkloadSpec.fixed(0.8))
    variants = {
        "eq6": base,
        "w0": replace(base, fixed_omega=0.0),
        "w05": replace(base, fixed_omega=0.5),
        "w1": replace(base, fixed_omega=1.0),
    }
    results = {}
    for label, config in variants.items():
        family = run_method_family(config, ("sqlb",), BENCH_SEEDS)
        averages = family["sqlb"]
        results[label] = {
            "consumer_satisfaction": averages.series(
                "consumer_satisfaction_mean"
            )[-1],
            "provider_satisfaction": averages.series(
                "provider_intention_satisfaction_mean"
            )[-1],
            "response_time": averages.response_time(),
        }
    return results


def test_ablation_omega(benchmark, report_writer):
    results = benchmark.pedantic(_run_variants, rounds=1, iterations=1)

    labels = list(results)
    report_writer(
        "ablation_omega",
        format_curve_table(
            range(len(labels)),
            {
                metric: [results[label][metric] for label in labels]
                for metric in (
                    "consumer_satisfaction",
                    "provider_satisfaction",
                    "response_time",
                )
            },
            value_label=(
                "Ablation: omega variants " + " / ".join(labels)
            ),
            x_label="variant#",
            x_scale=1.0,
        ),
    )

    # ω = 0 serves consumers better than ω = 1, and vice versa.
    assert (
        results["w0"]["consumer_satisfaction"]
        > results["w1"]["consumer_satisfaction"]
    )
    assert (
        results["w1"]["provider_satisfaction"]
        > results["w0"]["provider_satisfaction"]
    )
    # Equation 6 dominates both extremes' weak side.
    assert (
        results["eq6"]["consumer_satisfaction"]
        > results["w1"]["consumer_satisfaction"]
    )
    assert (
        results["eq6"]["provider_satisfaction"]
        > results["w0"]["provider_satisfaction"]
    )
