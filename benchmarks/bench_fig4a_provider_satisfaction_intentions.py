"""Figure 4(a) — µ(δs, P) based on intentions, captive 30→100 % ramp.

Paper shape: providers are most satisfied under SQLB; the baselines
ignore intentions and sit lower from the start; SQLB's curve decreases
as the workload ramps (loaded providers' intentions turn negative).
"""

from __future__ import annotations

from _shape import series_report, tail_mean
from conftest import BENCH_SEEDS, ramp_config

from repro.experiments.captive import captive_ramp


def test_fig4a_provider_satisfaction_mean_intentions(
    benchmark, report_writer
):
    family = benchmark.pedantic(
        captive_ramp,
        kwargs={"config": ramp_config(), "seeds": BENCH_SEEDS},
        rounds=1,
        iterations=1,
    )
    series = "provider_intention_satisfaction_mean"
    report_writer(
        "fig4a_provider_satisfaction_intentions",
        series_report(family, series, "Fig 4(a): µ(δs, P), intention-based"),
    )

    sqlb = family["sqlb"].series(series)
    capacity = family["capacity"].series(series)
    mariposa = family["mariposa"].series(series)
    # SQLB satisfies provider intentions best (the paper's headline for
    # this figure).  The paper additionally shows SQLB *declining* from
    # a high initial value as the ramp loads providers; our scaled run
    # starts from a colder transient instead — see EXPERIMENTS.md.
    assert tail_mean(sqlb) > tail_mean(capacity)
    assert tail_mean(sqlb) > tail_mean(mariposa)
    # At high workload nobody satisfies intentions fully: utilisation
    # drags them down (the paper's explanation for the late-run dip).
    assert tail_mean(sqlb) < 0.8
