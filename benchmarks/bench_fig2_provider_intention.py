"""Figure 2 — the provider-intention trade-off surface at δs = 0.5.

Definition 8 over the (preference × utilisation) grid: preference and
utilisation weigh equally at satisfaction 0.5; intentions are positive
only where the provider wants the query *and* has spare capacity.
"""

from __future__ import annotations

import numpy as np

from repro.core.intentions import provider_intention_surface
from repro.experiments.report import format_surface


def test_fig2_provider_intention_surface(benchmark, report_writer):
    preferences, utilizations, surface = benchmark(
        provider_intention_surface, 0.5, 81, 81
    )

    report_writer(
        "fig2_provider_intention",
        format_surface(
            preferences,
            utilizations,
            surface,
            value_label="Figure 2: provider intention at satisfaction 0.5",
            x_label="pref",
            y_label="Ut",
        ),
    )

    # Positive exactly on the (pref > 0, Ut < 1) quadrant.
    positive = surface > 0
    expected = (preferences[:, None] > 0) & (utilizations[None, :] < 1)
    assert np.array_equal(positive, expected)
    # Monotone: more preference never lowers the intention...
    assert (np.diff(surface, axis=0) >= -1e-12).all()
    # ...and more load never raises it.
    assert (np.diff(surface, axis=1) <= 1e-12).all()
    # The plot's corners: +1 at (pref 1, idle), lowest at (pref -1, Ut 2).
    assert surface[-1, 0] == 1.0
    assert surface.min() == surface[0, -1]
