"""Figure 5(b) — response time vs workload; providers may leave by
dissatisfaction, starvation, *or* overutilisation.

Paper shape: with all departure reasons enabled, SQLB and Mariposa-like
degrade only mildly versus their captive response times while Capacity
based suffers most from its provider exodus.  Our scaled reproduction
preserves SQLB's mild degradation and its advantage over Mariposa-like
(see EXPERIMENTS.md for the capacity-based deviation).
"""

from __future__ import annotations

import numpy as np

from conftest import BENCH_SEEDS, BENCH_WORKLOADS, bench_config

from repro.experiments.autonomy import departure_response_times
from repro.experiments.captive import response_time_curve
from repro.experiments.report import format_curve_table


def test_fig5b_response_time_all_reasons(benchmark, report_writer):
    curve = benchmark.pedantic(
        departure_response_times,
        kwargs={
            "include_overutilization": True,
            "config": bench_config(),
            "seeds": BENCH_SEEDS,
            "workloads": BENCH_WORKLOADS,
        },
        rounds=1,
        iterations=1,
    )
    report_writer(
        "fig5b_response_time_all_reasons",
        format_curve_table(
            curve.workloads,
            curve.response_times,
            value_label=(
                "Fig 5(b): response time (s), all departure reasons"
            ),
        ),
    )

    sqlb = curve.response_times["sqlb"]
    mariposa = curve.response_times["mariposa"]
    # SQLB beats Mariposa-like across the mid-range workloads (see the
    # Figure 5(a) bench and EXPERIMENTS.md for the saturation caveat).
    mid = [i for i, w in enumerate(BENCH_WORKLOADS) if 0.3 <= w <= 0.9]
    assert sqlb[mid].mean() < mariposa[mid].mean()

    # SQLB's degradation versus its own captive runs stays bounded over
    # the mid-range (the paper reports a factor of about 1.4).
    captive = response_time_curve(
        config=bench_config(),
        seeds=BENCH_SEEDS,
        workloads=BENCH_WORKLOADS,
        methods=("sqlb",),
    )
    degradation = float(
        np.mean(sqlb[mid] / captive.response_times["sqlb"][mid])
    )
    assert degradation < 2.5
