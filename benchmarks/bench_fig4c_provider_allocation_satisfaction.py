"""Figure 4(c) — µ(δas, P) based on preferences.

Paper shape: Capacity based is the only method that *punishes*
providers (mean allocation satisfaction below 1); SQLB and
Mariposa-like work for them (at or above 1).
"""

from __future__ import annotations

from _shape import series_report, tail_mean
from conftest import BENCH_SEEDS, ramp_config

from repro.experiments.captive import captive_ramp


def test_fig4c_provider_allocation_satisfaction(benchmark, report_writer):
    family = benchmark.pedantic(
        captive_ramp,
        kwargs={"config": ramp_config(), "seeds": BENCH_SEEDS},
        rounds=1,
        iterations=1,
    )
    series = "provider_preference_allocation_satisfaction_mean"
    report_writer(
        "fig4c_provider_allocation_satisfaction",
        series_report(
            family, series, "Fig 4(c): µ(δas, P), preference-based"
        ),
    )

    sqlb = tail_mean(family["sqlb"].series(series))
    capacity = tail_mean(family["capacity"].series(series))
    mariposa = tail_mean(family["mariposa"].series(series))
    # Capacity based punishes providers...
    assert capacity < 0.95
    # ...while the intention-aware methods do not.
    assert sqlb > capacity
    assert mariposa > capacity
    assert sqlb >= 0.97
