"""Figure 4(f) — f(δs, C): consumer satisfaction fairness.

Paper shape: consumer fairness is high and stable for every method —
consumers are not in direct competition for queries, so their
satisfaction varies much less than the providers'.
"""

from __future__ import annotations

import numpy as np

from _shape import series_report, tail_mean
from conftest import BENCH_SEEDS, ramp_config

from repro.experiments.captive import captive_ramp


def test_fig4f_consumer_satisfaction_fairness(benchmark, report_writer):
    family = benchmark.pedantic(
        captive_ramp,
        kwargs={"config": ramp_config(), "seeds": BENCH_SEEDS},
        rounds=1,
        iterations=1,
    )
    series = "consumer_satisfaction_fairness"
    report_writer(
        "fig4f_consumer_satisfaction_fairness",
        series_report(family, series, "Fig 4(f): f(δs, C)"),
    )

    for method in family:
        values = family[method].series(series)
        assert tail_mean(values) > 0.85
        # Less variation than the provider-side fairness (Fig 4(d)).
        provider_fairness = family[method].series(
            "provider_intention_satisfaction_fairness"
        )
        assert np.nanstd(values) <= np.nanstd(provider_fairness) + 0.05
