"""Figure 4(g) — µ(Ut, P): mean provider utilisation (query load mean).

Paper shape: Capacity based tracks the offered workload most tightly;
Mariposa-like concentrates load on the most adapted providers and its
mean utilisation runs highest as the ramp approaches 100 %.
"""

from __future__ import annotations

from _shape import series_report, tail_mean
from conftest import BENCH_SEEDS, ramp_config

from repro.experiments.captive import captive_ramp


def test_fig4g_utilization_mean(benchmark, report_writer):
    family = benchmark.pedantic(
        captive_ramp,
        kwargs={"config": ramp_config(), "seeds": BENCH_SEEDS},
        rounds=1,
        iterations=1,
    )
    series = "utilization_mean"
    report_writer(
        "fig4g_utilization_mean",
        series_report(family, series, "Fig 4(g): µ(Ut, P)"),
    )

    capacity = tail_mean(family["capacity"].series(series))
    mariposa = tail_mean(family["mariposa"].series(series))
    sqlb = tail_mean(family["sqlb"].series(series))
    # Mariposa's crude load balancing overshoots the baselines'.
    assert mariposa >= capacity
    assert mariposa >= 0.95 * sqlb
    # Everybody's mean utilisation rises with the ramp.
    for method in family:
        values = family[method].series(series)
        assert tail_mean(values) > tail_mean(values[: len(values) // 2])
