"""Figure 3 — the ω trade-off surface (Equation 6).

ω over the (provider satisfaction × consumer satisfaction) grid: the
less satisfied side gets more say in the provider score.
"""

from __future__ import annotations

import numpy as np

from repro.core.scoring import omega_surface
from repro.experiments.report import format_surface


def test_fig3_omega_surface(benchmark, report_writer):
    provider_axis, consumer_axis, grid = benchmark(omega_surface, 81)

    report_writer(
        "fig3_omega",
        format_surface(
            provider_axis,
            consumer_axis,
            grid,
            value_label="Figure 3: omega over the satisfaction grid",
            x_label="prov",
            y_label="cons",
        ),
    )

    assert grid.min() >= 0.0 and grid.max() <= 1.0
    # Equal satisfactions → neutral 0.5 along the diagonal.
    assert np.allclose(np.diagonal(grid), 0.5)
    # ω grows with consumer satisfaction, shrinks with provider's.
    assert (np.diff(grid, axis=1) >= 0).all()
    assert (np.diff(grid, axis=0) <= 0).all()
    # Corners of the paper's plot.
    assert grid[0, -1] == 1.0  # satisfied consumer, dissatisfied provider
    assert grid[-1, 0] == 0.0
