"""Figure 4(h) — f(Ut, P): utilisation fairness (query load balance).

Paper shape: Capacity based is the fairest balancer throughout; SQLB
struggles at low workloads (it follows intentions when there is slack)
but adapts and becomes fairer as the workload grows.
"""

from __future__ import annotations

from _shape import head_mean, series_report, tail_mean
from conftest import BENCH_SEEDS, ramp_config

from repro.experiments.captive import captive_ramp


def test_fig4h_utilization_fairness(benchmark, report_writer):
    family = benchmark.pedantic(
        captive_ramp,
        kwargs={"config": ramp_config(), "seeds": BENCH_SEEDS},
        rounds=1,
        iterations=1,
    )
    series = "utilization_fairness"
    report_writer(
        "fig4h_utilization_fairness",
        series_report(family, series, "Fig 4(h): f(Ut, P)"),
    )

    sqlb = family["sqlb"].series(series)
    capacity = family["capacity"].series(series)
    # Capacity based balances load at least as fairly as SQLB.
    assert tail_mean(capacity) >= tail_mean(sqlb) - 0.05
    # SQLB's self-adaptation: fairness improves as the workload ramps.
    assert tail_mean(sqlb) > head_mean(sqlb) - 0.05
