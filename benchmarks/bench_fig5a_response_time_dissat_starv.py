"""Figure 5(a) — response time vs workload; providers may leave by
dissatisfaction or starvation (no overutilisation departures).

Paper shape: SQLB significantly outperforms both baselines once
departures bite, because it keeps its provider population.  In our
scaled reproduction the baselines additionally shed *consumers* (which
sheds load), so we assert on the population-retention mechanism that
drives the paper's result plus SQLB's advantage over Mariposa-like;
see EXPERIMENTS.md for the full deviation discussion.
"""

from __future__ import annotations

from conftest import BENCH_SEEDS, BENCH_WORKLOADS, bench_config

from repro.experiments.autonomy import departure_response_times
from repro.experiments.harness import run_method_family
from repro.experiments.report import format_curve_table
from repro.simulation.config import DepartureRules, WorkloadSpec


def test_fig5a_response_time_dissatisfaction_starvation(
    benchmark, report_writer
):
    curve = benchmark.pedantic(
        departure_response_times,
        kwargs={
            "include_overutilization": False,
            "config": bench_config(),
            "seeds": BENCH_SEEDS,
            "workloads": BENCH_WORKLOADS,
        },
        rounds=1,
        iterations=1,
    )
    report_writer(
        "fig5a_response_time_dissat_starv",
        format_curve_table(
            curve.workloads,
            curve.response_times,
            value_label=(
                "Fig 5(a): response time (s), departures by "
                "dissatisfaction/starvation"
            ),
        ),
    )

    sqlb = curve.response_times["sqlb"]
    mariposa = curve.response_times["mariposa"]
    # SQLB beats the other intention-aware method across the mid-range
    # workloads (at full saturation our scaled SQLB loses its provider
    # population and its response time spikes — see EXPERIMENTS.md).
    mid = [i for i, w in enumerate(BENCH_WORKLOADS) if 0.3 <= w <= 0.9]
    assert sqlb[mid].mean() < mariposa[mid].mean()
    assert (sqlb[mid] <= mariposa[mid] + 1e-9).all()

    # The mechanism behind the paper's Figure 5: SQLB retains far more
    # of its provider population than either baseline.
    rules = DepartureRules.autonomous(include_overutilization=False)
    config = bench_config().with_workload(
        WorkloadSpec.fixed(0.8)
    ).with_departures(rules)
    family = run_method_family(
        config, ("sqlb", "capacity", "mariposa"), BENCH_SEEDS
    )
    sqlb_loss = family["sqlb"].provider_departure_fraction()
    assert sqlb_loss < family["capacity"].provider_departure_fraction()
    assert sqlb_loss < family["mariposa"].provider_departure_fraction()
