"""Table 3 — provider departure reasons at 80 % workload, broken down
by consumer-interest, adaptation, and capacity class.

Paper shape: Capacity based loses providers primarily by
dissatisfaction; the Mariposa-like method loses them primarily through
load pathologies (overutilisation of the adapted providers /
starvation of the others); SQLB loses much less overall, and what it
loses is concentrated in the low-value classes — it "mainly maintains
the high-interest, high-adaptation, and high-capacity providers".
"""

from __future__ import annotations

from conftest import BENCH_SEEDS, bench_config

from repro.experiments.autonomy import departure_reason_table
from repro.experiments.report import format_reason_table


def test_table3_departure_reasons(benchmark, report_writer):
    tables = benchmark.pedantic(
        departure_reason_table,
        kwargs={
            "workload": 0.80,
            "config": bench_config(),
            "seeds": BENCH_SEEDS,
        },
        rounds=1,
        iterations=1,
    )
    report_writer(
        "table3_departure_reasons", format_reason_table(tables)
    )

    for table in tables.values():
        # The paper's structural invariant: each class-dimension row of
        # a reason sums to that reason's total.
        table.check_consistency(tolerance=1e-6)

    sqlb = tables["sqlb"]
    capacity = tables["capacity"]
    mariposa = tables["mariposa"]

    # Capacity based: dissatisfaction is the dominant reason.
    assert capacity.totals["dissatisfaction"] >= max(
        capacity.totals["starvation"], capacity.totals["overutilization"]
    )
    # Mariposa-like: load pathologies claim a substantial share.
    load_pathologies = (
        mariposa.totals["starvation"] + mariposa.totals["overutilization"]
    )
    assert load_pathologies > 0.0
    # SQLB loses the fewest providers overall.
    assert sum(sqlb.totals.values()) < sum(capacity.totals.values())
    assert sum(sqlb.totals.values()) < sum(mariposa.totals.values())
