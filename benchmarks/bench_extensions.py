"""Extension bench — the future-work methods vs the paper's three.

Section 7 of the paper sketches two directions this repository
implements: KnBest-style randomised short-lists ([17]) and an economic
SQLB that computes bids from intentions ([10] + Section 5).  This
bench runs all five methods in one environment and reports the
headline trade-offs.

Expected: KnBest (capacity base) stays close to capacity-based response
times while starving fewer providers; economic SQLB behaves like SQLB
on satisfaction (same intentions, routed through prices).
"""

from __future__ import annotations

import numpy as np

from conftest import BENCH_SEEDS, bench_config

from repro.experiments.harness import run_method_family
from repro.experiments.report import format_curve_table
from repro.simulation.config import WorkloadSpec

METHODS = ("sqlb", "capacity", "mariposa", "knbest", "sqlb_econ")


def _run_all():
    config = bench_config().with_workload(WorkloadSpec.fixed(0.8))
    family = run_method_family(config, METHODS, BENCH_SEEDS)
    rows = {}
    for method in METHODS:
        averages = family[method]
        starved = float(
            np.mean(
                [
                    (r.final["completed_counts"] == 0).mean()
                    for r in averages.results
                ]
            )
        )
        rows[method] = {
            "response_time": averages.response_time(),
            "prov_pref_sat": averages.series(
                "provider_preference_satisfaction_mean"
            )[-1],
            "cons_alloc_sat": averages.series(
                "consumer_allocation_satisfaction_mean"
            )[-1],
            "starved_share": starved,
        }
    return rows


def test_extension_methods(benchmark, report_writer):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    metrics = (
        "response_time",
        "prov_pref_sat",
        "cons_alloc_sat",
        "starved_share",
    )
    report_writer(
        "extensions",
        format_curve_table(
            range(len(METHODS)),
            {m: [rows[method][m] for method in METHODS] for m in metrics},
            value_label=(
                "Extensions at 80% workload -- methods: "
                + " / ".join(METHODS)
            ),
            x_label="method#",
            x_scale=1.0,
        ),
    )

    # KnBest keeps capacity-like response times (within 2×) while
    # starving no more providers than the deterministic ranking.
    assert rows["knbest"]["response_time"] < (
        2.0 * rows["capacity"]["response_time"]
    )
    assert rows["knbest"]["starved_share"] <= (
        rows["capacity"]["starved_share"] + 0.05
    )
    # Economic SQLB inherits SQLB's consumer service (clearly above the
    # baselines' neutral 1.0).
    assert rows["sqlb_econ"]["cons_alloc_sat"] > 1.02
    # And its provider preference satisfaction lands above the
    # preference-blind capacity baseline.
    assert (
        rows["sqlb_econ"]["prov_pref_sat"]
        > rows["capacity"]["prov_pref_sat"]
    )
