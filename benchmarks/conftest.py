"""Shared configuration for the benchmark suite.

Every bench regenerates one table or figure of the paper (see DESIGN.md
§3): it runs the corresponding experiment (heavily memoised, so benches
sharing a simulation family only pay once), prints the same rows/series
the paper reports, writes them under ``benchmarks/output/``, and asserts
the shape-level claims from Section 6.3.

Scale note: benches run the *scaled* environment (DESIGN.md §2.4) with a
single repetition seed so the full suite finishes in minutes; pass the
paper configuration through the experiment functions for
paper-strength averaging.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.simulation.config import scaled_config

#: One repetition keeps the suite fast; the harness supports any number.
BENCH_SEEDS = (11,)

#: Workload grid for the per-workload curves (the paper plots 20-100 %).
BENCH_WORKLOADS = (0.2, 0.4, 0.6, 0.8, 1.0)

OUTPUT_DIR = Path(__file__).parent / "output"


def bench_config():
    """The environment every bench runs (scaled, shorter horizon)."""
    return scaled_config(duration=600.0)


def ramp_config():
    """The Figure 4(a)-(h) ramp runs a longer horizon so the 30→100 %
    sweep is visible in the series."""
    return scaled_config(duration=1200.0)


@pytest.fixture
def report_writer():
    """Write one bench's report under benchmarks/output/ and echo it."""

    def write(name: str, text: str) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report written to {path}]")

    return write
