"""Shared configuration for the benchmark suite.

Every bench regenerates one table or figure of the paper (see DESIGN.md
§3): it runs the corresponding experiment (heavily memoised, so benches
sharing a simulation family only pay once), prints the same rows/series
the paper reports, writes them under ``benchmarks/output/``, and asserts
the shape-level claims from Section 6.3.

Scale note: benches run the *scaled* environment (DESIGN.md §2.4) with a
single repetition seed so the full suite finishes in minutes; pass the
paper configuration through the experiment functions for
paper-strength averaging.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.executor import (
    configure_default_executor,
    set_default_executor,
)
from repro.simulation.config import scaled_config

#: One repetition keeps the suite fast; the harness supports any number.
BENCH_SEEDS = (11,)

#: Workload grid for the per-workload curves (the paper plots 20-100 %).
BENCH_WORKLOADS = (0.2, 0.4, 0.6, 0.8, 1.0)

OUTPUT_DIR = Path(__file__).parent / "output"

#: Where the benches persist completed simulations between sessions.
RESULT_STORE_DIR = OUTPUT_DIR / ".result_store"


@pytest.fixture(scope="session", autouse=True)
def experiment_executor(request):
    """One disk-cached, pool-capable executor shared by every bench.

    All 20+ figure/table benches route their simulations through the
    default executor configured here: ``--workers N`` fans each
    experiment family's jobs out over a process pool (one pool per
    simulation batch; worker start-up is cheap next to the runs), and
    the persistent store under ``benchmarks/output/.result_store``
    means a re-run of the suite re-simulates nothing (pass
    ``--no-cache`` to force fresh runs, or ``--cache-dir`` to relocate
    the store).
    """
    raw_workers = request.config.getoption("--workers", default=1)
    try:
        workers = max(1, int(raw_workers or 1))
    except (TypeError, ValueError):
        # A colliding third-party --workers may carry non-integer
        # values (e.g. "auto"); fall back to serial rather than crash.
        workers = 1
    if request.config.getoption("--no-cache", default=False):
        cache_dir = None
    else:
        cache_dir = (
            request.config.getoption("--cache-dir", default=None)
            or RESULT_STORE_DIR
        )
    executor = configure_default_executor(workers=workers, cache_dir=cache_dir)
    yield executor
    set_default_executor(None)


def bench_config():
    """The environment every bench runs (scaled, shorter horizon)."""
    return scaled_config(duration=600.0)


def ramp_config():
    """The Figure 4(a)-(h) ramp runs a longer horizon so the 30→100 %
    sweep is visible in the series."""
    return scaled_config(duration=1200.0)


@pytest.fixture
def report_writer():
    """Write one bench's report under benchmarks/output/ and echo it."""

    def write(name: str, text: str) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report written to {path}]")

    return write
