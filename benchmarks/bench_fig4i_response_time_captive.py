"""Figure 4(i) — response time vs workload, captive participants.

Paper shape: Capacity based is fastest at every workload; SQLB pays a
moderate factor for honouring intentions (the paper reports ≈1.4× on
average, our scaled reproduction lands between 2× and 3×); the
Mariposa-like method is clearly the slowest (≈3× in the paper).
"""

from __future__ import annotations

import numpy as np

from conftest import BENCH_SEEDS, BENCH_WORKLOADS, bench_config

from repro.experiments.captive import response_time_curve
from repro.experiments.report import format_curve_table


def test_fig4i_response_time_captive(benchmark, report_writer):
    curve = benchmark.pedantic(
        response_time_curve,
        kwargs={
            "config": bench_config(),
            "seeds": BENCH_SEEDS,
            "workloads": BENCH_WORKLOADS,
        },
        rounds=1,
        iterations=1,
    )
    report_writer(
        "fig4i_response_time_captive",
        format_curve_table(
            curve.workloads,
            curve.response_times,
            value_label="Fig 4(i): response time (s), captive participants",
        ),
    )

    capacity = curve.response_times["capacity"]
    sqlb = curve.response_times["sqlb"]
    mariposa = curve.response_times["mariposa"]
    # Capacity based wins at every workload level.
    assert (capacity <= sqlb + 1e-9).all()
    assert (capacity <= mariposa + 1e-9).all()
    # SQLB pays a bounded factor; Mariposa-like pays more on average.
    sqlb_factor = float(np.mean(sqlb / capacity))
    mariposa_factor = float(np.mean(mariposa / capacity))
    assert 1.0 <= sqlb_factor < 4.0
    assert mariposa_factor > sqlb_factor
