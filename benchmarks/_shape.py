"""Small helpers shared by the figure benches."""

from __future__ import annotations

import numpy as np

from repro.experiments.report import format_series_table


def tail_mean(series: np.ndarray, fraction: float = 1 / 3) -> float:
    """Mean of the last ``fraction`` of a series (ignores NaN)."""
    n = max(1, int(len(series) * fraction))
    return float(np.nanmean(series[-n:]))


def head_mean(series: np.ndarray, fraction: float = 1 / 3) -> float:
    """Mean of the first ``fraction`` of a series (ignores NaN)."""
    n = max(1, int(len(series) * fraction))
    return float(np.nanmean(series[:n]))


def series_report(family, series_name: str, label: str) -> str:
    """Render one figure's series for all methods in the family."""
    methods = list(family)
    times = family[methods[0]].times()
    return format_series_table(
        times,
        {method: family[method].series(series_name) for method in methods},
        value_label=label,
    )
