"""Figure 4(e) — µ(δas, C): consumer allocation satisfaction.

Paper shape: SQLB is the only method that actively satisfies consumers
(mean above 1); Capacity based and Mariposa-like are neutral (≈ 1)
because they never look at the consumer's intentions.
"""

from __future__ import annotations

from _shape import series_report, tail_mean
from conftest import BENCH_SEEDS, ramp_config

from repro.experiments.captive import captive_ramp


def test_fig4e_consumer_allocation_satisfaction(benchmark, report_writer):
    family = benchmark.pedantic(
        captive_ramp,
        kwargs={"config": ramp_config(), "seeds": BENCH_SEEDS},
        rounds=1,
        iterations=1,
    )
    series = "consumer_allocation_satisfaction_mean"
    report_writer(
        "fig4e_consumer_allocation_satisfaction",
        series_report(family, series, "Fig 4(e): µ(δas, C)"),
    )

    sqlb = tail_mean(family["sqlb"].series(series))
    capacity = tail_mean(family["capacity"].series(series))
    mariposa = tail_mean(family["mariposa"].series(series))
    # SQLB works *for* consumers; the baselines are neutral.
    assert sqlb > 1.05
    assert 0.90 < capacity < 1.10
    assert 0.90 < mariposa < 1.10
    # Consumers are never punished by SQLB.
    assert (family["sqlb"].series(series) >= 0.99).all()
