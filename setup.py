"""Legacy shim so editable installs work without the `wheel` package.

Offline environments here lack `wheel`, which PEP 517 editable installs
require; `pip install -e . --no-build-isolation --no-use-pep517` goes
through this file instead.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
