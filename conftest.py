"""Root pytest configuration shared by the test and benchmark suites.

Registers the experiment-executor command-line surface (the benchmark
suite's session fixture reads these), and puts ``src/`` on ``sys.path``
so ``pytest`` works without an editable install or ``PYTHONPATH``.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    group = parser.getgroup(
        "repro", "SQLB reproduction experiment execution"
    )

    def addoption(*args, **kwargs):
        # Tolerate third-party plugins that claim the same generic
        # option name (e.g. a plugin registering --workers); their
        # value is then read instead, which carries the same meaning.
        try:
            group.addoption(*args, **kwargs)
        except ValueError:
            pass

    addoption(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for simulation jobs (1 = serial)",
    )
    addoption(
        "--no-cache",
        action="store_true",
        default=False,
        help="disable the persistent simulation result store",
    )
    addoption(
        "--cache-dir",
        default=None,
        help="result-store directory (benchmarks default to "
        "benchmarks/output/.result_store)",
    )
