"""Participant intentions (Definitions 7 and 8 of the paper).

Intentions are the short-term, context-dependent signals participants
show the mediator (Section 2): a consumer's intention to allocate a query
to a provider, and a provider's intention to perform a query.  The SQLB
framework computes them as *trade-offs*:

* A consumer trades its private **preference** for the provider's public
  **reputation**, weighted by its confidence parameter ``υ``
  (Definition 7, Section 5.1).
* A provider trades its private **preference** for its current
  **utilisation**, weighted on the fly by its own (preference-based)
  **satisfaction** (Definition 8, Section 5.2): a satisfied provider
  accepts load it does not love; a dissatisfied one chases the queries it
  wants.

Both definitions are case-split so that fractional powers are only ever
applied to non-negative bases.  Their negative branches can exceed the
nominal ``[-1, 1]`` intention range (Figure 2 of the paper itself plots
values down to about -2.5); callers that must respect the Section 2 range
— e.g. when recording intentions into the satisfaction model — should
pass the raw values through :func:`clip_intention`.

Every function comes in a scalar form (readable reference, mirrors the
paper's notation) and a NumPy-vectorised form (used on the simulator hot
path); the test suite asserts they agree.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DEFAULT_EPSILON",
    "clip_intention",
    "consumer_intention",
    "consumer_intention_vector",
    "provider_intention",
    "provider_intention_surface",
    "provider_intention_vector",
]

#: The paper's ``ε > 0`` smoothing constant, "usually set to 1".  It
#: keeps the negative branches away from zero when a preference,
#: reputation, or utilisation hits an endpoint.
DEFAULT_EPSILON = 1.0


def _check_unit_interval(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def _check_signed_unit(name: str, value: float) -> None:
    if not -1.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [-1, 1], got {value}")


def consumer_intention(
    preference: float,
    reputation: float,
    upsilon: float = 0.5,
    epsilon: float = DEFAULT_EPSILON,
) -> float:
    """Consumer intention ``ci_c(q, p)`` (Definition 7).

    ``prf^υ · rep^(1-υ)`` when both the preference and the reputation are
    positive; otherwise the negative product
    ``-( (1-prf+ε)^υ · (1-rep+ε)^(1-υ) )``.

    Parameters
    ----------
    preference:
        ``prf_c(q, p) ∈ [-1, 1]`` — the consumer's private preference for
        allocating this query to this provider.
    reputation:
        ``rep(p) ∈ [-1, 1]`` — the provider's reputation.
    upsilon:
        ``υ ∈ [0, 1]`` — the preference-vs-reputation balance.  ``υ = 1``
        ignores reputation (the consumer trusts its own experience),
        ``υ = 0`` ignores preference, ``υ = 0.5`` weighs them equally
        (Section 5.1).
    epsilon:
        ``ε > 0`` smoothing constant.
    """
    _check_signed_unit("preference", preference)
    _check_signed_unit("reputation", reputation)
    _check_unit_interval("upsilon", upsilon)
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if preference > 0.0 and reputation > 0.0:
        return preference**upsilon * reputation ** (1.0 - upsilon)
    return -(
        (1.0 - preference + epsilon) ** upsilon
        * (1.0 - reputation + epsilon) ** (1.0 - upsilon)
    )


def consumer_intention_vector(
    preferences: np.ndarray,
    reputations: np.ndarray,
    upsilon: float = 0.5,
    epsilon: float = DEFAULT_EPSILON,
) -> np.ndarray:
    """Vectorised :func:`consumer_intention` over one provider axis."""
    _check_unit_interval("upsilon", upsilon)
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    prf = np.asarray(preferences, dtype=float)
    rep = np.asarray(reputations, dtype=float)
    if rep.shape != prf.shape:
        rep = np.broadcast_to(rep, prf.shape)
    positive = (prf > 0.0) & (rep > 0.0)
    # Both factor bases are strictly positive on their branch, so the
    # fractional powers are always well defined; the unused lane is
    # floored at 0 (``maximum`` ≡ the one-sided clip, minus the
    # dispatch overhead) to keep numpy from warning.
    pos = np.power(np.maximum(prf, 0.0), upsilon) * np.power(
        np.maximum(rep, 0.0), 1.0 - upsilon
    )
    neg = -(
        np.power(1.0 - prf + epsilon, upsilon)
        * np.power(1.0 - rep + epsilon, 1.0 - upsilon)
    )
    return np.where(positive, pos, neg)


def provider_intention(
    preference: float,
    utilization: float,
    satisfaction: float,
    epsilon: float = DEFAULT_EPSILON,
) -> float:
    """Provider intention ``pi_p(q)`` (Definition 8).

    ``prf^(1-δs) · (1-Ut)^δs`` when the provider wants the query
    (``prf > 0``) and has spare capacity (``Ut < 1``); otherwise the
    negative product ``-( (1-prf+ε)^(1-δs) · (Ut+ε)^δs )``.

    The exponent ``δs`` must be the provider's **preference-based**
    satisfaction (Section 5.2): the provider has access to its own
    private information, and balancing on intention-based satisfaction
    would let the mediator's view leak into the provider's private
    trade-off.

    Parameters
    ----------
    preference:
        ``prf_p(q) ∈ [-1, 1]`` — the provider's private preference for
        performing the query.
    utilization:
        ``Ut(p) ≥ 0`` — current utilisation; may exceed 1 under overload.
    satisfaction:
        ``δs(p) ∈ [0, 1]`` — preference-based satisfaction.
    epsilon:
        ``ε > 0`` smoothing constant.
    """
    _check_signed_unit("preference", preference)
    _check_unit_interval("satisfaction", satisfaction)
    if utilization < 0.0:
        raise ValueError(f"utilization must be non-negative, got {utilization}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if preference > 0.0 and utilization < 1.0:
        return preference ** (1.0 - satisfaction) * (
            1.0 - utilization
        ) ** satisfaction
    return -(
        (1.0 - preference + epsilon) ** (1.0 - satisfaction)
        * (utilization + epsilon) ** satisfaction
    )


def provider_intention_vector(
    preferences: np.ndarray,
    utilizations: np.ndarray,
    satisfactions: np.ndarray,
    epsilon: float = DEFAULT_EPSILON,
) -> np.ndarray:
    """Vectorised :func:`provider_intention` over one provider axis.

    All three inputs broadcast against each other; the usual shape is one
    entry per provider in ``P_q``.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    prf = np.asarray(preferences, dtype=float)
    ut = np.asarray(utilizations, dtype=float)
    sat = np.asarray(satisfactions, dtype=float)
    if not (prf.shape == ut.shape == sat.shape):
        # The engine always passes three aligned candidate vectors;
        # broadcasting only runs for surface plots and scalar mixes.
        prf, ut, sat = np.broadcast_arrays(prf, ut, sat)
    positive = (prf > 0.0) & (ut < 1.0)
    one_minus_sat = 1.0 - sat  # shared by both branches' exponents
    pos = np.power(np.maximum(prf, 0.0), one_minus_sat) * np.power(
        np.maximum(1.0 - ut, 0.0), sat
    )
    neg = -(
        np.power(1.0 - prf + epsilon, one_minus_sat)
        * np.power(ut + epsilon, sat)
    )
    return np.where(positive, pos, neg)


def provider_intention_surface(
    satisfaction: float,
    preference_points: int = 41,
    utilization_points: int = 41,
    max_utilization: float = 2.0,
    epsilon: float = DEFAULT_EPSILON,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The Figure 2 trade-off surface at a fixed satisfaction level.

    Evaluates Definition 8 on a (preference × utilisation) grid, exactly
    the plot the paper shows for ``δs = 0.5``.

    Returns
    -------
    (preferences, utilizations, intentions):
        1-D grid axes and the 2-D intention surface with shape
        ``(preference_points, utilization_points)``.
    """
    _check_unit_interval("satisfaction", satisfaction)
    preferences = np.linspace(-1.0, 1.0, preference_points)
    utilizations = np.linspace(0.0, max_utilization, utilization_points)
    surface = provider_intention_vector(
        preferences[:, None],
        utilizations[None, :],
        satisfaction,
        epsilon=epsilon,
    )
    return preferences, utilizations, surface


def clip_intention(value: float | np.ndarray) -> float | np.ndarray:
    """Clip raw intention values to the Section 2 range ``[-1, 1]``.

    Definitions 7/8 can produce values below -1 on their negative
    branches; the satisfaction model (Section 3) is defined over
    ``[-1, 1]``, so recorded intentions go through this clip while the
    raw values keep their full discriminative power inside the scoring
    formulas.
    """
    if isinstance(value, np.ndarray):
        return np.clip(value, -1.0, 1.0)
    return max(-1.0, min(1.0, float(value)))
