"""The paper's primary contribution: the SQLB scoring/allocation core.

Definitions 7-9, Equation 6, and Algorithm 1 as pure functions (scalar
reference versions plus vectorised hot-path versions).
"""

from repro.core.intentions import (
    DEFAULT_EPSILON,
    clip_intention,
    consumer_intention,
    consumer_intention_vector,
    provider_intention,
    provider_intention_surface,
    provider_intention_vector,
)
from repro.core.ranking import rank_providers, select_top
from repro.core.scoring import (
    omega,
    omega_surface,
    omega_vector,
    provider_score,
    provider_score_vector,
)
from repro.core.sqlb import SQLBAllocation, allocate_query

__all__ = [
    "DEFAULT_EPSILON",
    "SQLBAllocation",
    "allocate_query",
    "clip_intention",
    "consumer_intention",
    "consumer_intention_vector",
    "omega",
    "omega_surface",
    "omega_vector",
    "provider_intention",
    "provider_intention_surface",
    "provider_intention_vector",
    "provider_score",
    "provider_score_vector",
    "rank_providers",
    "select_top",
]
