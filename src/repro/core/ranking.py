"""Provider ranking (the ``R_q`` vector of Section 5.3).

Providers are ranked from best to worst score; the top ``min(q.n, N)``
are selected.  Scores frequently tie (e.g. saturated negative branches,
or baseline methods with coarse criteria), so the ranking supports an
explicit tie-breaking policy:

* ``"random"`` (default) — tied providers are ordered uniformly at
  random, using the caller's RNG.  This is what a real mediator needs to
  avoid systematically favouring low provider identifiers, and it is
  what spreads the load across equally-scored providers.
* ``"index"`` — deterministic, by provider position; useful in tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rank_providers", "select_top", "top_selection"]

_TIE_BREAKS = ("random", "index")


def rank_providers(
    scores: np.ndarray,
    rng: np.random.Generator | None = None,
    tie_break: str = "random",
) -> np.ndarray:
    """Indices of providers ordered best-score-first (the ``R_q`` vector).

    Parameters
    ----------
    scores:
        One score per candidate provider (any floats; NaN is rejected).
    rng:
        Random generator used for ``"random"`` tie-breaking; required in
        that mode.
    tie_break:
        ``"random"`` or ``"index"``.

    Returns
    -------
    numpy.ndarray
        A permutation of ``arange(len(scores))``; ``result[0]`` is the
        best-scored provider.
    """
    values = np.asarray(scores, dtype=float)
    if values.ndim != 1:
        raise ValueError(f"scores must be 1-D, got shape {values.shape}")
    if np.isnan(values).any():
        raise ValueError("scores must not contain NaN")
    if tie_break not in _TIE_BREAKS:
        raise ValueError(f"tie_break must be one of {_TIE_BREAKS}, got {tie_break!r}")
    if tie_break == "index" or values.size <= 1:
        # Stable sort keeps index order among ties.
        return np.argsort(-values, kind="stable")
    if rng is None:
        raise ValueError("random tie-breaking requires an rng")
    # Sort by (score desc, random key): a fresh uniform key per call
    # breaks ties without disturbing the score ordering.
    jitter = rng.random(values.size)
    order = np.lexsort((jitter, -values))
    return order


def top_selection(
    scores: np.ndarray,
    n_select: int,
    rng: np.random.Generator | None = None,
    tie_break: str = "random",
) -> np.ndarray:
    """The first ``n_select`` entries of :func:`rank_providers`'s ranking.

    Identical selection, cheaper route: sorting is only needed when more
    than one provider is taken, but the paper's experiments use
    ``q.n = 1`` everywhere — and sorting fresh scores (and fresh random
    jitter) every query is the single most expensive step of the
    allocation.  For ``n_select == 1`` this is a linear scan: the
    highest score wins, score ties fall to the lowest jitter, jitter
    ties to the lowest position — exactly the order ``lexsort`` defines,
    so the result is bit-identical to ``rank_providers(...)[:1]``.  The
    jitter is drawn either way, keeping the RNG stream unchanged.
    """
    if n_select < 1:
        raise ValueError(f"n_select must be at least 1, got {n_select}")
    values = np.asarray(scores, dtype=float)
    if values.ndim != 1:
        raise ValueError(f"scores must be 1-D, got shape {values.shape}")
    if np.isnan(values).any():
        raise ValueError("scores must not contain NaN")
    if tie_break not in _TIE_BREAKS:
        raise ValueError(f"tie_break must be one of {_TIE_BREAKS}, got {tie_break!r}")
    if tie_break == "index" or values.size <= 1:
        if n_select == 1 and values.size > 1:
            # Stable sort puts the first maximal element on top.
            return np.array([np.argmax(values)])
        return np.argsort(-values, kind="stable")[:n_select]
    if rng is None:
        raise ValueError("random tie-breaking requires an rng")
    jitter = rng.random(values.size)
    if n_select == 1:
        best = int(np.argmax(values))
        ties = values == values[best]
        if np.count_nonzero(ties) > 1:
            tied = np.flatnonzero(ties)
            best = int(tied[np.argmin(jitter[tied])])
        return np.array([best])
    order = np.lexsort((jitter, -values))
    return order[:n_select]


def select_top(ranking: np.ndarray, n_desired: int) -> np.ndarray:
    """The selected providers ``P̂_q``: the ``min(q.n, N)`` best ranked.

    Mirrors lines 9-10 of Algorithm 1 — when the consumer asks for more
    providers than exist, all of them are selected.
    """
    if n_desired < 1:
        raise ValueError(f"q.n must be at least 1, got {n_desired}")
    ranking = np.asarray(ranking)
    return ranking[: min(n_desired, ranking.size)]
