"""Provider scoring (Definition 9 and Equation 6 of the paper).

Given a query, SQLB scores each candidate provider by trading the
*consumer's* intention to allocate the query to it against the
*provider's* intention to perform it.  The trade-off weight ``ω`` is not
a constant: Equation 6 recomputes it per (consumer, provider) pair from
their mediator-visible satisfactions, so the side that is currently less
satisfied gets more say — the paper's equity mechanism (Section 5.3).

``ω`` must be computed from **intention-based** satisfactions: the query
allocation module has no access to participants' private preferences.
"""

from __future__ import annotations

import numpy as np

from repro.core.intentions import DEFAULT_EPSILON

__all__ = [
    "omega",
    "omega_vector",
    "omega_surface",
    "provider_score",
    "provider_score_vector",
]


def omega(consumer_satisfaction: float, provider_satisfaction: float) -> float:
    """The balance parameter ``ω`` (Equation 6).

    ``ω = ((δs(c) - δs(p)) + 1) / 2 ∈ [0, 1]``.

    ``ω`` weighs the *provider's* intention inside Definition 9, so a
    consumer more satisfied than the provider (``δs(c) > δs(p)``) pushes
    ``ω`` above 0.5 and the allocation pays more attention to the
    provider's wishes, and vice versa.  Equal satisfactions give the
    neutral 0.5.

    Both inputs are intention-based satisfactions in ``[0, 1]``.
    """
    if not 0.0 <= consumer_satisfaction <= 1.0:
        raise ValueError(
            f"consumer satisfaction must be in [0, 1], got {consumer_satisfaction}"
        )
    if not 0.0 <= provider_satisfaction <= 1.0:
        raise ValueError(
            f"provider satisfaction must be in [0, 1], got {provider_satisfaction}"
        )
    return ((consumer_satisfaction - provider_satisfaction) + 1.0) / 2.0


def omega_vector(
    consumer_satisfaction: float, provider_satisfactions: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`omega` for one consumer against many providers."""
    sats = np.asarray(provider_satisfactions, dtype=float)
    if not 0.0 <= consumer_satisfaction <= 1.0:
        raise ValueError(
            f"consumer satisfaction must be in [0, 1], got {consumer_satisfaction}"
        )
    if sats.size and (sats.min() < 0.0 or sats.max() > 1.0):
        raise ValueError("provider satisfactions must be in [0, 1]")
    return ((consumer_satisfaction - sats) + 1.0) / 2.0


def omega_surface(points: int = 41) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The Figure 3 surface: ``ω`` over the satisfaction × satisfaction grid.

    Returns ``(provider_sat_axis, consumer_sat_axis, omega_grid)`` where
    ``omega_grid[i, j] = ω(consumer_sat[j], provider_sat[i])``.
    """
    provider_axis = np.linspace(0.0, 1.0, points)
    consumer_axis = np.linspace(0.0, 1.0, points)
    grid = ((consumer_axis[None, :] - provider_axis[:, None]) + 1.0) / 2.0
    return provider_axis, consumer_axis, grid


def provider_score(
    provider_intention: float,
    consumer_intention: float,
    omega_value: float,
    epsilon: float = DEFAULT_EPSILON,
) -> float:
    """Provider score ``scr_q(p)`` (Definition 9).

    ``PI^ω · CI^(1-ω)`` when both intentions are positive; otherwise the
    negative product ``-( (1-PI+ε)^ω · (1-CI+ε)^(1-ω) )``.

    Parameters
    ----------
    provider_intention:
        ``PI_q[p]`` — the provider's raw intention to perform the query.
        May fall below -1 (Definition 8's negative branch); the negative
        branch of the score handles any value ≤ 1.
    consumer_intention:
        ``CI_q[p]`` — the consumer's raw intention to allocate to ``p``.
    omega_value:
        ``ω ∈ [0, 1]``, usually from :func:`omega` (Equation 6) but the
        paper also allows fixing it per application (e.g. ``ω = 0`` for
        fully cooperative providers).
    epsilon:
        ``ε > 0`` smoothing constant.
    """
    if not 0.0 <= omega_value <= 1.0:
        raise ValueError(f"omega must be in [0, 1], got {omega_value}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if provider_intention > 1.0 or consumer_intention > 1.0:
        raise ValueError("intentions cannot exceed 1")
    if provider_intention > 0.0 and consumer_intention > 0.0:
        return provider_intention**omega_value * consumer_intention ** (
            1.0 - omega_value
        )
    return -(
        (1.0 - provider_intention + epsilon) ** omega_value
        * (1.0 - consumer_intention + epsilon) ** (1.0 - omega_value)
    )


def provider_score_vector(
    provider_intentions: np.ndarray,
    consumer_intentions: np.ndarray,
    omega_values: np.ndarray,
    epsilon: float = DEFAULT_EPSILON,
) -> np.ndarray:
    """Vectorised :func:`provider_score` over the candidate set ``P_q``.

    All inputs broadcast; ``omega_values`` is typically the per-provider
    vector from :func:`omega_vector` because Equation 6 depends on each
    provider's own satisfaction.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    pi = np.asarray(provider_intentions, dtype=float)
    ci = np.asarray(consumer_intentions, dtype=float)
    om = np.asarray(omega_values, dtype=float)
    if not (pi.shape == ci.shape == om.shape):
        # Aligned candidate vectors (the hot path) skip the broadcast.
        pi, ci, om = np.broadcast_arrays(pi, ci, om)
    if om.size and (om.min() < 0.0 or om.max() > 1.0):
        raise ValueError("omega values must be in [0, 1]")
    positive = (pi > 0.0) & (ci > 0.0)
    one_minus_om = 1.0 - om  # shared by both branches' exponents
    pos = np.power(np.maximum(pi, 0.0), om) * np.power(
        np.maximum(ci, 0.0), one_minus_om
    )
    neg = -(
        np.power(1.0 - pi + epsilon, om)
        * np.power(1.0 - ci + epsilon, one_minus_om)
    )
    return np.where(positive, pos, neg)
