"""The SQLB query-allocation principle (Algorithm 1 of the paper).

This module is the pure-functional heart of the framework: given the
intention vectors ``CI_q`` and ``PI_q`` collected from the consumer and
the candidate providers, plus the mediator-visible satisfactions that
drive Equation 6, it scores, ranks, and selects providers.

It is deliberately free of any simulation or transport concern — the
mediator in :mod:`repro.simulation` and the method adapter in
:mod:`repro.allocation` both call into here, and so can a real system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.intentions import DEFAULT_EPSILON
from repro.core.ranking import rank_providers, select_top
from repro.core.scoring import omega_vector, provider_score_vector

__all__ = ["SQLBAllocation", "allocate_query"]


@dataclass(frozen=True)
class SQLBAllocation:
    """The outcome of one run of Algorithm 1 for a single query.

    Attributes
    ----------
    selected:
        Indices (into the candidate set ``P_q``) of the providers the
        query is allocated to, best first — the providers with
        ``All_oc[p] = 1``.
    ranking:
        The full ``R_q`` permutation, best first.
    scores:
        ``scr_q(p)`` per candidate, aligned with the candidate set.
    omegas:
        The per-provider ``ω`` used in the scores (Equation 6 output, or
        the fixed override).
    """

    selected: np.ndarray
    ranking: np.ndarray
    scores: np.ndarray
    omegas: np.ndarray

    @property
    def allocation_vector(self) -> np.ndarray:
        """The paper's ``All_oc`` vector: 1 for selected candidates, else 0."""
        vector = np.zeros(self.scores.size, dtype=np.int8)
        vector[self.selected] = 1
        return vector

    def __post_init__(self) -> None:
        if self.scores.ndim != 1:
            raise ValueError("scores must be 1-D")
        if self.ranking.shape != self.scores.shape:
            raise ValueError("ranking must align with scores")


def allocate_query(
    provider_intentions: np.ndarray,
    consumer_intentions: np.ndarray,
    consumer_satisfaction: float,
    provider_satisfactions: np.ndarray,
    n_desired: int,
    epsilon: float = DEFAULT_EPSILON,
    fixed_omega: float | None = None,
    rng: np.random.Generator | None = None,
    tie_break: str = "random",
) -> SQLBAllocation:
    """Run Algorithm 1's scoring/ranking/selection steps for one query.

    The intention-gathering steps (lines 2-5 of Algorithm 1) happen at
    the caller: this function receives the resulting ``PI_q`` and
    ``CI_q`` vectors.

    Parameters
    ----------
    provider_intentions:
        ``PI_q`` — raw provider intentions, one per candidate in ``P_q``.
    consumer_intentions:
        ``CI_q`` — raw consumer intentions towards each candidate.
    consumer_satisfaction:
        The consumer's intention-based satisfaction ``δs(c)`` as visible
        to the mediator (drives Equation 6).
    provider_satisfactions:
        Each candidate's intention-based satisfaction ``δs(p)`` as
        visible to the mediator.
    n_desired:
        ``q.n`` — how many providers the consumer wants.
    epsilon:
        ``ε`` for Definition 9.
    fixed_omega:
        When given, overrides Equation 6 with a constant ``ω`` (the paper
        allows e.g. ``ω = 0`` for cooperative-provider deployments).
    rng, tie_break:
        Ranking tie-break policy; see :func:`repro.core.ranking.rank_providers`.

    Raises
    ------
    ValueError
        If the candidate set is empty — the paper only considers feasible
        queries, so an empty ``P_q`` is a caller bug.
    """
    pi = np.asarray(provider_intentions, dtype=float)
    ci = np.asarray(consumer_intentions, dtype=float)
    if pi.size == 0:
        raise ValueError("P_q must contain at least one provider")
    if pi.shape != ci.shape:
        raise ValueError(
            f"PI_q shape {pi.shape} does not match CI_q shape {ci.shape}"
        )
    if fixed_omega is not None:
        if not 0.0 <= fixed_omega <= 1.0:
            raise ValueError(f"fixed omega must be in [0, 1], got {fixed_omega}")
        omegas = np.full(pi.shape, float(fixed_omega))
    else:
        omegas = omega_vector(consumer_satisfaction, provider_satisfactions)
        if omegas.shape != pi.shape:
            raise ValueError(
                "provider_satisfactions must align with provider_intentions"
            )
    scores = provider_score_vector(pi, ci, omegas, epsilon=epsilon)
    ranking = rank_providers(scores, rng=rng, tie_break=tie_break)
    selected = select_top(ranking, n_desired)
    return SQLBAllocation(
        selected=selected, ranking=ranking, scores=scores, omegas=omegas
    )
