"""Per-query allocation decision audit.

The engine's other observability layers (telemetry, tracing) watch the
infrastructure *around* a run — phases, spans, drains.  This package
watches the decision itself: an opt-in recorder threaded through
:meth:`repro.simulation.engine.MediatorSimulation._dispatch` captures,
for every issued query, the candidate set size, the per-candidate SQLB
scores for the top-K, the chosen provider, whether the allocation was
imposed, and the satisfaction/adequation deltas applied — buffered
in-engine and flushed once per run as a compact columnar ``.npz`` shard
plus a digest-stamped JSON manifest.

The discipline is the telemetry layer's, exactly:

* **No-op when disabled** — :func:`get_audit` is ``None`` unless
  ``$REPRO_AUDIT_DIR`` is set or :func:`configure_audit` was called.
* **Never touches an RNG stream, never reorders arithmetic** — the
  recorder only *reads* per-query vectors after the method has chosen;
  audited runs are bit-identical to unaudited ones and audited store
  payloads are byte-identical (``ENGINE_VERSION`` stays put).
* **Crash-safe flush** — shard strictly before manifest, both through
  tempfile + ``os.replace``; queue gc/fsck age-gate the two crash
  footprints (``*.npz.tmp`` husks and manifest-less shards).

Read surfaces live in :mod:`repro.audit.report`: ``repro audit report``
(shares, score gaps, routing matrices, anomaly detection), ``repro
audit explain`` (one decision reconstructed), and ``repro audit diff``
(paired decision-by-decision divergence of two methods over one
recorded trace).
"""

from repro.audit.recorder import (
    AUDIT_DIR_ENV,
    AUDIT_FORMAT,
    AUDIT_TOP_K,
    DecisionAudit,
    audit_from_environment,
    audit_session,
    configure_audit,
    get_audit,
)
from repro.audit.report import (
    AuditReadError,
    AuditShard,
    detect_anomalies,
    diff_payload,
    explain_payload,
    find_shards,
    format_diff,
    format_explain,
    format_report,
    load_shard,
    report_payload,
    resolve_shard,
)

__all__ = [
    "AUDIT_DIR_ENV",
    "AUDIT_FORMAT",
    "AUDIT_TOP_K",
    "AuditReadError",
    "AuditShard",
    "DecisionAudit",
    "audit_from_environment",
    "audit_session",
    "configure_audit",
    "detect_anomalies",
    "diff_payload",
    "explain_payload",
    "find_shards",
    "format_diff",
    "format_explain",
    "format_report",
    "get_audit",
    "load_shard",
    "report_payload",
    "resolve_shard",
]
