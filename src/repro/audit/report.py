"""Read surfaces over committed audit shards.

Three consumers, one loader:

* :func:`report_payload` — per-provider allocation shares, score-gap
  distribution, per-class routing matrix, and the anomaly sweep
  (:func:`detect_anomalies`) for one shard.
* :func:`explain_payload` — one decision fully reconstructed: who the
  top-K candidates were, their recomputed SQLB scores, intentions and
  utilisations, which one won and why-shaped context (rank, score gap,
  imposed flag, satisfaction delta applied).
* :func:`diff_payload` — two shards recorded over the *same* trace
  (PR 6 replay) compared decision-by-decision: first divergent query,
  per-provider share deltas, per-class disagreement rates.

Every payload is JSON-safe (non-finite floats become ``None``) and
deterministic — no clocks, no ids — so the CLI's ``--json`` exports
double-render byte-identically (CI ``cmp``'s them).

Anomaly thresholds are module constants, not knobs: a report is an
audit, and an audit with tunable pass criteria is a rubber stamp.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

import numpy as np

from repro.audit.recorder import AUDIT_FORMAT, verify_manifest

__all__ = [
    "AuditShard",
    "detect_anomalies",
    "diff_payload",
    "explain_payload",
    "find_shards",
    "format_diff",
    "format_explain",
    "format_report",
    "load_shard",
    "report_payload",
    "resolve_shard",
]

#: A provider counts as starving when its longest allocation-free
#: stretch is at least this many times its capacity-fair expected gap
#: (1 / capacity share, in decisions) ...
STARVATION_FACTOR = 8.0
#: ... and at least this many decisions long (tiny runs don't starve).
STARVATION_MIN_WINDOW = 50

#: Consumer-satisfaction free-fall is judged over block means of this
#: many decisions ...
FREEFALL_WINDOW = 64
#: ... and flagged when a monotone run of block means loses at least
#: this much satisfaction in total.
FREEFALL_MIN_DROP = 0.2

#: Capacity-vs-allocation imbalance: flag providers whose allocation
#: share differs from their capacity share by at least this many
#: absolute share points ...
IMBALANCE_THRESHOLD = 0.15
#: ... once the run is long enough for shares to mean anything.
IMBALANCE_MIN_DECISIONS = 50


class AuditReadError(ValueError):
    """An audit shard or manifest is missing, torn, or tampered."""


@dataclasses.dataclass(frozen=True)
class AuditShard:
    """One committed (manifest, arrays) pair, verified end-to-end."""

    manifest: dict
    arrays: dict
    path: Path


def load_shard(path: Path | str) -> AuditShard:
    """Load one shard by its manifest (or ``.npz``, or bare stem) path.

    Refuses loudly on a missing half, a digest-mismatched manifest, or
    a payload whose SHA-256 does not match the manifest's — a shard
    without a verified manifest is a crash footprint, not data.
    """
    path = Path(path)
    if path.suffix == ".npz":
        path = path.with_suffix(".json")
    elif path.suffix != ".json":
        path = path.with_suffix(".json")
    if not path.is_file():
        raise AuditReadError(
            f"no audit manifest at {path} (manifest-less shards are "
            "crash litter; re-run with --audit)"
        )
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise AuditReadError(
            f"{path}: torn or non-JSON manifest ({error.msg})"
        ) from None
    if not isinstance(manifest, dict) or not verify_manifest(manifest):
        raise AuditReadError(
            f"{path}: manifest digest mismatch — tampered or corrupted"
        )
    if manifest.get("format") != AUDIT_FORMAT:
        raise AuditReadError(
            f"{path}: unsupported audit format {manifest.get('format')!r} "
            f"(this reader is {AUDIT_FORMAT})"
        )
    shard_path = path.parent / manifest["npz"]
    if not shard_path.is_file():
        raise AuditReadError(f"{path}: payload half {manifest['npz']} missing")
    shard_bytes = shard_path.read_bytes()
    digest = hashlib.sha256(shard_bytes).hexdigest()
    if digest != manifest["npz_sha256"]:
        raise AuditReadError(
            f"{shard_path}: payload sha256 {digest[:16]}… does not match "
            f"its manifest"
        )
    with np.load(shard_path) as data:
        arrays = {name: data[name] for name in data.files}
    return AuditShard(manifest=manifest, arrays=arrays, path=path)


def find_shards(directory: Path | str) -> list[Path]:
    """Manifest paths of every committed shard under ``directory``."""
    directory = Path(directory)
    return sorted(
        path
        for path in directory.glob("audit-*.json")
        if not path.name.startswith(".")
    )


def resolve_shard(path: Path | str, method: str | None = None) -> AuditShard:
    """``path`` as a shard: directly when a file, by lookup in a
    directory (``method`` selects among several; exactly one must
    match)."""
    path = Path(path)
    if path.is_file():
        return load_shard(path)
    if not path.is_dir():
        raise AuditReadError(f"no audit shard or directory at {path}")
    candidates = []
    for manifest_path in find_shards(path):
        shard = load_shard(manifest_path)
        if method is None or shard.manifest["method"] == method:
            candidates.append(shard)
    if len(candidates) == 1:
        return candidates[0]
    if not candidates:
        raise AuditReadError(
            f"no committed audit shard in {path}"
            + (f" for method {method!r}" if method else "")
        )
    methods = ", ".join(s.manifest["method"] for s in candidates)
    raise AuditReadError(
        f"{len(candidates)} shards in {path} ({methods}); "
        "pass --method to pick one"
    )


# ---------------------------------------------------------------------
# payload helpers
# ---------------------------------------------------------------------


def _finite(value: float) -> float | None:
    value = float(value)
    return value if np.isfinite(value) else None


def _block_means(values: np.ndarray, width: int) -> list[float]:
    means = []
    for start in range(0, values.size, width):
        block = values[start : start + width]
        finite = block[np.isfinite(block)]
        means.append(float(finite.mean()) if finite.size else float("nan"))
    return means


def detect_anomalies(manifest: dict, arrays: dict) -> list[dict]:
    """The deterministic anomaly sweep over one shard's arrays.

    Three detectors, fixed thresholds (module constants):

    * **starvation** — a provider with capacity went at least
      ``STARVATION_FACTOR / capacity_share`` consecutive decisions
      (and ``STARVATION_MIN_WINDOW``) without an allocation;
    * **satisfaction-free-fall** — a monotone run of
      ``FREEFALL_WINDOW``-decision block means of pre-decision consumer
      satisfaction dropped by ``FREEFALL_MIN_DROP`` or more;
    * **capacity-imbalance** — a provider's allocation share differs
      from its capacity share by ``IMBALANCE_THRESHOLD`` share points.
    """
    chosen = arrays["chosen"]
    n = int(chosen.size)
    rates = np.asarray(arrays["capacity_rates"], dtype=float)
    total_rate = float(rates.sum())
    capacity_shares = rates / total_rate if total_rate > 0 else rates * 0.0
    counts = np.bincount(chosen, minlength=rates.size) if n else np.zeros(
        rates.size, dtype=np.int64
    )
    anomalies: list[dict] = []

    # -- starvation ---------------------------------------------------
    for provider in range(rates.size):
        share = float(capacity_shares[provider])
        if share <= 0.0 or n == 0:
            continue
        positions = np.flatnonzero(chosen == provider)
        if positions.size == 0:
            longest = n
        else:
            longest = max(
                int(positions[0]),
                int(n - 1 - positions[-1]),
                int(np.diff(positions).max() - 1)
                if positions.size > 1
                else 0,
            )
        expected_gap = 1.0 / share
        threshold = max(STARVATION_FACTOR * expected_gap, STARVATION_MIN_WINDOW)
        if longest >= threshold:
            anomalies.append(
                {
                    "kind": "starvation",
                    "provider": provider,
                    "longest_gap": longest,
                    "expected_gap": expected_gap,
                    "capacity_share": share,
                    "allocations": int(counts[provider]),
                }
            )

    # -- satisfaction free-fall ---------------------------------------
    satisfaction = arrays["consumer_satisfaction"]
    means = _block_means(satisfaction, FREEFALL_WINDOW)
    start = 0
    for index in range(1, len(means) + 1):
        falling = (
            index < len(means)
            and np.isfinite(means[index])
            and np.isfinite(means[index - 1])
            and means[index] < means[index - 1]
        )
        if falling:
            continue
        if index - 1 > start:
            drop = means[start] - means[index - 1]
            if np.isfinite(drop) and drop >= FREEFALL_MIN_DROP:
                anomalies.append(
                    {
                        "kind": "satisfaction-free-fall",
                        "start_decision": start * FREEFALL_WINDOW,
                        "end_decision": min(n, index * FREEFALL_WINDOW),
                        "drop": float(drop),
                        "from": _finite(means[start]),
                        "to": _finite(means[index - 1]),
                    }
                )
        start = index

    # -- capacity-vs-allocation imbalance -----------------------------
    if n >= IMBALANCE_MIN_DECISIONS:
        allocation_shares = counts / n
        for provider in range(rates.size):
            delta = float(
                allocation_shares[provider] - capacity_shares[provider]
            )
            if abs(delta) >= IMBALANCE_THRESHOLD:
                anomalies.append(
                    {
                        "kind": "capacity-imbalance",
                        "provider": provider,
                        "allocation_share": float(
                            allocation_shares[provider]
                        ),
                        "capacity_share": float(capacity_shares[provider]),
                        "delta": delta,
                    }
                )
    return anomalies


def report_payload(shard: AuditShard) -> dict:
    """The full machine-readable report for one shard."""
    manifest = shard.manifest
    arrays = shard.arrays
    chosen = arrays["chosen"]
    n = int(chosen.size)
    rates = np.asarray(arrays["capacity_rates"], dtype=float)
    total_rate = float(rates.sum())
    capacity_shares = rates / total_rate if total_rate > 0 else rates * 0.0
    counts = np.bincount(chosen, minlength=rates.size) if n else np.zeros(
        rates.size, dtype=np.int64
    )
    imposed_counts = (
        np.bincount(
            chosen[arrays["imposed"].astype(bool)], minlength=rates.size
        )
        if n
        else np.zeros(rates.size, dtype=np.int64)
    )

    providers = [
        {
            "provider": provider,
            "allocations": int(counts[provider]),
            "share": float(counts[provider] / n) if n else 0.0,
            "capacity_share": float(capacity_shares[provider]),
            "imposed": int(imposed_counts[provider]),
        }
        for provider in range(rates.size)
    ]

    gaps = arrays["score_gap"]
    finite_gaps = gaps[np.isfinite(gaps)]
    if finite_gaps.size:
        score_gap = {
            "count": int(finite_gaps.size),
            "mean": float(finite_gaps.mean()),
            "p50": float(np.quantile(finite_gaps, 0.5)),
            "p90": float(np.quantile(finite_gaps, 0.9)),
            "max": float(finite_gaps.max()),
        }
    else:
        score_gap = {
            "count": 0, "mean": None, "p50": None, "p90": None, "max": None,
        }

    n_classes = int(manifest["n_classes"])
    klasses = arrays["klass"]
    routing = []
    for klass in range(n_classes):
        mask = klasses == klass
        class_counts = (
            np.bincount(chosen[mask], minlength=rates.size)
            if n
            else np.zeros(rates.size, dtype=np.int64)
        )
        class_n = int(class_counts.sum())
        top = int(class_counts.argmax()) if class_n else None
        routing.append(
            {
                "klass": klass,
                "decisions": class_n,
                "providers": class_counts.astype(int).tolist(),
                "top_provider": top,
                "top_share": float(class_counts.max() / class_n)
                if class_n
                else None,
            }
        )

    hits = int(arrays["cache_hit"].sum()) if n else 0
    anomalies = detect_anomalies(manifest, arrays)
    ranks = arrays["chosen_rank"]
    return {
        "format": AUDIT_FORMAT,
        "method": manifest["method"],
        "seed": manifest["seed"],
        "key": manifest["key"],
        "engine_version": manifest["engine_version"],
        "decisions": n,
        "unserved": int(manifest["unserved"]),
        "imposed": int(arrays["imposed"].sum()) if n else 0,
        "top_rank_rate": float((ranks == 0).mean()) if n else None,
        "cache": {"hits": hits, "misses": n - hits},
        "providers": providers,
        "score_gap": score_gap,
        "routing": routing,
        "anomalies": anomalies,
        "anomaly_count": len(anomalies),
    }


def explain_payload(shard: AuditShard, index: int) -> dict:
    """One decision fully reconstructed from the shard's columns."""
    arrays = shard.arrays
    n = int(arrays["chosen"].size)
    if not 0 <= index < n:
        raise AuditReadError(
            f"decision index {index} out of range (shard holds {n})"
        )
    top_k = int(shard.manifest["top_k"])
    chosen = int(arrays["chosen"][index])
    candidates = []
    for position in range(top_k):
        provider = int(arrays["topk_providers"][index, position])
        if provider < 0:
            continue
        candidates.append(
            {
                "rank": position,
                "provider": provider,
                "score": _finite(arrays["topk_scores"][index, position]),
                "consumer_intention": _finite(
                    arrays["topk_ci"][index, position]
                ),
                "provider_intention": _finite(
                    arrays["topk_pi"][index, position]
                ),
                "utilization": _finite(
                    arrays["topk_utilization"][index, position]
                ),
                "chosen": provider == chosen,
            }
        )
    return {
        "format": AUDIT_FORMAT,
        "method": shard.manifest["method"],
        "seed": shard.manifest["seed"],
        "index": index,
        "time": float(arrays["time"][index]),
        "consumer": int(arrays["consumer"][index]),
        "klass": int(arrays["klass"][index]),
        "n_desired": int(arrays["n_desired"][index]),
        "n_candidates": int(arrays["n_candidates"][index]),
        "cache_hit": bool(arrays["cache_hit"][index]),
        "chosen": chosen,
        "imposed": bool(arrays["imposed"][index]),
        "chosen_score": _finite(arrays["chosen_score"][index]),
        "chosen_rank": int(arrays["chosen_rank"][index]),
        "score_gap": _finite(arrays["score_gap"][index]),
        "adequation": _finite(arrays["adequation"][index]),
        "satisfaction": _finite(arrays["satisfaction"][index]),
        "consumer_satisfaction_before": _finite(
            arrays["consumer_satisfaction"][index]
        ),
        "candidates": candidates,
    }


def diff_payload(a: AuditShard, b: AuditShard) -> dict:
    """Paired decision-by-decision divergence of two shards.

    Both shards must come from replays of the *same* recorded trace
    (same seed, environment, and horizon) — that is what makes pairing
    by (time, consumer) exact: replay reads both from the trace file,
    so a decision present in only one shard means the consumer had
    departed under that method's dynamics, not clock noise.
    """
    ma, mb = a.manifest, b.manifest
    mismatches = [
        f"{field} {ma[field]!r} != {mb[field]!r}"
        for field in ("seed", "n_providers", "n_consumers", "duration")
        if ma[field] != mb[field]
    ]
    if mismatches:
        raise AuditReadError(
            "shards do not come from the same trace: " + "; ".join(mismatches)
        )
    ta, ca = a.arrays["time"], a.arrays["consumer"]
    tb, cb = b.arrays["time"], b.arrays["consumer"]
    chosen_a, chosen_b = a.arrays["chosen"], b.arrays["chosen"]
    klass_a = a.arrays["klass"]
    na, nb = int(ta.size), int(tb.size)
    n_providers = int(ma["n_providers"])
    n_classes = int(ma["n_classes"])

    paired = disagreements = only_a = only_b = 0
    first = None
    class_paired = [0] * n_classes
    class_disagree = [0] * n_classes
    counts_a = np.zeros(n_providers, dtype=np.int64)
    counts_b = np.zeros(n_providers, dtype=np.int64)
    i = j = 0
    while i < na and j < nb:
        key_a = (float(ta[i]), int(ca[i]))
        key_b = (float(tb[j]), int(cb[j]))
        if key_a == key_b:
            paired += 1
            klass = int(klass_a[i])
            class_paired[klass] += 1
            pa, pb = int(chosen_a[i]), int(chosen_b[j])
            counts_a[pa] += 1
            counts_b[pb] += 1
            if pa != pb:
                disagreements += 1
                class_disagree[klass] += 1
                if first is None:
                    first = {
                        "index_a": i,
                        "index_b": j,
                        "time": key_a[0],
                        "consumer": key_a[1],
                        "klass": klass,
                        "chosen_a": pa,
                        "chosen_b": pb,
                        "score_a": _finite(a.arrays["chosen_score"][i]),
                        "score_b": _finite(b.arrays["chosen_score"][j]),
                    }
            i += 1
            j += 1
        elif key_a < key_b:
            only_a += 1
            i += 1
        else:
            only_b += 1
            j += 1
    only_a += na - i
    only_b += nb - j

    share_delta = []
    if paired:
        shares_a = counts_a / paired
        shares_b = counts_b / paired
        for provider in range(n_providers):
            delta = float(shares_a[provider] - shares_b[provider])
            if delta != 0.0:
                share_delta.append(
                    {
                        "provider": provider,
                        "share_a": float(shares_a[provider]),
                        "share_b": float(shares_b[provider]),
                        "delta": delta,
                    }
                )
        share_delta.sort(key=lambda row: (-abs(row["delta"]), row["provider"]))

    per_class = [
        {
            "klass": klass,
            "paired": class_paired[klass],
            "disagreements": class_disagree[klass],
            "rate": class_disagree[klass] / class_paired[klass]
            if class_paired[klass]
            else None,
        }
        for klass in range(n_classes)
    ]
    return {
        "format": AUDIT_FORMAT,
        "method_a": ma["method"],
        "method_b": mb["method"],
        "seed": ma["seed"],
        "decisions_a": na,
        "decisions_b": nb,
        "paired": paired,
        "only_a": only_a,
        "only_b": only_b,
        "disagreements": disagreements,
        "disagreement_rate": disagreements / paired if paired else None,
        "first_divergence": first,
        "per_class": per_class,
        "share_delta": share_delta,
    }


# ---------------------------------------------------------------------
# human renderings
# ---------------------------------------------------------------------


def _fmt(value: float | None, spec: str = ".3f") -> str:
    if value is None:
        return "-"
    return format(value, spec)


def format_report(payload: dict, top: int = 10) -> str:
    """The human table rendering of one :func:`report_payload`."""
    lines = [
        f"audit report: method={payload['method']} seed={payload['seed']} "
        f"decisions={payload['decisions']} unserved={payload['unserved']} "
        f"imposed={payload['imposed']}",
        f"candidate cache: {payload['cache']['hits']} hits / "
        f"{payload['cache']['misses']} misses; top-rank picks "
        f"{_fmt(payload['top_rank_rate'], '.1%')}",
    ]
    gap = payload["score_gap"]
    lines.append(
        f"score gap (best - chosen): mean {_fmt(gap['mean'])}  "
        f"p50 {_fmt(gap['p50'])}  p90 {_fmt(gap['p90'])}  "
        f"max {_fmt(gap['max'])}"
    )
    ranked = sorted(
        payload["providers"],
        key=lambda row: (-row["allocations"], row["provider"]),
    )
    lines.append(f"{'provider':>8} {'alloc':>7} {'share':>7} "
                 f"{'cap-share':>9} {'imposed':>7}")
    for row in ranked[:top]:
        lines.append(
            f"{row['provider']:>8} {row['allocations']:>7} "
            f"{row['share']:>7.1%} {row['capacity_share']:>9.1%} "
            f"{row['imposed']:>7}"
        )
    if len(ranked) > top:
        rest = ranked[top:]
        lines.append(
            f"{'…':>8} {sum(r['allocations'] for r in rest):>7} "
            f"{sum(r['share'] for r in rest):>7.1%} "
            f"{sum(r['capacity_share'] for r in rest):>9.1%} "
            f"{sum(r['imposed'] for r in rest):>7}"
            f"   ({len(rest)} more providers)"
        )
    lines.append("routing by class:")
    for row in payload["routing"]:
        lines.append(
            f"  class {row['klass']}: {row['decisions']} decisions, "
            f"top provider "
            + (
                f"{row['top_provider']} ({row['top_share']:.1%})"
                if row["decisions"]
                else "-"
            )
        )
    if payload["anomalies"]:
        lines.append(f"anomalies ({payload['anomaly_count']}):")
        for anomaly in payload["anomalies"]:
            if anomaly["kind"] == "starvation":
                lines.append(
                    f"  starvation: provider {anomaly['provider']} went "
                    f"{anomaly['longest_gap']} decisions unallocated "
                    f"(capacity-fair gap "
                    f"{anomaly['expected_gap']:.1f}, "
                    f"{anomaly['allocations']} allocations total)"
                )
            elif anomaly["kind"] == "satisfaction-free-fall":
                lines.append(
                    f"  satisfaction free-fall: "
                    f"{_fmt(anomaly['from'])} → {_fmt(anomaly['to'])} "
                    f"(drop {anomaly['drop']:.3f}) over decisions "
                    f"{anomaly['start_decision']}–{anomaly['end_decision']}"
                )
            else:
                lines.append(
                    f"  capacity imbalance: provider "
                    f"{anomaly['provider']} allocated "
                    f"{anomaly['allocation_share']:.1%} vs capacity "
                    f"{anomaly['capacity_share']:.1%} "
                    f"(Δ {anomaly['delta']:+.1%})"
                )
    else:
        lines.append("anomalies (0): none detected")
    return "\n".join(lines)


def format_explain(payload: dict) -> str:
    """The human rendering of one :func:`explain_payload`."""
    mode = "imposed" if payload["imposed"] else "selected"
    lines = [
        f"decision #{payload['index']} (method={payload['method']} "
        f"seed={payload['seed']})",
        f"t={payload['time']:.3f}  consumer={payload['consumer']}  "
        f"class={payload['klass']}  wants {payload['n_desired']} "
        f"provider(s) from {payload['n_candidates']} candidates "
        f"(cache {'hit' if payload['cache_hit'] else 'miss'})",
        f"chosen: provider {payload['chosen']} ({mode}; score rank "
        f"{payload['chosen_rank']}, score {_fmt(payload['chosen_score'])}, "
        f"gap to best {_fmt(payload['score_gap'])})",
        f"applied: adequation {_fmt(payload['adequation'])}, "
        f"satisfaction {_fmt(payload['satisfaction'])} "
        f"(consumer satisfaction before: "
        f"{_fmt(payload['consumer_satisfaction_before'])})",
        f"top-{len(payload['candidates'])} candidates by score:",
        f"{'provider':>8} {'score':>8} {'CI':>7} {'PI':>7} {'util':>6}",
    ]
    for row in payload["candidates"]:
        marker = "  ← chosen" if row["chosen"] else ""
        lines.append(
            f"{row['provider']:>8} {_fmt(row['score']):>8} "
            f"{_fmt(row['consumer_intention']):>7} "
            f"{_fmt(row['provider_intention']):>7} "
            f"{_fmt(row['utilization'], '.2f'):>6}{marker}"
        )
    return "\n".join(lines)


def format_diff(payload: dict, top: int = 8) -> str:
    """The human rendering of one :func:`diff_payload`."""
    lines = [
        f"audit diff: {payload['method_a']} vs {payload['method_b']} "
        f"(seed {payload['seed']})",
        f"paired {payload['paired']} decisions "
        f"(+{payload['only_a']} only in {payload['method_a']}, "
        f"+{payload['only_b']} only in {payload['method_b']}); "
        f"disagreements {payload['disagreements']} "
        f"({_fmt(payload['disagreement_rate'], '.1%')})",
    ]
    first = payload["first_divergence"]
    if first is None:
        lines.append("first divergence: none — the methods agreed on "
                     "every paired decision")
    else:
        lines.append(
            f"first divergence: decision #{first['index_a']} "
            f"(t={first['time']:.3f}, consumer {first['consumer']}, "
            f"class {first['klass']}): "
            f"{payload['method_a']} → provider {first['chosen_a']} "
            f"(score {_fmt(first['score_a'])}), "
            f"{payload['method_b']} → provider {first['chosen_b']} "
            f"(score {_fmt(first['score_b'])})"
        )
    lines.append("per-class disagreement:")
    for row in payload["per_class"]:
        lines.append(
            f"  class {row['klass']}: {row['disagreements']}/{row['paired']} "
            f"({_fmt(row['rate'], '.1%')})"
        )
    if payload["share_delta"]:
        lines.append(f"largest share deltas "
                     f"({payload['method_a']} - {payload['method_b']}):")
        for row in payload["share_delta"][:top]:
            lines.append(
                f"  provider {row['provider']:>4}: "
                f"{row['share_a']:.1%} vs {row['share_b']:.1%} "
                f"(Δ {row['delta']:+.1%})"
            )
    return "\n".join(lines)
