"""The per-query decision recorder and its enable/disable plumbing.

One :class:`DecisionAudit` instance per process buffers the decision
records of the run in flight and flushes them once, off the hot path,
as a columnar ``.npz`` shard plus a digest-stamped JSON manifest.  The
plumbing mirrors :mod:`repro.telemetry.registry` exactly:

* :func:`get_audit` returns ``None`` unless ``$REPRO_AUDIT_DIR`` is
  set or :func:`configure_audit` was called — every engine hook is
  guarded by that single ``None`` check, so a disabled run pays one
  attribute load per query and nothing else.
* A forked pool child inherits the parent's recorder object, so
  :func:`get_audit` re-resolves from the environment whenever the
  cached instance's pid is not the current process — each child owns
  its buffer and commits its own shards.
* The recorder never touches an RNG stream and never reorders the
  simulation's arithmetic: scores for the audit record are *recomputed*
  from the same pure functions (:func:`repro.core.scoring.omega_vector`
  / :func:`provider_score_vector`) on the vectors the method already
  received, after selection has happened.  Enabling audit leaves every
  simulation output bit-identical (the golden tests assert this both
  ways) and ``ENGINE_VERSION`` untouched.

Flush protocol (the store's write-order discipline, in miniature):
the shard is written first via ``mkstemp(suffix=".npz.tmp")`` +
``os.replace``, then the manifest via the telemetry layer's
``atomic_write_bytes``.  The manifest is the commit marker — a reader
never trusts a shard without one — so the two crash footprints are an
aged ``*.npz.tmp`` husk and an aged manifest-less ``*.npz``, both of
which ``queue gc``/``fsck`` recognise as age-gated litter.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.core.scoring import omega_vector, provider_score_vector
from repro.reliability.failpoints import failpoint
from repro.telemetry.events import atomic_write_bytes

__all__ = [
    "AUDIT_DIR_ENV",
    "AUDIT_FORMAT",
    "AUDIT_TOP_K",
    "DecisionAudit",
    "audit_from_environment",
    "audit_session",
    "configure_audit",
    "get_audit",
    "manifest_digest",
    "verify_manifest",
]

#: Setting this environment variable to a directory enables decision
#: auditing process-wide (pool children included — they re-read it on
#: first use) and directs every committed shard there.
AUDIT_DIR_ENV = "REPRO_AUDIT_DIR"

#: Manifest format tag; bump when the shard schema changes
#: incompatibly.  One schema for every producer is an invariant: the
#: ``repro audit`` read surfaces parse exactly one shape.
AUDIT_FORMAT = "repro-audit-1"

#: Candidates kept per decision, best score first.  A constant — not a
#: knob — so every shard is rectangular and two shards diff cleanly.
AUDIT_TOP_K = 4

#: Hex digits of the SHA-256 kept as the manifest stamp (same width as
#: the telemetry event stamp).
_DIGEST_LENGTH = 16


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def manifest_digest(manifest: dict) -> str:
    """The truncated SHA-256 of ``manifest`` without its stamp."""
    body = {k: v for k, v in manifest.items() if k != "digest"}
    return hashlib.sha256(
        _canonical(body).encode("utf-8")
    ).hexdigest()[:_DIGEST_LENGTH]


def verify_manifest(manifest: dict) -> bool:
    """Whether ``manifest``'s digest stamp matches its content."""
    stamp = manifest.get("digest")
    return isinstance(stamp, str) and manifest_digest(manifest) == stamp


class DecisionAudit:
    """One process's decision buffer and shard writer.

    Parameters
    ----------
    audit_dir:
        Directory committed shards land in (created on first commit).
    """

    def __init__(self, audit_dir: Path | str) -> None:
        self.pid = os.getpid()
        self.audit_dir = Path(audit_dir)
        self._run: dict | None = None

    # -- engine-facing hooks ------------------------------------------

    def begin_run(
        self,
        method: str,
        seed: int,
        capacity_rates: np.ndarray,
        n_classes: int,
        epsilon: float,
        fixed_omega: float | None,
    ) -> None:
        """Reset the buffer for one run (engine ``__init__``).

        ``method`` here is the engine's method name (provenance only);
        the shard's filename method comes from the registry name the
        committing executor passes to :meth:`commit`.
        """
        self._run = {
            "engine_method": str(method),
            "seed": int(seed),
            "capacity_rates": np.asarray(capacity_rates, dtype=float).copy(),
            "n_classes": int(n_classes),
            "epsilon": float(epsilon),
            "fixed_omega": None if fixed_omega is None else float(fixed_omega),
            "unserved": 0,
            # Columnar per-decision buffers (scalars as Python lists,
            # top-K rows as fixed-width arrays stacked at commit).
            "time": [],
            "consumer": [],
            "klass": [],
            "n_desired": [],
            "n_candidates": [],
            "cache_hit": [],
            "chosen": [],
            "n_selected": [],
            "imposed": [],
            "chosen_score": [],
            "chosen_rank": [],
            "score_gap": [],
            "adequation": [],
            "satisfaction": [],
            "consumer_satisfaction": [],
            "topk_providers": [],
            "topk_scores": [],
            "topk_ci": [],
            "topk_pi": [],
            "topk_utilization": [],
        }

    def record_unserved(self) -> None:
        """Count one arrival that found an empty candidate set."""
        if self._run is not None:
            self._run["unserved"] += 1

    def record(
        self,
        time: float,
        consumer: int,
        klass: int,
        n_desired: int,
        cache_hit: bool,
        candidates: np.ndarray,
        positions: np.ndarray,
        provider_intentions: np.ndarray,
        consumer_intentions: np.ndarray,
        utilizations: np.ndarray,
        consumer_satisfaction: float,
        provider_satisfactions: np.ndarray,
        adequation: float,
        satisfaction: float,
    ) -> None:
        """Append one decision (engine ``_dispatch``, post-selection).

        Everything kept is a *copy* gathered out of the per-query
        vectors — the engine reuses its scratch buffers next arrival —
        and the SQLB score recompute below draws no randomness, so
        recording cannot perturb the run.
        """
        run = self._run
        if run is None:
            return
        if run["fixed_omega"] is not None:
            omegas = np.full(
                provider_intentions.shape, run["fixed_omega"]
            )
        else:
            omegas = omega_vector(
                consumer_satisfaction, provider_satisfactions
            )
        scores = provider_score_vector(
            provider_intentions,
            consumer_intentions,
            omegas,
            epsilon=run["epsilon"],
        )
        pos0 = int(positions[0])
        chosen_score = float(scores[pos0])
        finite = scores[np.isfinite(scores)]
        best = float(finite.max()) if finite.size else float("nan")
        # Rank among candidates by score, 0 = best.  ``NaN > x`` is
        # False, so unknown-score candidates never outrank the chosen.
        rank = int(np.sum(scores > chosen_score))

        k = min(AUDIT_TOP_K, candidates.size)
        # Best-score-first, provider index as the deterministic
        # tie-break (lexsort's *last* key is primary; NaN sorts last).
        order = np.lexsort((candidates, -scores))[:k]
        top_providers = np.full(AUDIT_TOP_K, -1, dtype=np.int64)
        top_scores = np.full(AUDIT_TOP_K, np.nan)
        top_ci = np.full(AUDIT_TOP_K, np.nan)
        top_pi = np.full(AUDIT_TOP_K, np.nan)
        top_util = np.full(AUDIT_TOP_K, np.nan)
        top_providers[:k] = candidates[order]
        top_scores[:k] = scores[order]
        top_ci[:k] = consumer_intentions[order]
        top_pi[:k] = provider_intentions[order]
        top_util[:k] = utilizations[order]

        run["time"].append(float(time))
        run["consumer"].append(int(consumer))
        run["klass"].append(int(klass))
        run["n_desired"].append(int(n_desired))
        run["n_candidates"].append(int(candidates.size))
        run["cache_hit"].append(bool(cache_hit))
        run["chosen"].append(int(candidates[pos0]))
        run["n_selected"].append(int(positions.size))
        run["imposed"].append(bool(provider_intentions[pos0] < 0.0))
        run["chosen_score"].append(chosen_score)
        run["chosen_rank"].append(rank)
        run["score_gap"].append(best - chosen_score)
        run["adequation"].append(float(adequation))
        run["satisfaction"].append(float(satisfaction))
        run["consumer_satisfaction"].append(float(consumer_satisfaction))
        run["topk_providers"].append(top_providers)
        run["topk_scores"].append(top_scores)
        run["topk_ci"].append(top_ci)
        run["topk_pi"].append(top_pi)
        run["topk_utilization"].append(top_util)

    @property
    def pending(self) -> bool:
        """Whether an uncommitted run buffer exists."""
        return self._run is not None

    # -- commit --------------------------------------------------------

    @staticmethod
    def _arrays(run: dict) -> dict[str, np.ndarray]:
        n = len(run["time"])

        def stack(name: str) -> np.ndarray:
            rows = run[name]
            if not rows:
                return np.empty((0, AUDIT_TOP_K))
            return np.stack(rows)

        return {
            "time": np.asarray(run["time"], dtype=float),
            "consumer": np.asarray(run["consumer"], dtype=np.int64),
            "klass": np.asarray(run["klass"], dtype=np.int64),
            "n_desired": np.asarray(run["n_desired"], dtype=np.int64),
            "n_candidates": np.asarray(run["n_candidates"], dtype=np.int64),
            "cache_hit": np.asarray(run["cache_hit"], dtype=np.uint8),
            "chosen": np.asarray(run["chosen"], dtype=np.int64),
            "n_selected": np.asarray(run["n_selected"], dtype=np.int64),
            "imposed": np.asarray(run["imposed"], dtype=np.uint8),
            "chosen_score": np.asarray(run["chosen_score"], dtype=float),
            "chosen_rank": np.asarray(run["chosen_rank"], dtype=np.int64),
            "score_gap": np.asarray(run["score_gap"], dtype=float),
            "adequation": np.asarray(run["adequation"], dtype=float),
            "satisfaction": np.asarray(run["satisfaction"], dtype=float),
            "consumer_satisfaction": np.asarray(
                run["consumer_satisfaction"], dtype=float
            ),
            "topk_providers": stack("topk_providers").astype(np.int64),
            "topk_scores": stack("topk_scores").astype(float),
            "topk_ci": stack("topk_ci").astype(float),
            "topk_pi": stack("topk_pi").astype(float),
            "topk_utilization": stack("topk_utilization").astype(float),
            "capacity_rates": run["capacity_rates"],
        } | {"n_decisions": np.asarray([n], dtype=np.int64)}

    def commit(self, key: str, method: str, config) -> Path | None:
        """Flush the buffered run as ``audit-<method>-seed<seed>-<key16>``.

        ``key`` is the run's result-store cache key (the shard sits
        "next to" its store entry by name even when the audit directory
        is elsewhere); ``method`` is the registry name the job ran
        under.  Shard strictly before manifest; the manifest is the
        commit marker.  Returns the manifest path, or ``None`` when no
        run is buffered (double commit, or audit enabled mid-run).
        """
        run = self._run
        if run is None:
            return None
        self._run = None
        arrays = self._arrays(run)
        self.audit_dir.mkdir(parents=True, exist_ok=True)
        stem = f"audit-{method}-seed{run['seed']}-{key[:16]}"
        shard_path = self.audit_dir / f"{stem}.npz"
        manifest_path = self.audit_dir / f"{stem}.json"

        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        shard_bytes = buffer.getvalue()
        failpoint("audit.commit.shard")
        _replace_write(shard_path, shard_bytes, suffix=".npz.tmp")
        failpoint("audit.commit.manifest")

        manifest = {
            "format": AUDIT_FORMAT,
            "engine_version": _engine_version(),
            "method": str(method),
            "engine_method": run["engine_method"],
            "seed": run["seed"],
            "key": key,
            "npz": shard_path.name,
            "npz_sha256": hashlib.sha256(shard_bytes).hexdigest(),
            "decisions": int(arrays["n_decisions"][0]),
            "unserved": run["unserved"],
            "top_k": AUDIT_TOP_K,
            "n_providers": int(config.n_providers),
            "n_consumers": int(config.n_consumers),
            "n_classes": run["n_classes"],
            "duration": float(config.duration),
            "epsilon": run["epsilon"],
            "fixed_omega": run["fixed_omega"],
        }
        manifest["digest"] = manifest_digest(manifest)
        atomic_write_bytes(
            manifest_path,
            (json.dumps(manifest, sort_keys=True, indent=1) + "\n").encode(
                "utf-8"
            ),
        )
        return manifest_path


def _engine_version() -> str:
    # Local import: the engine imports this module at load time.
    from repro.simulation.engine import ENGINE_VERSION

    return ENGINE_VERSION


def _replace_write(path: Path, data: bytes, suffix: str) -> None:
    """Write-then-rename with a *visible* (undotted) temp suffix.

    The shard half deliberately uses ``<stem>-<rand><suffix>`` instead
    of the dot-prefixed idiom: gc/fsck age-gate exactly this footprint
    (``*.npz.tmp``) so a crashed commit is distinguishable from generic
    atomic-write litter in reports.
    """
    import tempfile

    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f"{path.stem}-", suffix=suffix
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ---------------------------------------------------------------------
# process-wide active recorder
# ---------------------------------------------------------------------

_active: DecisionAudit | None = None
_resolved = False


def audit_from_environment() -> DecisionAudit | None:
    """A recorder per ``$REPRO_AUDIT_DIR`` (unset/empty → ``None``)."""
    audit_dir = os.environ.get(AUDIT_DIR_ENV, "").strip()
    return DecisionAudit(audit_dir) if audit_dir else None


def get_audit() -> DecisionAudit | None:
    """The process's active recorder, or ``None`` when disabled.

    Resolved lazily from the environment on first call; a forked pool
    child that inherited the parent's recorder re-resolves so each
    process buffers and commits its own shards.
    """
    global _active, _resolved
    if not _resolved or (
        _active is not None and _active.pid != os.getpid()
    ):
        _active = audit_from_environment()
        _resolved = True
    return _active


def configure_audit(
    audit_dir: Path | str | None = None, enabled: bool = True
) -> DecisionAudit | None:
    """Install (or clear) the process-wide recorder explicitly."""
    global _active, _resolved
    _active = (
        DecisionAudit(audit_dir)
        if enabled and audit_dir is not None
        else None
    )
    _resolved = True
    return _active


@contextmanager
def audit_session(audit_dir: Path | str):
    """Scoped recorder for tests.

    Installs a fresh recorder, yields it, and restores whatever was
    active before — including the unresolved lazy state, so a session
    inside a disabled process leaves it disabled.
    """
    global _active, _resolved
    previous = (_active, _resolved)
    audit = DecisionAudit(audit_dir)
    _active, _resolved = audit, True
    try:
        yield audit
    finally:
        _active, _resolved = previous
