"""Persistent, content-addressed store for simulation results.

Simulations are fully deterministic given ``(config, method, seed)``, so
a completed :class:`~repro.simulation.engine.SimulationResult` can be
cached on disk and reused across interpreter sessions — the paper's
evaluation re-runs the same (environment, method) families for many
figures, and the in-process ``lru_cache`` the harness used before this
store threw all of that work away at interpreter exit.

Cache keys are SHA-256 hashes of a canonical JSON payload covering the
full :class:`~repro.simulation.config.SimulationConfig`, the method
name, the seed, and the engine's
:data:`~repro.simulation.engine.ENGINE_VERSION` tag; any change to any
of those yields a different key, and bumping the engine version
invalidates every cached run at once.

Each cached run is two files under the store root:

* ``<key>.npz`` — the numeric payload: the sampled time axis, every
  collector series (``series__<name>``), every end-of-run array
  (``final__<name>``), and the two response-time scalars.  ``float64``
  all the way down, so a round-trip is bit-exact.
* ``<key>.json`` — the metadata: provenance, counters, the departure
  records, and the engine version.

Writes are atomic (tempfile + rename) so a crashed or parallel writer
never leaves a partially-written entry behind; unreadable entries are
treated as misses and overwritten on the next ``put``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import tempfile
import zipfile
from pathlib import Path

import numpy as np

from repro.reliability.durability import (
    durable_writes_enabled,
    fsync_dir,
    fsync_fd,
)
from repro.reliability.failpoints import failpoint, torn_payload
from repro.simulation.config import SimulationConfig
from repro.simulation.departures import DepartureRecord
from repro.simulation.engine import ENGINE_VERSION, SimulationResult
from repro.simulation.stats import TimeSeriesCollector
from repro.telemetry.registry import get_telemetry

__all__ = [
    "ResultStore",
    "StoreVerifyReport",
    "StoredSeries",
    "cache_key",
]

#: Bump when the *serialization format* (not the simulation semantics)
#: changes incompatibly; part of every cache key.
_FORMAT_VERSION = "1"

_DEPARTURE_FIELDS = tuple(
    f.name for f in dataclasses.fields(DepartureRecord)
)


def cache_key(config: SimulationConfig, method: str, seed: int) -> str:
    """Stable content hash identifying one deterministic run.

    Hashes the canonical JSON of the full config (nested dataclasses
    included), the method name, the seed, and the engine/format version
    tags.  Two runs share a key if and only if they are guaranteed to
    produce identical results.

    ``WorkloadSpec`` fields that are ``None`` (the kind-specific knobs
    of the burst/piecewise kinds) are dropped from the payload: an
    unset knob cannot influence the run, and dropping it keeps the keys
    of pre-existing fixed/ramp stores valid when new optional workload
    fields are introduced.  Any future optional workload field must
    follow the same None-means-absent convention.

    The opt-in top-level scenario dimensions (``faults``, ``strategic``)
    follow the same convention: ``None`` means the feature is absent and
    is dropped, so keys minted before those fields existed stay valid.
    Only these named fields are dropped — other top-level ``None``
    values (``fixed_omega``, ``fixed_provider_satisfaction``) predate
    the convention and are serialized as ``null`` in every existing key.
    """
    config_payload = dataclasses.asdict(config)
    config_payload["workload"] = {
        name: value
        for name, value in config_payload["workload"].items()
        if value is not None
    }
    for name in ("faults", "strategic"):
        if config_payload.get(name) is None:
            config_payload.pop(name, None)
    payload = {
        "engine_version": ENGINE_VERSION,
        "format_version": _FORMAT_VERSION,
        "method": str(method),
        "seed": int(seed),
        "config": config_payload,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class StoredSeries:
    """The sampled-series slice of one cached run.

    The read-side analysis layer wants *only* the time axis and a few
    named series per run — rebuilding a full
    :class:`~repro.simulation.engine.SimulationResult` (departure
    records, final arrays, metadata) for every (seed × figure) read
    would be pure waste.  This is that cheap view: the ``.npz`` payload
    alone, optionally restricted to requested names.
    """

    times: np.ndarray
    series: dict[str, np.ndarray]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self.series)


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` with no partially-visible state.

    Tempfile + ``os.replace`` is the repo's one durable-write idiom —
    queue records route through here too.  The three failpoint sites
    bracket the commit point (``os.replace``) so chaos tests can kill a
    writer at every distinguishable instant; under
    ``REPRO_DURABLE_WRITES=1`` the temp file is fsynced before the
    rename and the parent directory after it, upgrading crash
    atomicity to power-loss durability.
    """
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, "wb") as handle:
            torn = torn_payload("store.write.data", data)
            if torn is not None:
                # A writer that died mid-write: a truncated temp file
                # and an error — the final path is never touched.
                handle.write(torn)
                handle.flush()
                raise OSError(
                    f"torn write (failpoint) while writing {path.name}"
                )
            handle.write(data)
            if durable_writes_enabled():
                handle.flush()
                fsync_fd(handle.fileno())
        failpoint("store.write.before_replace")
        os.replace(tmp, path)
        failpoint("store.write.after_replace")
        if durable_writes_enabled():
            fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclasses.dataclass(frozen=True)
class StoreVerifyReport:
    """What :meth:`ResultStore.verify` found.

    ``orphan_npz`` are keys whose ``.npz`` half exists without its
    ``.json`` — an interrupted ``put`` (the json is written last, so
    it is the commit marker; the entry was never visible).
    ``orphan_json`` are the reverse — a json without its npz, which
    should be impossible under the documented write order and means
    the payload was deleted or the order was violated.  ``unreadable``
    are complete pairs whose json or npz fails to parse (power-loss
    torn writes; ``get`` degrades them to misses).  All three are safe
    to prune: none can ever be served as a hit.
    """

    entries: int
    orphan_npz: tuple[str, ...]
    orphan_json: tuple[str, ...]
    unreadable: tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not (
            self.orphan_npz or self.orphan_json or self.unreadable
        )


class ResultStore:
    """Disk-backed cache of completed simulation results.

    Parameters
    ----------
    root:
        Directory holding the cached entries (created on first write).

    The store keeps hit/miss/write counters so callers (and tests) can
    assert cache behaviour — e.g. that a warm re-run of an experiment
    family performs zero new simulations.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # -- counters ----------------------------------------------------
    # Store operations are per-job, not per-query, so mirroring each
    # into the (possibly disabled) telemetry registry costs nothing
    # measurable.

    def _record_hit(self) -> None:
        self.hits += 1
        telemetry = get_telemetry()
        if telemetry is not None:
            telemetry.count("store.hits")

    def _record_miss(self) -> None:
        self.misses += 1
        telemetry = get_telemetry()
        if telemetry is not None:
            telemetry.count("store.misses")

    def _record_write(self, n_bytes: int) -> None:
        self.writes += 1
        telemetry = get_telemetry()
        if telemetry is not None:
            telemetry.count("store.writes")
            telemetry.count("store.write_bytes", n_bytes)

    # -- introspection ----------------------------------------------

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ResultStore(root={str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )

    def key(self, config: SimulationConfig, method: str, seed: int) -> str:
        return cache_key(config, method, seed)

    def contains(
        self, config: SimulationConfig, method: str, seed: int
    ) -> bool:
        key = cache_key(config, method, seed)
        return self._json_path(key).is_file() and self._npz_path(key).is_file()

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.glob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        for path in self.root.glob("*.npz"):
            path.unlink(missing_ok=True)
        return removed

    def verify(self, deep: bool = True) -> StoreVerifyReport:
        """Audit the on-disk state against the write-order contract.

        Pairs top-level ``<key>.json`` / ``<key>.npz`` halves by stem
        (``glob`` never matches the dot-prefixed atomic-write temps, and
        manifests/figures live in subdirectories).  With ``deep=True``
        each complete pair is also opened end-to-end — the only way to
        catch a power-loss torn file that kept its committed name.
        """
        if not self.root.is_dir():
            return StoreVerifyReport(
                entries=0, orphan_npz=(), orphan_json=(), unreadable=()
            )
        json_keys = {path.stem for path in self.root.glob("*.json")}
        npz_keys = {path.stem for path in self.root.glob("*.npz")}
        paired = json_keys & npz_keys
        unreadable: list[str] = []
        if deep:
            for key in sorted(paired):
                try:
                    json.loads(self._json_path(key).read_text())
                    with np.load(self._npz_path(key)) as archive:
                        for name in archive.files:
                            archive[name]
                except (
                    OSError,
                    ValueError,
                    KeyError,
                    json.JSONDecodeError,
                    zipfile.BadZipFile,
                ):
                    unreadable.append(key)
        return StoreVerifyReport(
            entries=len(paired),
            orphan_npz=tuple(sorted(npz_keys - json_keys)),
            orphan_json=tuple(sorted(json_keys - npz_keys)),
            unreadable=tuple(unreadable),
        )

    def prune_invalid(self, report: StoreVerifyReport | None = None) -> int:
        """Delete every entry ``verify`` condemned; returns files removed.

        Safe by construction: orphan halves and unreadable pairs can
        never be served as hits, so removing them only reclaims space
        and silences fsck.
        """
        if report is None:
            report = self.verify(deep=True)
        removed = 0
        for key in report.orphan_npz:
            self._npz_path(key).unlink(missing_ok=True)
            removed += 1
        for key in report.orphan_json:
            self._json_path(key).unlink(missing_ok=True)
            removed += 1
        for key in report.unreadable:
            for path in (self._json_path(key), self._npz_path(key)):
                if path.exists():
                    path.unlink(missing_ok=True)
                    removed += 1
        return removed

    # -- paths -------------------------------------------------------

    def _json_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _npz_path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    # -- load / save -------------------------------------------------

    def get(
        self, config: SimulationConfig, method: str, seed: int
    ) -> SimulationResult | None:
        """The cached result for this run, or None on a miss.

        The caller's ``config`` is attached to the returned result (the
        key proves it is the config the run was simulated with), so the
        store never needs to reconstruct a config from JSON.
        """
        key = cache_key(config, method, seed)
        try:
            meta = json.loads(self._json_path(key).read_text())
            with np.load(self._npz_path(key)) as archive:
                arrays = {name: archive[name].copy() for name in archive.files}
            result = self._rebuild(meta, arrays, config)
        except (
            OSError,
            ValueError,
            KeyError,
            TypeError,
            json.JSONDecodeError,
            zipfile.BadZipFile,
        ):
            # Unreadable or schema-mismatched entries degrade to misses;
            # the next put() overwrites them.
            self._record_miss()
            return None
        self._record_hit()
        return result

    def load_series(
        self,
        config: SimulationConfig,
        method: str,
        seed: int,
        names: tuple[str, ...] | None = None,
    ) -> StoredSeries | None:
        """The sampled series of one cached run, or None on a miss.

        Reads only the ``.npz`` payload — no metadata parse, no result
        reconstruction — so aggregating many seeds over one named
        series (the analysis layer's band extraction) costs one archive
        open per run.  ``names`` restricts which series are
        materialised (None = all).

        An unreadable or schema-mismatched entry is a miss (None), but
        a *readable* entry that lacks a requested name raises
        ``KeyError``: every run of one engine version samples the same
        series catalogue, so an absent name is a caller typo — and
        reporting it as "missing data" would send the user chasing a
        store problem that does not exist.
        """
        key = cache_key(config, method, seed)
        try:
            archive = np.load(self._npz_path(key))
        except (OSError, ValueError, zipfile.BadZipFile):
            self._record_miss()
            return None
        with archive:
            if "times" not in archive.files:
                self._record_miss()
                return None
            available = {
                name.removeprefix("series__")
                for name in archive.files
                if name.startswith("series__")
            }
            if names is None:
                wanted: tuple[str, ...] = tuple(sorted(available))
            else:
                unknown = [n for n in names if n not in available]
                if unknown:
                    raise KeyError(
                        f"unknown series {sorted(unknown)}; this run "
                        f"sampled: {', '.join(sorted(available))}"
                    )
                wanted = tuple(names)
            try:
                times = archive["times"].copy()
                series = {
                    name: archive[f"series__{name}"].copy()
                    for name in wanted
                }
            except (OSError, ValueError, zipfile.BadZipFile):  # pragma: no cover - torn npz
                self._record_miss()
                return None
        self._record_hit()
        return StoredSeries(times=times, series=series)

    def put(self, result: SimulationResult, method: str | None = None) -> str:
        """Persist one completed result; returns its cache key.

        ``method`` is the *registry name* the run was requested under.
        It defaults to ``result.method_name``, but the two can differ:
        registry aliases (``knbest`` / ``knbest_score``) build method
        objects sharing one class-level name, and keying by that would
        let one alias's results answer for the other.  Callers that
        know the registry name (the executor does) must pass it.
        """
        key = cache_key(
            result.config, method or result.method_name, result.seed
        )
        self.root.mkdir(parents=True, exist_ok=True)

        arrays: dict[str, np.ndarray] = {
            "times": result.times(),
            "response_times": np.asarray(
                [result.response_time_mean, result.response_time_post_warmup],
                dtype=float,
            ),
        }
        for name, values in result.collector.as_dict().items():
            arrays[f"series__{name}"] = values
        for name, values in result.final.items():
            arrays[f"final__{name}"] = np.asarray(values)

        meta = {
            "engine_version": ENGINE_VERSION,
            "format_version": _FORMAT_VERSION,
            "method_name": result.method_name,
            "seed": int(result.seed),
            "queries_issued": int(result.queries_issued),
            "queries_served": int(result.queries_served),
            "queries_unserved": int(result.queries_unserved),
            "initial_providers": int(result.initial_providers),
            "initial_consumers": int(result.initial_consumers),
            "departures": [
                dataclasses.asdict(record) for record in result.departures
            ],
        }

        # savez to memory first so the on-disk write can be atomic.
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        npz_payload = buffer.getvalue()
        json_payload = json.dumps(meta, sort_keys=True).encode("utf-8")
        # Write order is a contract: npz strictly before json.  Both
        # ``contains`` and ``get`` require the json half, so the json is
        # the commit marker — a writer that dies between the two writes
        # leaves an invisible orphan npz (verify()/fsck prune it), never
        # a visible entry with a missing payload.
        _atomic_write_bytes(self._npz_path(key), npz_payload)
        _atomic_write_bytes(self._json_path(key), json_payload)
        self._record_write(len(npz_payload) + len(json_payload))
        return key

    @staticmethod
    def _rebuild(
        meta: dict,
        arrays: dict[str, np.ndarray],
        config: SimulationConfig,
    ) -> SimulationResult:
        series = {
            name.removeprefix("series__"): values
            for name, values in arrays.items()
            if name.startswith("series__")
        }
        final = {
            name.removeprefix("final__"): values
            for name, values in arrays.items()
            if name.startswith("final__")
        }
        departures = [
            DepartureRecord(
                **{name: record[name] for name in _DEPARTURE_FIELDS}
            )
            for record in meta["departures"]
        ]
        response_times = arrays["response_times"]
        return SimulationResult(
            method_name=meta["method_name"],
            seed=int(meta["seed"]),
            config=config,
            collector=TimeSeriesCollector.from_arrays(
                arrays["times"], series
            ),
            departures=departures,
            queries_issued=int(meta["queries_issued"]),
            queries_served=int(meta["queries_served"]),
            queries_unserved=int(meta["queries_unserved"]),
            response_time_mean=float(response_times[0]),
            response_time_post_warmup=float(response_times[1]),
            final=final,
            initial_providers=int(meta["initial_providers"]),
            initial_consumers=int(meta["initial_consumers"]),
        )
