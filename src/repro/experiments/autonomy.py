"""Autonomy experiments (Section 6.3.2, Figures 5-6 and Table 3).

Participants are free to leave once their thresholds trip.  The
experiment families:

* :func:`departure_response_times` — Figure 5(a) (dissatisfaction +
  starvation) and Figure 5(b) (all reasons): response time vs workload.
* :func:`provider_departure_curve` — Figure 5(c): % of providers that
  left, per workload.
* :func:`consumer_departure_curve` — Figure 6: % of consumers that
  left, per workload.
* :func:`departure_reason_table` — Table 3: at one workload (80 % in
  the paper), the % of the provider population that left by each reason,
  broken down three ways (consumer-interest band, adaptation band,
  capacity band).  Each breakdown row of a reason sums to that reason's
  total, exactly as in the paper's table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.allocation.registry import PAPER_METHODS
from repro.experiments.captive import DEFAULT_WORKLOADS, response_time_curve
from repro.experiments.harness import (
    DEFAULT_SEEDS,
    run_method_family,
)
from repro.simulation.config import (
    DepartureRules,
    SimulationConfig,
    WorkloadSpec,
    scaled_config,
)

__all__ = [
    "DepartureReasonTable",
    "consumer_departure_curve",
    "departure_reason_table",
    "departure_response_times",
    "provider_departure_curve",
]

REASONS = ("dissatisfaction", "starvation", "overutilization")
DIMENSIONS = ("interest", "adaptation", "capacity")
BANDS = ("low", "medium", "high")


def departure_response_times(
    include_overutilization: bool,
    config: SimulationConfig | None = None,
    methods: tuple[str, ...] = PAPER_METHODS,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    workloads: tuple[float, ...] = DEFAULT_WORKLOADS,
):
    """Figure 5(a) (``include_overutilization=False``) / 5(b) (True)."""
    rules = DepartureRules.autonomous(
        include_overutilization=include_overutilization
    )
    return response_time_curve(
        config=config,
        methods=methods,
        seeds=seeds,
        workloads=workloads,
        departures=rules,
    )


def _departure_fractions(
    kind: str,
    config: SimulationConfig | None,
    methods: tuple[str, ...],
    seeds: tuple[int, ...],
    workloads: tuple[float, ...],
) -> dict[str, np.ndarray]:
    base = config if config is not None else scaled_config()
    rules = DepartureRules.autonomous(include_overutilization=True)
    fractions: dict[str, list[float]] = {method: [] for method in methods}
    for workload in workloads:
        run_config = base.with_workload(
            WorkloadSpec.fixed(workload)
        ).with_departures(rules)
        family = run_method_family(run_config, methods, seeds)
        for method in methods:
            averages = family[method]
            value = (
                averages.provider_departure_fraction()
                if kind == "provider"
                else averages.consumer_departure_fraction()
            )
            fractions[method].append(value)
    return {m: np.asarray(v) for m, v in fractions.items()}


def provider_departure_curve(
    config: SimulationConfig | None = None,
    methods: tuple[str, ...] = PAPER_METHODS,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    workloads: tuple[float, ...] = DEFAULT_WORKLOADS,
) -> dict[str, np.ndarray]:
    """Figure 5(c): provider departure fraction per workload."""
    return _departure_fractions("provider", config, methods, seeds, workloads)


def consumer_departure_curve(
    config: SimulationConfig | None = None,
    methods: tuple[str, ...] = PAPER_METHODS,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    workloads: tuple[float, ...] = DEFAULT_WORKLOADS,
) -> dict[str, np.ndarray]:
    """Figure 6: consumer departure fraction per workload."""
    return _departure_fractions("consumer", config, methods, seeds, workloads)


@dataclass(frozen=True)
class DepartureReasonTable:
    """The Table 3 structure for one method.

    ``cells[reason][dimension][band]`` is the percentage of the original
    provider population that departed for ``reason`` and belongs to
    ``band`` along ``dimension``; ``totals[reason]`` is the reason's
    total percentage (each dimension row sums to it, as in the paper).
    """

    method: str
    cells: dict[str, dict[str, dict[str, float]]]
    totals: dict[str, float]

    def check_consistency(self, tolerance: float = 1e-9) -> None:
        """Assert each breakdown row sums to its reason total."""
        for reason, dims in self.cells.items():
            for dimension, bands in dims.items():
                row_sum = sum(bands.values())
                if abs(row_sum - self.totals[reason]) > tolerance:
                    raise AssertionError(
                        f"{self.method}/{reason}/{dimension}: row sums to "
                        f"{row_sum}, expected {self.totals[reason]}"
                    )


def departure_reason_table(
    workload: float = 0.80,
    config: SimulationConfig | None = None,
    methods: tuple[str, ...] = PAPER_METHODS,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
) -> dict[str, DepartureReasonTable]:
    """Table 3: departure reasons × class breakdowns at one workload."""
    base = config if config is not None else scaled_config()
    run_config = base.with_workload(
        WorkloadSpec.fixed(workload)
    ).with_departures(DepartureRules.autonomous(include_overutilization=True))
    family = run_method_family(run_config, methods, seeds)

    tables = {}
    for method in methods:
        averages = family[method]
        n_seeds = len(averages.results)
        n_providers = run_config.n_providers
        cells = {
            reason: {dim: {band: 0.0 for band in BANDS} for dim in DIMENSIONS}
            for reason in REASONS
        }
        totals = {reason: 0.0 for reason in REASONS}
        for result in averages.results:
            for record in result.departures:
                if record.kind != "provider":
                    continue
                share = 100.0 / (n_providers * n_seeds)
                totals[record.reason] += share
                bands_of = {
                    "interest": record.interest_class,
                    "adaptation": record.adaptation_class,
                    "capacity": record.capacity_class,
                }
                for dimension, band_index in bands_of.items():
                    cells[record.reason][dimension][BANDS[band_index]] += share
        tables[method] = DepartureReasonTable(
            method=method, cells=cells, totals=totals
        )
    return tables
