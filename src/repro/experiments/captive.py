"""Captive-participant experiments (Section 6.3.1, Figure 4).

Two experiment families:

* :func:`captive_ramp` — participants cannot leave; the workload ramps
  uniformly from 30 % to 100 % of total system capacity over the run.
  Figures 4(a)-(h) are all different series of this one family.
* :func:`response_time_curve` — fixed workloads from 20 % to 100 %;
  post-warmup mean response time per method (Figure 4(i)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.allocation.registry import PAPER_METHODS
from repro.experiments.harness import (
    DEFAULT_SEEDS,
    MethodAverages,
    run_method_family,
)
from repro.simulation.config import (
    DepartureRules,
    SimulationConfig,
    WorkloadSpec,
    scaled_config,
)

__all__ = [
    "DEFAULT_WORKLOADS",
    "FIGURE4_SERIES",
    "captive_ramp",
    "captive_ramp_config",
    "response_time_curve",
]

#: Workload grid (fractions of total system capacity) for the
#: response-time and autonomy curves; the paper plots 20-100 %.
DEFAULT_WORKLOADS = (0.2, 0.4, 0.6, 0.8, 1.0)

#: Figure id → the engine series it plots (see DESIGN.md §3).
FIGURE4_SERIES = {
    "4a": "provider_intention_satisfaction_mean",
    "4b": "provider_preference_satisfaction_mean",
    "4c": "provider_preference_allocation_satisfaction_mean",
    "4d": "provider_intention_satisfaction_fairness",
    "4e": "consumer_allocation_satisfaction_mean",
    "4f": "consumer_satisfaction_fairness",
    "4g": "utilization_mean",
    "4h": "utilization_fairness",
}


def captive_ramp_config(base: SimulationConfig | None = None) -> SimulationConfig:
    """The Figure 4(a)-(h) environment: captive, 30→100 % ramp."""
    config = base if base is not None else scaled_config()
    return config.with_departures(DepartureRules.captive()).with_workload(
        WorkloadSpec(kind="ramp", start_fraction=0.30, end_fraction=1.00)
    )


def captive_ramp(
    config: SimulationConfig | None = None,
    methods: tuple[str, ...] = PAPER_METHODS,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
) -> dict[str, MethodAverages]:
    """Run (or fetch from cache) the Figure 4(a)-(h) simulation family."""
    return run_method_family(captive_ramp_config(config), methods, seeds)


@dataclass(frozen=True)
class ResponseTimeCurve:
    """Mean post-warmup response time per method per workload level."""

    workloads: tuple[float, ...]
    response_times: dict[str, np.ndarray]  # method → aligned with workloads

    def factor_vs(self, baseline: str) -> dict[str, np.ndarray]:
        """Response-time ratios of every method against one baseline."""
        reference = self.response_times[baseline]
        return {
            method: values / reference
            for method, values in self.response_times.items()
        }


def response_time_curve(
    config: SimulationConfig | None = None,
    methods: tuple[str, ...] = PAPER_METHODS,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    workloads: tuple[float, ...] = DEFAULT_WORKLOADS,
    departures: DepartureRules | None = None,
) -> ResponseTimeCurve:
    """Post-warmup response time versus workload (Figure 4(i) captive;
    pass autonomy rules for the Figure 5(a)/5(b) variants)."""
    base = config if config is not None else scaled_config()
    rules = departures if departures is not None else DepartureRules.captive()
    times: dict[str, list[float]] = {method: [] for method in methods}
    for workload in workloads:
        run_config = base.with_workload(
            WorkloadSpec.fixed(workload)
        ).with_departures(rules)
        family = run_method_family(run_config, methods, seeds)
        for method in methods:
            times[method].append(family[method].response_time())
    return ResponseTimeCurve(
        workloads=tuple(workloads),
        response_times={
            method: np.asarray(values) for method, values in times.items()
        },
    )
