"""Departure prediction from captive-run metrics (Section 3.3 / 6.3.1).

A stated purpose of the satisfaction model is diagnostic: "applying the
proposed metrics over the provided model allows the prediction of
possible departures of participants" — the paper predicts, from the
*captive* Figure 4 measurements alone, that Capacity based will lose
providers to dissatisfaction and Mariposa-like to overutilisation, and
then verifies both in the autonomy experiments.

This module operationalises that reading of the metrics:

* providers are at **dissatisfaction risk** when the mean
  preference-based allocation satisfaction sits below 1 (the method
  punishes them) or a large fraction of them is individually punished;
* providers are at **starvation / overutilisation risk** when the
  utilisation balance (Min-Max ratio σ) is poor — some providers sit
  far below or above their fair share;
* consumers are at **dissatisfaction risk** when their mean allocation
  satisfaction is below 1.

The thresholds are deliberately coarse — this is a qualitative early
warning, exactly how the paper uses it — and the test suite checks the
predictions against realised autonomous-run departures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model import metrics
from repro.simulation.engine import SimulationResult

__all__ = ["DepartureRiskReport", "predict_departure_risks"]


@dataclass(frozen=True)
class DepartureRiskReport:
    """Qualitative departure risks read off one captive run.

    Attributes
    ----------
    provider_dissatisfaction / provider_load_pathology /
    consumer_dissatisfaction:
        Risk flags: does the captive evidence predict departures of
        that kind once participants become autonomous?
    evidence:
        The metric values the flags were derived from, for reporting.
    """

    method: str
    provider_dissatisfaction: bool
    provider_load_pathology: bool
    consumer_dissatisfaction: bool
    evidence: dict[str, float]

    def flags(self) -> dict[str, bool]:
        """The three risk flags keyed by name."""
        return {
            "provider_dissatisfaction": self.provider_dissatisfaction,
            "provider_load_pathology": self.provider_load_pathology,
            "consumer_dissatisfaction": self.consumer_dissatisfaction,
        }

    def any_risk(self) -> bool:
        return any(self.flags().values())


def predict_departure_risks(
    result: SimulationResult,
    punishment_threshold: float = 0.95,
    punished_fraction_threshold: float = 0.35,
    balance_threshold: float = 0.25,
) -> DepartureRiskReport:
    """Read the Section 4 metrics off a captive run's final state.

    Parameters
    ----------
    result:
        A finished (normally captive) simulation run.
    punishment_threshold:
        Mean allocation satisfaction below this flags dissatisfaction
        risk (1.0 is the model's neutral point; a small tolerance keeps
        sampling noise from flagging a neutral method).
    punished_fraction_threshold:
        Alternatively, flag when this fraction of active providers is
        individually punished (δs < δa).
    balance_threshold:
        Utilisation Min-Max ratio σ below this flags load pathology
        (starvation on the min side, overutilisation on the max side).
    """
    active_p = result.final["provider_active"]
    active_c = result.final["consumer_active"]
    if not active_p.any() or not active_c.any():
        raise ValueError(
            "risk prediction needs a populated (captive) run as input"
        )

    provider_sat = result.final["provider_satisfaction_preference"][active_p]
    provider_adq = result.final["provider_adequation_preference"][active_p]
    with np.errstate(divide="ignore", invalid="ignore"):
        alloc_sat = np.where(
            provider_adq > 0, provider_sat / provider_adq, 1.0
        )
    alloc_sat_mean = float(np.mean(alloc_sat))
    punished_fraction = float(np.mean(provider_sat < provider_adq))

    utilization = result.final["utilization"][active_p]
    balance = metrics.min_max_ratio(np.maximum(utilization, 0.0))

    consumer_sat = result.final["consumer_satisfaction"][active_c]
    consumer_adq = result.final["consumer_adequation"][active_c]
    with np.errstate(divide="ignore", invalid="ignore"):
        consumer_alloc = np.where(
            consumer_adq > 0, consumer_sat / consumer_adq, 1.0
        )
    consumer_alloc_mean = float(np.mean(consumer_alloc))
    # The fraction individually punished is the sharper signal: the
    # consumer departure rule is exactly δs < δa, so a neutral *mean*
    # can hide half the population sitting below it.
    consumer_punished = float(np.mean(consumer_sat < consumer_adq))

    return DepartureRiskReport(
        method=result.method_name,
        provider_dissatisfaction=(
            alloc_sat_mean < punishment_threshold
            or punished_fraction > punished_fraction_threshold
        ),
        provider_load_pathology=balance < balance_threshold,
        consumer_dissatisfaction=(
            consumer_alloc_mean < punishment_threshold
            or consumer_punished > punished_fraction_threshold
        ),
        evidence={
            "provider_allocation_satisfaction_mean": alloc_sat_mean,
            "provider_punished_fraction": punished_fraction,
            "utilization_min_max_ratio": balance,
            "consumer_allocation_satisfaction_mean": consumer_alloc_mean,
            "consumer_punished_fraction": consumer_punished,
        },
    )
