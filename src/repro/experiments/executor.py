"""Parallel experiment execution over a persistent result store.

The paper's evaluation repeats every (environment, method) simulation
``nbRepeat = 10`` times and sweeps many configurations; runs are
embarrassingly parallel and fully deterministic given
``(config, method, seed)``.  This module fans those jobs out over a
:class:`concurrent.futures.ProcessPoolExecutor` and consults a
:class:`~repro.experiments.store.ResultStore` first, so

* repeated requests for the same run — within one process or across
  interpreter sessions — cost one disk read instead of a simulation, and
* cold runs use every core instead of one.

``workers=1`` (the default) falls back to plain in-process execution so
CI, debugging, and doctest-style usage stay simple and fork-free.  The
parallel path produces bit-identical results to the serial path: both
call :func:`~repro.simulation.engine.run_simulation` on the same inputs
and the engine is deterministic.

The experiment harness (:mod:`repro.experiments.harness`) routes every
simulation through the module-level *default executor*, which the CLI
(``--workers`` / ``--cache-dir`` / ``--no-cache``) and the benchmark
suite configure via :func:`configure_default_executor`.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

from repro.audit.recorder import get_audit
from repro.experiments.store import ResultStore, cache_key
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationResult, run_simulation
from repro.telemetry.profiling import active_profile_dir, profile_job
from repro.telemetry.registry import get_telemetry
from repro.telemetry.tracing import trace_scope

__all__ = [
    "ExperimentExecutor",
    "SimulationJob",
    "configure_default_executor",
    "get_default_executor",
    "set_default_executor",
]

#: Environment knobs for the implicit default executor: number of pool
#: workers and (optionally) a persistent cache directory.
WORKERS_ENV = "REPRO_WORKERS"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def workers_from_environment() -> int:
    """Pool size according to ``REPRO_WORKERS`` (unset/empty → 1)."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        raise ValueError(
            f"{WORKERS_ENV} must be an integer, got {raw!r}"
        ) from None


@dataclass(frozen=True)
class SimulationJob:
    """One deterministic unit of work: run ``method`` on ``config``.

    ``method`` is a registry *name* (not an instance) so jobs are
    hashable, picklable across process boundaries, and content-hashable
    by the result store.

    ``trace`` is an optional fleet-wide correlation id (minted at
    enqueue/sweep time); it is excluded from equality and hashing so
    the store's cache key — and therefore bit-identity with untraced
    runs — is untouched by tracing.
    """

    config: SimulationConfig
    method: str
    seed: int
    trace: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.method, str):
            raise TypeError(
                "SimulationJob.method must be a registry name string, "
                f"got {type(self.method).__name__}; pass AllocationMethod "
                "instances to run_simulation directly"
            )


def _execute_job(job: SimulationJob) -> SimulationResult:
    """Top-level worker entry point (must be picklable).

    Both the serial path and every pool child run jobs through here, so
    this is where each simulation gets its telemetry "cell" span, job
    wall-time observation, and a per-job flush (pool children fork, so
    waiting for process exit to flush would lose everything).  The
    job's trace scope is installed around the span so every event the
    engine emits underneath — run and phase spans included — carries
    the job's fleet-wide trace id.  Per-job cProfile capture
    (``$REPRO_PROFILE_DIR``) rides the same entry point; with both
    switches off this function is one ``None`` check away from the
    bare simulation call.
    """
    telemetry = get_telemetry()
    profile_dir = active_profile_dir()
    audit = get_audit()
    if telemetry is None and profile_dir is None and audit is None:
        return run_simulation(job.config, job.method, seed=job.seed)
    with trace_scope(job.trace), profile_job(profile_dir):
        if telemetry is None:
            result = run_simulation(job.config, job.method, seed=job.seed)
        else:
            started = perf_counter()
            with telemetry.span(
                "cell",
                f"{job.method}/seed{job.seed}",
                attrs={"method": job.method, "seed": job.seed},
            ):
                result = run_simulation(job.config, job.method, seed=job.seed)
            telemetry.count("executor.jobs")
            telemetry.observe("executor.job_s", perf_counter() - started)
            telemetry.flush()
    if audit is not None:
        # The engine buffered this run's decisions; the shard is named
        # by the job's *store* cache key so it sits next to its result
        # entry.  Committed here — not in the engine — because only the
        # executor knows the registry method name the key is built from,
        # and because pool children must flush before the job returns.
        audit.commit(
            cache_key(job.config, job.method, job.seed),
            job.method,
            job.config,
        )
    return result


class ExperimentExecutor:
    """Runs simulation jobs, consulting a store and fanning out a pool.

    Parameters
    ----------
    workers:
        Process-pool size.  ``1`` (default) executes in-process, with no
        pool and no pickling — the exact pre-existing serial path.
    store:
        Optional :class:`ResultStore`; completed runs are read from and
        written to it.  ``None`` disables persistence.

    ``simulations_run`` counts the jobs this executor actually simulated
    (store hits excluded), which is what the warm-cache tests assert on.
    """

    def __init__(
        self, workers: int = 1, store: ResultStore | None = None
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.store = store
        self.simulations_run = 0

    @classmethod
    def from_environment(cls) -> "ExperimentExecutor":
        """Build an executor from ``REPRO_WORKERS``/``REPRO_CACHE_DIR``."""
        cache_dir = os.environ.get(CACHE_DIR_ENV) or None
        store = ResultStore(cache_dir) if cache_dir else None
        return cls(workers=workers_from_environment(), store=store)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ExperimentExecutor(workers={self.workers}, "
            f"store={self.store!r}, simulations_run={self.simulations_run})"
        )

    # -- execution ---------------------------------------------------

    def run(self, jobs: Iterable[SimulationJob]) -> list[SimulationResult]:
        """Execute every job, order-preserving.

        Store hits are returned directly; the remaining jobs run in the
        process pool (or inline when ``workers == 1`` or only one job is
        pending).  Each completed simulation is persisted as soon as it
        finishes — an interrupt mid-batch loses at most the in-flight
        runs, never the completed ones.
        """
        return [result for result, _ in self.run_detailed(jobs)]

    def run_detailed(
        self, jobs: Iterable[SimulationJob]
    ) -> list[tuple[SimulationResult, bool]]:
        """Like :meth:`run`, also reporting which jobs were store hits.

        Returns ``(result, store_hit)`` per job, order-preserving.  The
        flag is the executor's own ground truth (a ``True`` means the
        result came from the store without simulation), so callers —
        the sweep manifests — never need a second store read to
        classify jobs.
        """
        jobs = list(jobs)
        results: list[SimulationResult | None] = [None] * len(jobs)

        pending: list[int] = []
        for position, job in enumerate(jobs):
            cached = (
                self.store.get(job.config, job.method, job.seed)
                if self.store is not None
                else None
            )
            if cached is not None:
                results[position] = cached
            else:
                pending.append(position)

        if not pending:
            # Store hits are counted in *this* process while per-job
            # flushes happen in _execute_job (possibly a pool child) —
            # a fully-warm batch would otherwise never persist them.
            self._flush_telemetry()
            return [(result, True) for result in results]  # type: ignore[misc]

        if self.workers == 1 or len(pending) == 1:
            for position in pending:
                results[position] = self._complete(
                    jobs[position], _execute_job(jobs[position])
                )
        else:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(pending))
            ) as pool:
                futures = {
                    pool.submit(_execute_job, jobs[position]): position
                    for position in pending
                }
                for future in as_completed(futures):
                    position = futures[future]
                    results[position] = self._complete(
                        jobs[position], future.result()
                    )
        simulated = set(pending)
        # Pool children flushed their own counters job-by-job; this
        # persists the parent's share (store hits/misses, put bytes).
        self._flush_telemetry()
        return [
            (result, position not in simulated)
            for position, result in enumerate(results)
        ]  # type: ignore[misc]

    @staticmethod
    def _flush_telemetry() -> None:
        telemetry = get_telemetry()
        if telemetry is not None:
            telemetry.flush()

    def _complete(
        self, job: SimulationJob, result: SimulationResult
    ) -> SimulationResult:
        self.simulations_run += 1
        if self.store is not None:
            # Key by the job's registry name, not the method object's
            # class-level name — registry aliases share the latter.
            self.store.put(result, method=job.method)
        return result

    def run_one(
        self, config: SimulationConfig, method: str, seed: int
    ) -> SimulationResult:
        """Convenience wrapper for a single (config, method, seed) run."""
        return self.run([SimulationJob(config, method, seed)])[0]


# ---------------------------------------------------------------------
# default executor
# ---------------------------------------------------------------------

_default_executor: ExperimentExecutor | None = None
_invalidation_hooks: list[Callable[[], None]] = []


def register_invalidation_hook(hook: Callable[[], None]) -> None:
    """Run ``hook`` whenever the default executor is replaced.

    The harness registers its ``lru_cache`` clear here so in-process
    memos never outlive the executor (and store) that produced them.
    """
    _invalidation_hooks.append(hook)


def get_default_executor() -> ExperimentExecutor:
    """The process-wide executor the harness routes through.

    Created lazily from the environment (``REPRO_WORKERS``,
    ``REPRO_CACHE_DIR``) on first use; defaults to serial, store-less
    execution — exactly the historical behaviour.
    """
    global _default_executor
    if _default_executor is None:
        _default_executor = ExperimentExecutor.from_environment()
    return _default_executor


def set_default_executor(executor: ExperimentExecutor | None) -> None:
    """Replace the default executor (``None`` resets to lazy env-based).

    Also clears every registered in-process memo so subsequent requests
    go through the new executor.
    """
    global _default_executor
    _default_executor = executor
    for hook in _invalidation_hooks:
        hook()


def configure_default_executor(
    workers: int = 1, cache_dir: str | Path | None = None
) -> ExperimentExecutor:
    """Install and return a default executor with these settings.

    ``cache_dir=None`` disables the persistent store; any path enables
    it (the directory is created on first write).
    """
    store = ResultStore(cache_dir) if cache_dir is not None else None
    executor = ExperimentExecutor(workers=workers, store=store)
    set_default_executor(executor)
    return executor
