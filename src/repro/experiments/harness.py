"""Experiment orchestration: repetitions, aggregation, caching.

The paper repeats every simulation 10 times (``nbRepeat`` in Table 2)
and reports averages.  The harness runs one (config, method) pair over a
seed set, averages the sampled series across repetitions (the sampling
grid is deterministic, so series align exactly), and memoises whole
experiment families so that the eight Figure 4 benches share one set of
simulations instead of re-running it eight times.

Every simulation is routed through the default
:class:`~repro.experiments.executor.ExperimentExecutor`: with
``workers > 1`` the repetitions of a family fan out over a process pool,
and with a configured :class:`~repro.experiments.store.ResultStore` the
results persist across interpreter sessions — a warm re-run of an
experiment family performs zero new simulations.  The serial, store-less
default reproduces the historical behaviour exactly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.experiments.executor import (
    ExperimentExecutor,
    SimulationJob,
    get_default_executor,
    register_invalidation_hook,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationResult

__all__ = [
    "DEFAULT_SEEDS",
    "PAPER_SEEDS",
    "MethodAverages",
    "average_series",
    "run_repeated",
    "run_method_family",
]

#: Default repetition seeds.  The paper uses nbRepeat = 10; three
#: repetitions keep the default experiment wall-time reasonable while
#: already averaging out most run-to-run noise.  Pass more seeds for
#: paper-strength averaging.
DEFAULT_SEEDS = (11, 23, 47)

#: Paper-strength repetition seeds: ``nbRepeat = 10`` (Table 2).  A
#: fixed, ordered superset of :data:`DEFAULT_SEEDS`, so paper-scale
#: sweeps reuse every run the default seed set already cached.
PAPER_SEEDS = (11, 23, 47, 61, 83, 101, 131, 151, 181, 199)


def run_repeated(
    config: SimulationConfig,
    method: str,
    seeds: tuple[int, ...],
    executor: ExperimentExecutor | None = None,
) -> list[SimulationResult]:
    """Run the same (config, method) once per seed.

    Uses the default executor unless one is passed explicitly, so the
    repetitions share the configured worker pool and result store.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    runner = executor if executor is not None else get_default_executor()
    return runner.run(
        [SimulationJob(config, method, seed) for seed in seeds]
    )


def average_series(results: list[SimulationResult], name: str) -> np.ndarray:
    """Across-repetition average of one named series.

    NaN samples (e.g. a response-time interval with no queries) are
    averaged over the repetitions that do have a value; a sample that is
    NaN in *every* repetition stays NaN.
    """
    stacked = np.vstack([result.series(name) for result in results])
    with np.errstate(invalid="ignore"), warnings.catch_warnings():
        # An all-NaN sample (no repetition has a value there) is an
        # expected outcome, not a numerical accident.
        warnings.filterwarnings(
            "ignore", "Mean of empty slice", RuntimeWarning
        )
        return np.nanmean(stacked, axis=0)


@dataclass(frozen=True)
class MethodAverages:
    """Averaged view of one method's repetitions."""

    method: str
    results: tuple[SimulationResult, ...]

    def times(self) -> np.ndarray:
        return self.results[0].times()

    def series(self, name: str) -> np.ndarray:
        return average_series(list(self.results), name)

    def response_time(self) -> float:
        """Across-repetition mean of the post-warmup response time."""
        values = [r.response_time_post_warmup for r in self.results]
        return float(np.nanmean(values))

    def provider_departure_fraction(self) -> float:
        return float(
            np.mean([r.provider_departure_fraction() for r in self.results])
        )

    def consumer_departure_fraction(self) -> float:
        return float(
            np.mean([r.consumer_departure_fraction() for r in self.results])
        )


@lru_cache(maxsize=64)
def run_method_family(
    config: SimulationConfig, methods: tuple[str, ...], seeds: tuple[int, ...]
) -> dict[str, MethodAverages]:
    """Run every method over every seed, memoised.

    ``SimulationConfig`` is a frozen dataclass of scalars and frozen
    sub-configs, hence hashable — identical experiment requests from
    different benches hit the in-process memo instead of re-simulating.
    The full ``methods × seeds`` cross product is submitted to the
    default executor as one batch so parallelism spans the whole family,
    and store hits (from earlier sessions) skip simulation entirely.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    executor = get_default_executor()
    jobs = [
        SimulationJob(config, method, seed)
        for method in methods
        for seed in seeds
    ]
    results = executor.run(jobs)
    family: dict[str, MethodAverages] = {}
    for index, method in enumerate(methods):
        chunk = results[index * len(seeds) : (index + 1) * len(seeds)]
        family[method] = MethodAverages(method=method, results=tuple(chunk))
    return family


# A replaced default executor (new store, new worker count) must not
# serve memoised families computed through the old one.
register_invalidation_hook(run_method_family.cache_clear)
