"""Experiment orchestration: repetitions, aggregation, caching.

The paper repeats every simulation 10 times (``nbRepeat`` in Table 2)
and reports averages.  The harness runs one (config, method) pair over a
seed set, averages the sampled series across repetitions (the sampling
grid is deterministic, so series align exactly), and memoises whole
experiment families so that the eight Figure 4 benches share one set of
simulations instead of re-running it eight times.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationResult, run_simulation

__all__ = [
    "DEFAULT_SEEDS",
    "MethodAverages",
    "average_series",
    "run_repeated",
    "run_method_family",
]

#: Default repetition seeds.  The paper uses nbRepeat = 10; three
#: repetitions keep the default experiment wall-time reasonable while
#: already averaging out most run-to-run noise.  Pass more seeds for
#: paper-strength averaging.
DEFAULT_SEEDS = (11, 23, 47)


def run_repeated(
    config: SimulationConfig, method: str, seeds: tuple[int, ...]
) -> list[SimulationResult]:
    """Run the same (config, method) once per seed."""
    if not seeds:
        raise ValueError("at least one seed is required")
    return [run_simulation(config, method, seed=seed) for seed in seeds]


def average_series(results: list[SimulationResult], name: str) -> np.ndarray:
    """Across-repetition average of one named series.

    NaN samples (e.g. a response-time interval with no queries) are
    averaged over the repetitions that do have a value.
    """
    stacked = np.vstack([result.series(name) for result in results])
    with np.errstate(invalid="ignore"):
        return np.nanmean(stacked, axis=0)


@dataclass(frozen=True)
class MethodAverages:
    """Averaged view of one method's repetitions."""

    method: str
    results: tuple[SimulationResult, ...]

    def times(self) -> np.ndarray:
        return self.results[0].times()

    def series(self, name: str) -> np.ndarray:
        return average_series(list(self.results), name)

    def response_time(self) -> float:
        """Across-repetition mean of the post-warmup response time."""
        values = [r.response_time_post_warmup for r in self.results]
        return float(np.nanmean(values))

    def provider_departure_fraction(self) -> float:
        return float(
            np.mean([r.provider_departure_fraction() for r in self.results])
        )

    def consumer_departure_fraction(self) -> float:
        return float(
            np.mean([r.consumer_departure_fraction() for r in self.results])
        )


@lru_cache(maxsize=64)
def run_method_family(
    config: SimulationConfig, methods: tuple[str, ...], seeds: tuple[int, ...]
) -> dict[str, MethodAverages]:
    """Run every method over every seed, memoised.

    ``SimulationConfig`` is a frozen dataclass of scalars and frozen
    sub-configs, hence hashable — identical experiment requests from
    different benches hit the cache instead of re-simulating.
    """
    return {
        method: MethodAverages(
            method=method,
            results=tuple(run_repeated(config, method, seeds)),
        )
        for method in methods
    }
