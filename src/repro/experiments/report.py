"""Plain-text rendering of experiment outputs.

Every bench prints the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent (fixed-width ASCII
tables, one row per sample or workload level, one column per method).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

__all__ = [
    "format_series_table",
    "format_curve_table",
    "format_reason_table",
    "format_surface",
]


def _format_value(value: float, precision: int) -> str:
    if value != value:  # NaN
        return "-"
    return f"{value:.{precision}f}"


def format_series_table(
    times: np.ndarray,
    series_by_method: Mapping[str, np.ndarray],
    value_label: str,
    time_label: str = "time(s)",
    precision: int = 3,
    max_rows: int = 25,
) -> str:
    """One figure's time series: a row per sample, a column per method.

    Long series are thinned evenly to ``max_rows`` rows so benches stay
    readable; the final sample is always included.
    """
    methods = list(series_by_method)
    n = len(times)
    if any(len(series_by_method[m]) != n for m in methods):
        raise ValueError("all series must align with the time axis")
    if n > max_rows:
        picks = np.unique(
            np.linspace(0, n - 1, max_rows).round().astype(int)
        )
    else:
        picks = np.arange(n)

    header = [f"{time_label:>10}"] + [f"{m:>12}" for m in methods]
    lines = [f"# {value_label}", " ".join(header)]
    for i in picks:
        row = [f"{times[i]:>10.1f}"] + [
            f"{_format_value(float(series_by_method[m][i]), precision):>12}"
            for m in methods
        ]
        lines.append(" ".join(row))
    return "\n".join(lines)


def format_curve_table(
    x_values: Sequence[float],
    values_by_method: Mapping[str, np.ndarray],
    value_label: str,
    x_label: str = "workload(%)",
    precision: int = 2,
    x_scale: float = 100.0,
) -> str:
    """A per-workload curve: one row per x value, one column per method."""
    methods = list(values_by_method)
    header = [f"{x_label:>12}"] + [f"{m:>12}" for m in methods]
    lines = [f"# {value_label}", " ".join(header)]
    for i, x in enumerate(x_values):
        row = [f"{x * x_scale:>12.0f}"] + [
            f"{_format_value(float(values_by_method[m][i]), precision):>12}"
            for m in methods
        ]
        lines.append(" ".join(row))
    return "\n".join(lines)


def format_reason_table(tables: Mapping[str, object]) -> str:
    """Render the Table 3 structure for every method.

    ``tables`` maps method name to
    :class:`repro.experiments.autonomy.DepartureReasonTable`.
    """
    lines = []
    for method, table in tables.items():
        lines.append(f"== {method} ==")
        lines.append(
            f"{'reason':<18} {'dimension':<12} "
            f"{'low':>7} {'medium':>7} {'high':>7} {'total':>7}"
        )
        for reason, dims in table.cells.items():
            total = table.totals[reason]
            for dimension, bands in dims.items():
                lines.append(
                    f"{reason:<18} {dimension:<12} "
                    f"{bands['low']:>6.1f}% {bands['medium']:>6.1f}% "
                    f"{bands['high']:>6.1f}% {total:>6.1f}%"
                )
        lines.append("")
    return "\n".join(lines)


def format_surface(
    x_axis: np.ndarray,
    y_axis: np.ndarray,
    surface: np.ndarray,
    value_label: str,
    x_label: str = "x",
    y_label: str = "y",
    max_cols: int = 9,
    max_rows: int = 11,
    precision: int = 2,
) -> str:
    """A 2-D surface (Figures 2-3) as a thinned grid of values."""
    if surface.shape != (len(x_axis), len(y_axis)):
        raise ValueError(
            f"surface shape {surface.shape} does not match the axes"
        )
    rows = np.unique(
        np.linspace(0, len(x_axis) - 1, max_rows).round().astype(int)
    )
    cols = np.unique(
        np.linspace(0, len(y_axis) - 1, max_cols).round().astype(int)
    )
    corner = x_label + "\\" + y_label
    header = [f"{corner:>12}"] + [f"{y_axis[j]:>8.2f}" for j in cols]
    lines = [f"# {value_label}", " ".join(header)]
    for i in rows:
        row = [f"{x_axis[i]:>12.2f}"] + [
            f"{surface[i, j]:>8.{precision}f}" for j in cols
        ]
        lines.append(" ".join(row))
    return "\n".join(lines)
