"""Throughput-regression harness for the simulation engine.

The engine's queries-per-second is the multiplier on every scenario ×
method × seed job the sweep subsystem schedules, so it is guarded like
a correctness property: a *standard matrix* of workloads (captive and
autonomous, small and paper-scale populations) is timed end-to-end, the
results are written to ``BENCH_engine.json``, and CI compares fresh
numbers against the committed baseline, failing on a >30 % drop.

Three entry points, all reachable through ``repro perf``:

* :func:`run_perf` — run the matrix (or its ``--quick`` subset) and
  return a serialisable report.
* :func:`profile_run` — cProfile one representative cell and return the
  top-N functions by cumulative time.
* :func:`compare_reports` — regression check of a fresh report against
  a baseline file's cells.

Timings are wall-clock and machine-dependent; the committed baseline is
refreshed whenever the engine's performance profile changes materially
(the regression tolerance absorbs machine-to-machine variation).
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import sys
import time
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.simulation.config import (
    DepartureRules,
    SimulationConfig,
    WorkloadSpec,
    paper_config,
    scaled_config,
)
from repro.simulation.engine import ENGINE_VERSION, run_simulation
from repro.telemetry.registry import telemetry_session

__all__ = [
    "PERF_MATRIX",
    "PerfCell",
    "append_history",
    "compare_reports",
    "format_history",
    "format_report",
    "history_row",
    "load_history",
    "profile_run",
    "run_perf",
]

#: Methods timed in every cell (the paper's three).
PERF_METHODS = ("sqlb", "capacity", "mariposa")

#: Seed used for all perf runs — throughput, not statistics, is measured.
PERF_SEED = 1


@dataclass(frozen=True)
class PerfCell:
    """One workload of the standard matrix."""

    name: str
    build: Callable[[], SimulationConfig]
    #: Included in the ``--quick`` subset (CI smoke).
    quick: bool = False


def _autonomous(config: SimulationConfig) -> SimulationConfig:
    return config.with_departures(DepartureRules.autonomous(True))


PERF_MATRIX: tuple[PerfCell, ...] = (
    PerfCell(
        "captive_small",
        lambda: scaled_config(
            duration=120.0, workload=WorkloadSpec.fixed(0.8)
        ),
        quick=True,
    ),
    PerfCell(
        "autonomy_small",
        lambda: _autonomous(
            scaled_config(duration=120.0, workload=WorkloadSpec.fixed(1.0))
        ),
        quick=True,
    ),
    PerfCell(
        "captive_large",
        lambda: paper_config(
            duration=60.0,
            sample_interval=30.0,
            warmup_time=15.0,
            workload=WorkloadSpec.fixed(0.8),
        ),
    ),
    PerfCell(
        "autonomy_large",
        lambda: _autonomous(
            paper_config(
                duration=60.0,
                sample_interval=30.0,
                warmup_time=15.0,
                workload=WorkloadSpec.fixed(1.0),
            )
        ),
    ),
)


def _phase_breakdown(config, method: str, seed: int) -> dict[str, float]:
    """Per-phase engine seconds from one instrumented pass.

    Runs under a scoped in-memory telemetry session so the pass leaves
    no files behind and the process-wide registry state is untouched.
    """
    with telemetry_session() as telemetry:
        run_simulation(config, method, seed=seed)
        return {
            name: round(seconds, 4)
            for name, seconds in sorted(telemetry.phase_seconds().items())
        }


def run_perf(
    quick: bool = False,
    methods: tuple[str, ...] = PERF_METHODS,
    seed: int = PERF_SEED,
    repeats: int = 2,
    phases: bool = True,
) -> dict:
    """Time the standard matrix serially and return a report dict.

    ``quick`` restricts to the small-population cells — a few seconds of
    wall clock, suitable for CI smoke — and marks the report so a
    comparison never mixes quick and full cells.  Each cell is timed
    ``repeats`` times and the *best* run is reported: throughput is a
    property of the code, and best-of-N filters scheduler and cache
    noise that a single run (and therefore the regression gate) would
    otherwise inherit.

    ``phases`` (default on) adds one *extra* instrumented pass per
    (cell, method) and records its per-phase engine-time breakdown under
    the cell's ``phases`` key.  The timed repeats above stay
    uninstrumented either way, so enabling the breakdown cannot move the
    qps numbers the regression gate compares.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be at least 1, got {repeats}")
    cells = {}
    total_queries = 0
    total_seconds = 0.0
    for cell in PERF_MATRIX:
        if quick and not cell.quick:
            continue
        config = cell.build()
        for method in methods:
            best_elapsed = None
            queries = 0
            for _ in range(repeats):
                started = time.perf_counter()
                result = run_simulation(config, method, seed=seed)
                elapsed = time.perf_counter() - started
                queries = result.queries_served
                if best_elapsed is None or elapsed < best_elapsed:
                    best_elapsed = elapsed
            payload = {
                "queries": queries,
                "seconds": round(best_elapsed, 4),
                "qps": round(queries / best_elapsed, 1),
            }
            if phases:
                payload["phases"] = _phase_breakdown(config, method, seed)
            cells[f"{cell.name}/{method}"] = payload
            total_queries += queries
            total_seconds += best_elapsed
    return {
        "engine_version": ENGINE_VERSION,
        "mode": "quick" if quick else "full",
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "seed": seed,
        "repeats": repeats,
        "cells": cells,
        "aggregate_qps": round(total_queries / total_seconds, 1),
    }


def profile_run(
    cell_name: str = "captive_small",
    method: str = "sqlb",
    top: int = 15,
    seed: int = PERF_SEED,
) -> str:
    """cProfile one cell/method and return the top-N cumulative lines."""
    by_name = {cell.name: cell for cell in PERF_MATRIX}
    if cell_name not in by_name:
        raise ValueError(
            f"unknown perf cell {cell_name!r}; "
            f"available: {sorted(by_name)}"
        )
    config = by_name[cell_name].build()
    profiler = cProfile.Profile()
    profiler.enable()
    run_simulation(config, method, seed=seed)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    return stream.getvalue()


def compare_reports(
    current: dict, baseline: dict, tolerance: float = 0.30
) -> list[str]:
    """Regressions of ``current`` against ``baseline`` (empty = pass).

    Only cells present in both reports are compared; a cell regresses
    when its fresh qps drops more than ``tolerance`` below the baseline.
    The tolerance absorbs machine-to-machine and run-to-run variation —
    it guards against structural slowdowns, not noise.
    """
    if not 0.0 < tolerance < 1.0:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    problems = []
    if current.get("mode") == "full" and baseline.get("mode") == "quick":
        problems.append(
            "baseline is quick-mode: the large cells of this full run "
            "would go ungated — refresh it with `repro perf --out`"
        )
    baseline_cells = baseline.get("cells", {})
    current_cells = current.get("cells", {})
    shared = sorted(set(baseline_cells) & set(current_cells))
    if not shared:
        return [
            "no overlapping cells between current report and baseline "
            f"(baseline has {sorted(baseline_cells)})"
        ]
    for name in shared:
        base_qps = float(baseline_cells[name]["qps"])
        cur_qps = float(current_cells[name]["qps"])
        floor = base_qps * (1.0 - tolerance)
        if cur_qps < floor:
            problems.append(
                f"{name}: {cur_qps:.0f} qps is "
                f"{100.0 * (1.0 - cur_qps / base_qps):.0f}% below the "
                f"baseline {base_qps:.0f} qps (tolerance {tolerance:.0%})"
            )
    return problems


def format_report(report: dict) -> str:
    """Human-readable table of one :func:`run_perf` report."""
    lines = [
        f"engine {report['engine_version']}   mode {report['mode']}   "
        f"python {report['python']}   numpy {report['numpy']}",
        f"{'cell':<28} {'queries':>8} {'seconds':>8} {'qps':>8}",
    ]
    for name, cell in report["cells"].items():
        lines.append(
            f"{name:<28} {cell['queries']:>8} "
            f"{cell['seconds']:>8.2f} {cell['qps']:>8.0f}"
        )
    lines.append(f"aggregate: {report['aggregate_qps']:.0f} queries/sec")
    return "\n".join(lines)


def history_row(report: dict, now: float | None = None) -> dict:
    """One JSONL history row distilled from a :func:`run_perf` report.

    Keeps the qps matrix and the per-phase breakdowns — the two things
    a trend over PRs needs — and drops the per-machine noise fields.
    ``now`` overrides the timestamp (tests and baseline seeding; the
    committed seed row carries ``t: null``).
    """
    return {
        "t": time.time() if now is None else now,
        "engine_version": report["engine_version"],
        "mode": report["mode"],
        "aggregate_qps": report["aggregate_qps"],
        "cells": {
            name: {
                key: cell[key]
                for key in ("qps", "phases")
                if key in cell
            }
            for name, cell in report["cells"].items()
        },
    }


def append_history(
    report: dict, path: str, now: float | None = None
) -> dict:
    """Append one timestamped row to the JSONL history at ``path``.

    Append-only on purpose: rows from different machines and PRs
    accumulate into a trajectory (``repro perf history`` renders it),
    and a torn tail from a crashed writer is skipped on read, never
    poisoning the earlier rows.  Returns the row written.
    """
    row = history_row(report, now)
    line = json.dumps(row, sort_keys=True, separators=(",", ":"))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
    return row


def load_history(path: str) -> list[dict]:
    """Every parseable row of a perf history file, in file order."""
    rows: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from an interrupted append
            if isinstance(row, dict) and "cells" in row:
                rows.append(row)
    return rows


def format_history(rows: list[dict]) -> str:
    """Trend table over history rows (oldest first).

    The aggregate column carries a delta against the previous row of
    the *same mode* — comparing a quick row against a full row would
    manufacture a fake cliff.
    """
    if not rows:
        return "no perf history rows"
    lines = [
        f"{'when':<17} {'mode':<6} {'engine':<7} {'aggregate':>10} "
        f"{'delta':>7}  cells"
    ]
    last_by_mode: dict[str, float] = {}
    for row in rows:
        stamp = row.get("t")
        when = (
            time.strftime("%Y-%m-%d %H:%M", time.localtime(stamp))
            if isinstance(stamp, (int, float))
            else "baseline"
        )
        mode = row.get("mode", "?")
        aggregate = float(row.get("aggregate_qps", 0.0))
        previous = last_by_mode.get(mode)
        delta = (
            f"{(aggregate / previous - 1.0) * 100:+.0f}%"
            if previous
            else "-"
        )
        last_by_mode[mode] = aggregate
        lines.append(
            f"{when:<17} {mode:<6} {str(row.get('engine_version')):<7} "
            f"{aggregate:>10,.0f} {delta:>7}  {len(row.get('cells', {}))}"
        )
    return "\n".join(lines)


def load_report(path: str) -> dict:
    """Read a report/baseline JSON file."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def write_report(report: dict, path: str) -> None:
    """Write a report as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
