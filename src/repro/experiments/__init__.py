"""Experiment harness regenerating every table and figure of the paper.

See DESIGN.md §3 for the experiment index.  The benches in
``benchmarks/`` are thin wrappers over these functions.
"""

from repro.experiments.autonomy import (
    DepartureReasonTable,
    consumer_departure_curve,
    departure_reason_table,
    departure_response_times,
    provider_departure_curve,
)
from repro.experiments.captive import (
    DEFAULT_WORKLOADS,
    FIGURE4_SERIES,
    captive_ramp,
    captive_ramp_config,
    response_time_curve,
)
from repro.experiments.executor import (
    ExperimentExecutor,
    SimulationJob,
    configure_default_executor,
    get_default_executor,
    set_default_executor,
)
from repro.experiments.harness import (
    DEFAULT_SEEDS,
    MethodAverages,
    average_series,
    run_method_family,
    run_repeated,
)
from repro.experiments.perf import (
    PERF_MATRIX,
    PerfCell,
    compare_reports,
    format_report,
    profile_run,
    run_perf,
)
from repro.experiments.store import ResultStore, cache_key
from repro.experiments.prediction import (
    DepartureRiskReport,
    predict_departure_risks,
)
from repro.experiments.report import (
    format_curve_table,
    format_reason_table,
    format_series_table,
    format_surface,
)

__all__ = [
    "DEFAULT_SEEDS",
    "DEFAULT_WORKLOADS",
    "DepartureReasonTable",
    "DepartureRiskReport",
    "ExperimentExecutor",
    "FIGURE4_SERIES",
    "MethodAverages",
    "PERF_MATRIX",
    "PerfCell",
    "ResultStore",
    "SimulationJob",
    "average_series",
    "cache_key",
    "captive_ramp",
    "captive_ramp_config",
    "compare_reports",
    "configure_default_executor",
    "consumer_departure_curve",
    "departure_reason_table",
    "departure_response_times",
    "format_curve_table",
    "format_reason_table",
    "format_report",
    "format_series_table",
    "format_surface",
    "get_default_executor",
    "predict_departure_risks",
    "profile_run",
    "provider_departure_curve",
    "response_time_curve",
    "run_method_family",
    "run_perf",
    "run_repeated",
    "set_default_executor",
]
