"""Named failure-injection sites for the scheduler/store stack.

The queue and store document crash-ordering invariants ("the rename is
the only commit point", "done wins over leases", "nothing is ever
partially visible") that were, until this module, *assumed* — no test
ever made a write actually fail between two commit points.  A
**failpoint** is a named site threaded through those paths where a
controlled fault can be injected: an ``OSError``, a disk-full error, a
torn (half-written) payload, or an outright ``os._exit`` hard crash.

Activation is environment-driven so injected chaos crosses process
boundaries (worker subprocesses, pool children) for free::

    REPRO_FAILPOINTS="site:action:policy[,site:action:policy...]"

``site`` is an ``fnmatch`` glob over the dotted site names below;
``action`` is one of

* ``raise``  — raise :class:`FailpointError` (an ``OSError``, EIO)
* ``enospc`` — raise :class:`FailpointError` with ``errno.ENOSPC``
* ``torn``   — at payload-write sites only: write a truncated prefix of
  the payload, then raise — the footprint of a writer that died
  mid-write (the final path is never touched; tempfile + rename
  guarantees that, and this action is how the guarantee is exercised)
* ``crash``  — ``os._exit(CRASH_EXIT_CODE)``: no cleanup, no ``finally``
  blocks, no atexit — the closest a test can get to ``kill -9`` from
  the inside

and ``policy`` decides *when* a hit fires:

* ``N`` (an integer) — fire on the Nth hit of this rule, once
* ``every-K`` — fire on every Kth hit
* ``pX`` (e.g. ``p0.25``) — fire each hit with probability X, drawn
  from a dedicated ``random.Random`` seeded by ``REPRO_FAILPOINTS_SEED``
  (default 0) — **never** from a simulation RNG stream

Discipline (the same contract as :mod:`repro.telemetry`):

* **Import leaf.**  This module imports nothing from the rest of the
  package and no third-party code; anything may import it.
* **Provable no-op when disabled.**  :func:`failpoint` is one function
  call and a ``None`` check when ``REPRO_FAILPOINTS`` is unset; the
  environment is read once per process (re-resolved on fork), never
  per call, and no clock or RNG is ever touched.
* **Simulation RNG streams are never consumed.**  The probability
  policy draws from its own stdlib ``random.Random``; enabling
  failpoints cannot change what any simulation computes — only whether
  its I/O survives.

Instrumented sites (the commit points of the documented protocols)::

    store.write.data                payload write into the temp file
    store.write.before_replace      after the temp write, before os.replace
    store.write.after_replace       after os.replace landed
    queue.enqueue.record            before the job-record write
    queue.enqueue.ticket            between job record and ticket writes
    queue.claim.before_rename       heartbeat written, rename not attempted
    queue.claim.after_rename        lease exists, job record not yet read
    queue.heartbeat                 before the heartbeat write
    queue.ack.before_done           result stored, done record not written
    queue.ack.after_done            done written, lease not yet unlinked
    queue.requeue                   before a failed lease's attempts bump
    queue.park                      before an error record is created
    worker.loop                     top of each worker loop iteration

``store.write.*`` fires for every atomic write in the repo — queue
records route through the same writer — so one glob rule exercises
every durable write at once.
"""

from __future__ import annotations

import dataclasses
import errno
import fnmatch
import os
import random
from contextlib import contextmanager

__all__ = [
    "CRASH_EXIT_CODE",
    "FAILPOINTS_ENV",
    "FAILPOINTS_SEED_ENV",
    "FailpointError",
    "Failpoints",
    "configure_failpoints",
    "failpoint",
    "failpoints_session",
    "get_failpoints",
    "parse_failpoints",
    "torn_payload",
    "trip_counts",
]

#: Environment variable holding the injection spec (unset = disabled).
FAILPOINTS_ENV = "REPRO_FAILPOINTS"

#: Seed of the dedicated reliability RNG the ``pX`` policy draws from.
FAILPOINTS_SEED_ENV = "REPRO_FAILPOINTS_SEED"

#: Exit status of a ``crash`` action — distinguishable from every other
#: failure mode, so supervisors and tests can assert "the failpoint
#: killed it" rather than "something went wrong".
CRASH_EXIT_CODE = 73

_ACTIONS = ("raise", "enospc", "torn", "crash")


class FailpointError(OSError):
    """An injected I/O failure.

    Subclasses ``OSError`` deliberately: every transient-fault handler
    in the repo catches ``OSError``, and an injected fault must flow
    through exactly the code paths a real one would.
    """


@dataclasses.dataclass
class _Rule:
    """One parsed ``site:action:policy`` clause, with its hit state."""

    pattern: str
    action: str
    policy: str
    nth: int | None = None
    every: int | None = None
    probability: float | None = None
    hits: int = 0
    fired: int = 0

    def should_fire(self, rng: random.Random) -> bool:
        """Bump the hit counter and decide whether this hit fires."""
        self.hits += 1
        if self.nth is not None:
            fire = self.hits == self.nth
        elif self.every is not None:
            fire = self.hits % self.every == 0
        else:
            fire = rng.random() < (self.probability or 0.0)
        if fire:
            self.fired += 1
        return fire


def _parse_rule(clause: str) -> _Rule:
    parts = clause.split(":")
    if len(parts) != 3:
        raise ValueError(
            f"bad failpoint clause {clause!r}: expected site:action:policy"
        )
    pattern, action, policy = (part.strip() for part in parts)
    if not pattern:
        raise ValueError(f"bad failpoint clause {clause!r}: empty site")
    if action not in _ACTIONS:
        raise ValueError(
            f"unknown failpoint action {action!r} in {clause!r}; "
            f"available: {', '.join(_ACTIONS)}"
        )
    rule = _Rule(pattern=pattern, action=action, policy=policy)
    try:
        if policy.startswith("every-"):
            rule.every = int(policy[len("every-"):])
            if rule.every < 1:
                raise ValueError
        elif policy.startswith("p"):
            rule.probability = float(policy[1:])
            if not 0.0 <= rule.probability <= 1.0:
                raise ValueError
        else:
            rule.nth = int(policy)
            if rule.nth < 1:
                raise ValueError
    except ValueError:
        raise ValueError(
            f"bad failpoint policy {policy!r} in {clause!r}; expected an "
            "Nth-hit integer, 'every-K', or 'pX' with 0 <= X <= 1"
        ) from None
    return rule


class Failpoints:
    """The parsed, stateful registry of one process's injection rules."""

    def __init__(self, rules: list[_Rule], seed: int = 0) -> None:
        self.pid = os.getpid()
        self._rules = rules
        self._rng = random.Random(seed)
        # site -> rules whose glob matches it, resolved once per site so
        # steady-state hits are a dict lookup, not an fnmatch scan.
        self._site_rules: dict[str, list[_Rule]] = {}

    def _rules_for(self, site: str) -> list[_Rule]:
        matched = self._site_rules.get(site)
        if matched is None:
            matched = [
                rule
                for rule in self._rules
                if fnmatch.fnmatchcase(site, rule.pattern)
            ]
            self._site_rules[site] = matched
        return matched

    def _fire(self, site: str, rule: _Rule) -> None:
        if rule.action == "crash":
            # A hard crash: skip every finally block, atexit handler,
            # and buffered flush this process would otherwise run.
            os._exit(CRASH_EXIT_CODE)
        if rule.action == "enospc":
            raise FailpointError(
                errno.ENOSPC,
                f"injected ENOSPC at failpoint {site}",
            )
        raise FailpointError(
            errno.EIO, f"injected I/O error at failpoint {site}"
        )

    def hit(self, site: str) -> None:
        """Evaluate non-torn rules at ``site``; raise/crash on a fire."""
        for rule in self._rules_for(site):
            if rule.action == "torn":
                continue
            if rule.should_fire(self._rng):
                self._fire(site, rule)

    def torn(self, site: str, data: bytes) -> bytes | None:
        """The truncated payload if a torn rule fires here, else None."""
        for rule in self._rules_for(site):
            if rule.action != "torn":
                continue
            if rule.should_fire(self._rng):
                return data[: len(data) // 2]
        return None

    def trip_counts(self) -> dict[str, int]:
        """pattern → number of fires so far (all actions)."""
        counts: dict[str, int] = {}
        for rule in self._rules:
            counts[rule.pattern] = counts.get(rule.pattern, 0) + rule.fired
        return counts


def parse_failpoints(spec: str, seed: int = 0) -> Failpoints:
    """Parse a ``REPRO_FAILPOINTS`` spec string into a registry.

    Raises ``ValueError`` on malformed clauses — a typo'd chaos spec
    must fail loudly, not silently inject nothing.
    """
    rules = [
        _parse_rule(clause)
        for clause in spec.split(",")
        if clause.strip()
    ]
    if not rules:
        raise ValueError(f"failpoint spec {spec!r} contains no clauses")
    return Failpoints(rules, seed=seed)


# ---------------------------------------------------------------------
# process-wide active registry (same lazy/fork discipline as telemetry)
# ---------------------------------------------------------------------

_active: Failpoints | None = None
_resolved = False


def _from_environment() -> Failpoints | None:
    spec = os.environ.get(FAILPOINTS_ENV, "").strip()
    if not spec:
        return None
    seed_raw = os.environ.get(FAILPOINTS_SEED_ENV, "").strip()
    return parse_failpoints(spec, seed=int(seed_raw) if seed_raw else 0)


def get_failpoints() -> Failpoints | None:
    """The process's active registry, or ``None`` when disabled.

    Resolved lazily from the environment on first call; a forked pool
    child re-resolves, so each process owns fresh hit counters and the
    same seeded decision sequence.
    """
    global _active, _resolved
    if not _resolved or (
        _active is not None and _active.pid != os.getpid()
    ):
        _active = _from_environment()
        _resolved = True
    return _active


def configure_failpoints(
    spec: str | None, seed: int = 0
) -> Failpoints | None:
    """Install (``spec``) or clear (``None``) the registry explicitly."""
    global _active, _resolved
    _active = parse_failpoints(spec, seed=seed) if spec else None
    _resolved = True
    return _active


@contextmanager
def failpoints_session(spec: str | None, seed: int = 0):
    """Scoped registry for tests: install, yield, restore the previous
    state (including the unresolved lazy state)."""
    global _active, _resolved
    previous = (_active, _resolved)
    registry = parse_failpoints(spec, seed=seed) if spec else None
    _active, _resolved = registry, True
    try:
        yield registry
    finally:
        _active, _resolved = previous


def failpoint(site: str) -> None:
    """Evaluate the named injection site.

    The no-op path — failpoints disabled, the overwhelmingly common
    case — is one function call and a ``None`` check.
    """
    registry = get_failpoints()
    if registry is None:
        return
    registry.hit(site)


def torn_payload(site: str, data: bytes) -> bytes | None:
    """The truncated payload a torn rule injects at ``site``, or None.

    Payload-write sites call this once per write; a non-None return
    means "write this prefix instead, then fail" — the caller writes
    the prefix and raises, leaving the half-written temp file a crashed
    writer would.
    """
    registry = get_failpoints()
    if registry is None:
        return None
    return registry.torn(site, data)


def trip_counts() -> dict[str, int]:
    """Fire counts of the active registry (empty when disabled)."""
    registry = get_failpoints()
    return {} if registry is None else registry.trip_counts()
