"""Opt-in power-loss durability for the repo's atomic writers.

Every durable record in the repo is written tempfile-then-rename, which
is *crash*-atomic: a reader never observes a half-written file, no
matter when the writer dies.  It is **not** *power-loss* durable: on a
kernel panic or power cut, the rename can survive while the file's data
blocks never reached the platter — leaving a fully-committed name with
torn contents, the one state the protocol promises cannot exist.

Setting ``REPRO_DURABLE_WRITES=1`` closes that window the standard way:
``fsync`` the temp file before the rename (data durable before the
name exists) and ``fsync`` the parent directory after it (the name
itself durable).  The tradeoff is honest: one-to-two extra disk
round-trips per record write — negligible next to a simulation, very
visible in a metadata-heavy microbenchmark, which is why it is opt-in
rather than default.  Process-crash safety (the thing the chaos
harness exercises) needs no fsync at all; turn this on when the
failure domain includes the whole machine.

Like the failpoint registry, the environment is read once per process
and cached — never on a hot path.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "DURABLE_WRITES_ENV",
    "configure_durable_writes",
    "durable_writes_enabled",
    "durable_writes_session",
    "fsync_fd",
    "fsync_dir",
]

#: Truthy values ("1", "true", "yes", "on") enable fsync-before-rename
#: plus parent-directory fsync in every atomic writer.
DURABLE_WRITES_ENV = "REPRO_DURABLE_WRITES"

_TRUTHY = ("1", "true", "yes", "on")

_enabled: bool | None = None


def durable_writes_enabled() -> bool:
    """Whether writers must fsync (cached; env read once per process)."""
    global _enabled
    if _enabled is None:
        raw = os.environ.get(DURABLE_WRITES_ENV, "").strip().lower()
        _enabled = raw in _TRUTHY
    return _enabled


def configure_durable_writes(enabled: bool | None) -> None:
    """Force (or with ``None`` re-resolve from the environment) the
    cached durability decision — tests and embedders."""
    global _enabled
    _enabled = enabled


@contextmanager
def durable_writes_session(enabled: bool):
    """Scoped override for tests; restores the prior cached state."""
    global _enabled
    previous = _enabled
    _enabled = enabled
    try:
        yield
    finally:
        _enabled = previous


def fsync_fd(fd: int) -> None:
    """``fsync`` one open descriptor (data + metadata)."""
    os.fsync(fd)


def fsync_dir(path: Path | str) -> None:
    """``fsync`` a directory, making renames/links inside it durable.

    Filesystems that cannot fsync a directory (some network mounts
    return EINVAL/ENOTSUP) degrade silently: on such mounts directory
    durability is the server's problem and there is nothing more a
    client can do.
    """
    try:
        fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
