"""Bounded exponential-backoff retry for transient filesystem faults.

Several scheduler paths write small monitoring artefacts (heartbeats,
counter snapshots) or scavenge opportunistically; before this module
they swallowed every ``OSError`` forever — a worker on a flaky NFS
mount could lose its heartbeat for minutes and never notice, holding
leases past their TTL while looking dead to everyone else.

:func:`retry_io` is the one retry policy those sites share: a handful
of attempts, exponential backoff, every retry counted into telemetry
(``reliability.retry`` plus a per-site counter) so a flaky mount shows
up in ``repro telemetry report`` instead of hiding in a silent
``except OSError: pass``.  The final failure is re-raised — *bounding*
the retries is the point; what to do when the budget is spent (give up
on a monitoring artefact, drain the worker) stays a caller decision.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from typing import TypeVar

from repro.telemetry.registry import get_telemetry

__all__ = ["retry_io"]

T = TypeVar("T")

#: Default retry schedule: 4 attempts, 0.05 s → 0.1 → 0.2 between them.
DEFAULT_ATTEMPTS = 4
DEFAULT_BASE_DELAY = 0.05
DEFAULT_MAX_DELAY = 2.0


def retry_io(
    operation: Callable[[], T],
    site: str,
    attempts: int = DEFAULT_ATTEMPTS,
    base_delay: float = DEFAULT_BASE_DELAY,
    max_delay: float = DEFAULT_MAX_DELAY,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Run ``operation``, retrying transient ``OSError`` s with backoff.

    Parameters
    ----------
    operation:
        Zero-argument callable; its return value is passed through.
    site:
        Telemetry label: each retry bumps ``reliability.retry`` and
        ``reliability.retry.<site>``.
    attempts:
        Total tries (first call included).  The last failure re-raises.
    base_delay / max_delay:
        Backoff between tries: ``min(max_delay, base_delay * 2**i)``
        after the ``i``-th failure.  Deterministic (no jitter): this
        runs on scheduler paths where consuming any RNG is forbidden.
    sleep:
        Injection point for tests.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    for attempt in range(attempts):
        try:
            return operation()
        except OSError:
            telemetry = get_telemetry()
            if telemetry is not None:
                telemetry.count("reliability.retry")
                telemetry.count(f"reliability.retry.{site}")
            if attempt == attempts - 1:
                raise
            sleep(min(max_delay, base_delay * (2.0 ** attempt)))
    raise AssertionError("unreachable")  # pragma: no cover
