"""Reliability layer: failure injection, bounded retries, durability.

The scheduler/store stack documents crash-ordering invariants; this
package is what makes them *provable* instead of assumed:

* :mod:`repro.reliability.failpoints` — named injection sites threaded
  through every commit point of the store write path and the queue
  protocol, activated via ``REPRO_FAILPOINTS`` (raise / ENOSPC / torn
  write / hard crash; nth-hit, every-K, or seeded-probability
  policies).  A provable no-op when disabled; never touches a
  simulation RNG stream.
* :mod:`repro.reliability.retry` — :func:`retry_io`, the bounded
  exponential-backoff wrapper the transient-``OSError`` sites share,
  with every retry counted into telemetry.
* :mod:`repro.reliability.durability` — opt-in power-loss durability
  (``REPRO_DURABLE_WRITES=1``): fsync file + parent directory around
  the rename in every atomic writer.

The consumers are ``repro queue fsck`` (the on-disk state-machine
checker), ``repro queue fleet`` (the self-healing worker supervisor),
and the chaos tests/CI job that drain a grid while every instrumented
commit point fails.
"""

from repro.reliability.durability import (
    DURABLE_WRITES_ENV,
    configure_durable_writes,
    durable_writes_enabled,
    durable_writes_session,
)
from repro.reliability.failpoints import (
    CRASH_EXIT_CODE,
    FAILPOINTS_ENV,
    FAILPOINTS_SEED_ENV,
    FailpointError,
    Failpoints,
    configure_failpoints,
    failpoint,
    failpoints_session,
    get_failpoints,
    parse_failpoints,
    torn_payload,
    trip_counts,
)
from repro.reliability.retry import retry_io

__all__ = [
    "CRASH_EXIT_CODE",
    "DURABLE_WRITES_ENV",
    "FAILPOINTS_ENV",
    "FAILPOINTS_SEED_ENV",
    "FailpointError",
    "Failpoints",
    "configure_durable_writes",
    "configure_failpoints",
    "durable_writes_enabled",
    "durable_writes_session",
    "failpoint",
    "failpoints_session",
    "get_failpoints",
    "parse_failpoints",
    "retry_io",
    "torn_payload",
    "trip_counts",
]
