"""Command-line interface.

Subcommands::

    python -m repro methods
        List the registered allocation methods.

    python -m repro run --method sqlb --workload 0.8 --duration 400
        Run one simulation and print a summary (add --autonomous to let
        participants leave, --paper-scale for the Table 2 environment).

    python -m repro figure 4a
        Regenerate one of the paper's figures/tables (4a-4i, 5a-5c, 6,
        table3) and print the same series/rows the paper reports.

    python -m repro sweep run|status|merge|report
        Drive whole evaluation sweeps: ``run`` executes one deterministic
        shard of a scenarios × methods × seeds grid into a result store
        (writing a resume manifest), ``status`` reads the manifests
        (``--json`` for the machine-readable rows), ``merge`` unions
        store directories from several machines, and ``report`` prints
        the per-(scenario, method) summary table with means and
        quantiles across seeds.

    python -m repro queue init|work|status|report|retry|gc|fsck|fleet
        The dynamic counterpart to static shards: ``init`` turns a sweep
        grid into a durable file-backed work queue, ``work`` runs a
        worker daemon that leases jobs (TTL heartbeats; expired leases
        are requeued, so killed workers lose nothing) until the queue
        drains, ``status`` reports depth/liveness/ETA (``--json`` for
        machines), and ``report`` summarises whatever has completed so
        far (``--figures`` renders the analysis figure catalog from the
        completed cells, even mid-drain).  ``init --adaptive`` enables
        per-scenario adaptive seeding: seeds are added in batches until
        the 95 % CI half-width of ``--ci-metric`` (default: post-warmup
        response time) falls under ``--ci-threshold`` (capped at
        ``--max-seeds``).  ``work --expiry-clock mtime`` judges lease
        expiry by heartbeat-file mtimes against the shared filesystem's
        clock (skew-immune; no NTP requirement).  ``retry`` requeues
        error-parked jobs with a fresh attempts budget; ``gc`` lists
        orphaned atomic-write temp files and stale heartbeats
        (``--prune`` removes them).  ``fsck`` audits the queue
        directory (and, with ``--cache-dir``, the store) against the
        protocol invariants, exiting non-zero on unrepaired violations
        (``--repair`` applies the protocol-defined self-repairs).
        ``fleet -n N`` supervises N worker children, restarting
        crashed ones under an exponential-backoff restart budget and
        parking the fleet (exit 2) when the environment is poison.
        Point any number of ``work`` processes — same machine or a
        shared directory — at one queue.

    python -m repro store verify
        Check a result store's on-disk integrity: every entry's two
        halves (``.npz`` payload, ``.json`` commit marker) must pair
        and — by default — parse end-to-end.  Exits non-zero when
        unclean; ``--prune`` removes orphan halves and unreadable
        entries (none can ever be served as a hit).

    python -m repro trace record|replay
        Paired-comparison workflows: ``record`` runs one scenario cell
        and serialises its arrival stream (every arrival time, consumer,
        and query class) to a portable trace file; ``replay`` feeds that
        exact stream to the engine under any set of methods, storing the
        results under an explicit ``kind="trace"`` workload so
        ``analyze compare`` sees method deltas with the arrival noise
        removed.  A replay under the recording method and seed is
        asserted byte-identical to the recording run (non-zero exit
        otherwise).

    python -m repro analyze series|figures|compare
        The read side: turn result stores into paper artifacts with
        zero new simulations.  ``series`` prints one named sampled
        series aggregated across seeds (mean/p50/p90 and 95 % CI bands;
        ``--json`` for the full-resolution payload), ``figures``
        renders the declarative figure catalog (JSON data exports
        always; SVG/PNG when matplotlib is installed), and ``compare``
        diffs two stores cell by cell with per-metric thresholds,
        exiting non-zero on any regression.

    python -m repro perf [--quick] [--out PATH] [--check BASELINE]
        Time the engine's standard workload matrix (captive + autonomous,
        small + paper-scale populations) and report queries/sec; --out
        writes the machine-readable BENCH_engine.json, --check compares
        against a committed baseline and exits non-zero on a regression
        beyond --tolerance (default 30 %), --profile N appends a cProfile
        top-N of the hot path.

The simulation-running subcommands accept ``--cache-dir PATH`` (persist
completed runs to a disk store so re-invocations skip simulation) and
``--no-cache`` (ignore any configured store, including
``$REPRO_CACHE_DIR``); ``figure`` and ``sweep`` additionally accept
``--workers N`` to fan their many simulation jobs out over a process
pool (``run`` executes a single job, so a pool would not help it).
Seed lists accept the sugar ``paper`` (the paper's ``nbRepeat = 10``
seed set) and ``default`` alongside explicit integers.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import time
from collections import Counter
from pathlib import Path

from repro.allocation.registry import PAPER_METHODS, available_methods
from repro.analysis import (
    DEFAULT_COMPARE_METRICS,
    DEFAULT_THRESHOLD,
    available_figures,
    available_metrics,
    band_payload,
    cell_band,
    cells_from_store,
    compare_stores,
    format_band_table,
    format_compare_table,
    render_catalog,
)
from repro.audit import report as audit_reports
from repro.audit.recorder import AUDIT_DIR_ENV, configure_audit
from repro.experiments.store import ResultStore
from repro.experiments.executor import (
    CACHE_DIR_ENV,
    SimulationJob,
    configure_default_executor,
    get_default_executor,
    workers_from_environment,
)
from repro.experiments.autonomy import (
    consumer_departure_curve,
    departure_reason_table,
    departure_response_times,
    provider_departure_curve,
)
from repro.experiments.captive import (
    DEFAULT_WORKLOADS,
    FIGURE4_SERIES,
    captive_ramp,
    response_time_curve,
)
from repro.experiments.harness import DEFAULT_SEEDS, PAPER_SEEDS
from repro.experiments.perf import (
    append_history,
    compare_reports,
    format_history,
    format_report,
    load_history,
    load_report,
    profile_run,
    run_perf,
    write_report,
)
from repro.experiments.report import (
    format_curve_table,
    format_reason_table,
    format_series_table,
)
from repro.simulation.config import (
    DepartureRules,
    WorkloadSpec,
    paper_config,
    scaled_config,
)
from repro.scheduler import (
    EXPIRY_CLOCKS,
    FLEET_STATE_NAME,
    AdaptiveConfig,
    FleetSupervisor,
    QueueWorker,
    WorkQueue,
    format_queue_status,
    format_queue_top,
    fsck_queue,
    queue_cells,
    queue_report,
    queue_status,
    queue_top,
    spawn_cli_worker,
)
from repro.telemetry import (
    PROFILE_DIR_ENV,
    TELEMETRY_DIR_ENV,
    TelemetryReadError,
    collect_hotspots,
    configure_telemetry,
    format_hotspots,
    format_telemetry_report,
    format_timeline,
    load_stream,
    merge_events,
    telemetry_report,
    timeline_from_path,
    write_bundle,
)
from repro.simulation.engine import ENGINE_VERSION
from repro.simulation.trace import (
    load_trace,
    record_trace,
    replay_config,
    series_fingerprint,
    trace_digest,
)
from repro.sweeps import (
    SCALES,
    SweepRunner,
    SweepSpec,
    available_scenarios,
    format_sweep_table,
    load_manifests,
    manifest_directory,
    manifest_status,
    merge_stores,
    scenario_catalog,
    sweep_summary,
)
from repro.sweeps.runner import environment_hash, write_manifest

__all__ = ["build_parser", "main"]

FIGURES = tuple(FIGURE4_SERIES) + ("4i", "5a", "5b", "5c", "6", "table3")

#: Seed-list sugar accepted wherever ``--seeds`` takes values.
SEED_KEYWORDS = {"paper": PAPER_SEEDS, "default": DEFAULT_SEEDS}


def _seed_token(text: str) -> str | int:
    """One ``--seeds`` token: an integer or a named seed set."""
    if text in SEED_KEYWORDS:
        return text
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"seeds must be integers or one of {sorted(SEED_KEYWORDS)}, "
            f"got {text!r}"
        ) from None


def resolve_seeds(tokens: list[str | int]) -> tuple[int, ...]:
    """Expand keyword tokens and deduplicate, preserving order."""
    seeds: list[int] = []
    for token in tokens:
        if isinstance(token, str):
            seeds.extend(SEED_KEYWORDS[token])
        else:
            seeds.append(token)
    return tuple(dict.fromkeys(seeds))


def _shard_value(text: str) -> tuple[int, int]:
    """Parse ``K/N`` into (shard_index, shard_count)."""
    try:
        index_text, count_text = text.split("/")
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard must look like K/N (e.g. 0/4), got {text!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise argparse.ArgumentTypeError(
            f"shard K/N needs 0 <= K < N, got {text!r}"
        )
    return index, count


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SQLB (VLDB 2007) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("methods", help="list registered allocation methods")

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(
                f"must be a positive integer, got {value}"
            )
        return value

    def add_cache_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--cache-dir",
            default=None,
            help="persist completed runs to this result-store directory "
            "(defaults to $REPRO_CACHE_DIR when set)",
        )
        command.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the persistent result store entirely",
        )
        command.add_argument(
            "--telemetry",
            default=None,
            metavar="DIR",
            help="enable instrumentation and write span/counter event "
            "files (JSONL) to this directory; read them back with "
            "'repro telemetry report DIR'",
        )
        command.add_argument(
            "--audit",
            default=None,
            metavar="DIR",
            help="record every allocation decision and commit one "
            "npz shard + manifest per simulated run to this "
            "directory; read them back with 'repro audit report DIR'",
        )

    run = sub.add_parser("run", help="run one simulation")
    # `run` executes exactly one job, so a worker pool would be a no-op;
    # only the cache flags apply here.
    add_cache_options(run)
    run.add_argument("--method", default="sqlb", choices=available_methods())
    run.add_argument(
        "--workload",
        type=float,
        default=0.8,
        help="fixed workload as a fraction of total system capacity",
    )
    run.add_argument("--duration", type=float, default=400.0)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--autonomous",
        action="store_true",
        help="allow participants to leave (Section 6.3.2 thresholds)",
    )
    run.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the exact Table 2 environment (slow)",
    )

    figure = sub.add_parser(
        "figure", help="regenerate one of the paper's figures/tables"
    )
    figure.add_argument(
        "--workers",
        type=positive_int,
        default=None,
        help="process-pool size for the figure's simulation jobs "
        "(default: $REPRO_WORKERS, else 1 = serial)",
    )
    add_cache_options(figure)
    figure.add_argument("which", choices=FIGURES)
    figure.add_argument(
        "--seeds",
        type=_seed_token,
        nargs="+",
        default=[11],
        help="repetition seeds: integers and/or 'paper' (the nbRepeat=10 "
        "set) / 'default'",
    )

    sweep = sub.add_parser(
        "sweep",
        help="run, inspect, merge, and summarise whole evaluation sweeps",
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    def add_spec_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--name",
            default="paper-grid",
            help="sweep name recorded in manifests (default: paper-grid)",
        )
        command.add_argument(
            "--scenarios",
            nargs="+",
            choices=available_scenarios(),
            default=list(available_scenarios()),
            metavar="SCENARIO",
            help="catalog scenarios to sweep (default: the whole catalog; "
            f"available: {', '.join(available_scenarios())})",
        )
        command.add_argument(
            "--methods",
            nargs="+",
            choices=available_methods(),
            default=list(PAPER_METHODS),
            metavar="METHOD",
            help="allocation methods (default: the paper's three)",
        )
        command.add_argument(
            "--seeds",
            type=_seed_token,
            nargs="+",
            default=["default"],
            help="repetition seeds: integers and/or 'paper' (the "
            "nbRepeat=10 set) / 'default'",
        )
        command.add_argument(
            "--scale",
            choices=sorted(SCALES),
            default="scaled",
            help="base environment scale (default: scaled)",
        )

    sweep_run = sweep_sub.add_parser(
        "run", help="execute one deterministic shard of a sweep"
    )
    add_spec_options(sweep_run)
    sweep_run.add_argument(
        "--shard",
        type=_shard_value,
        default=(0, 1),
        metavar="K/N",
        help="which deterministic shard to run (default 0/1 = everything)",
    )
    sweep_run.add_argument(
        "--workers",
        type=positive_int,
        default=None,
        help="process-pool size for the shard's simulation jobs",
    )
    add_cache_options(sweep_run)

    sweep_status = sweep_sub.add_parser(
        "status", help="summarise the shard manifests under a store"
    )
    add_cache_options(sweep_status)
    sweep_status.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable manifest rows instead of a table",
    )

    sweep_merge = sweep_sub.add_parser(
        "merge",
        help="union result-store directories (and manifests) into one",
    )
    sweep_merge.add_argument(
        "sources", nargs="+", help="source store directories to merge from"
    )
    sweep_merge.add_argument(
        "--into", required=True, help="destination store directory"
    )

    sweep_report = sweep_sub.add_parser(
        "report",
        help="per-(scenario, method) summary: means and quantiles "
        "across seeds",
    )
    add_spec_options(sweep_report)
    sweep_report.add_argument(
        "--workers",
        type=positive_int,
        default=None,
        help="process-pool size for any cells missing from the store",
    )
    add_cache_options(sweep_report)

    def positive_float(text: str) -> float:
        value = float(text)
        if value <= 0:
            raise argparse.ArgumentTypeError(
                f"must be a positive number, got {value}"
            )
        return value

    queue = sub.add_parser(
        "queue",
        help="durable work queue: init once, drain with N worker daemons",
    )
    queue_sub = queue.add_subparsers(dest="queue_command", required=True)

    def add_queue_dir(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--queue-dir",
            required=True,
            help="queue directory (shared between all workers)",
        )

    queue_init = queue_sub.add_parser(
        "init", help="create a queue directory from a sweep grid"
    )
    add_queue_dir(queue_init)
    add_spec_options(queue_init)
    queue_init.add_argument(
        "--adaptive",
        action="store_true",
        help="enable per-scenario adaptive seeding (CI-driven)",
    )
    queue_init.add_argument(
        "--ci-threshold",
        type=positive_float,
        default=0.5,
        metavar="SECONDS",
        help="adaptive: stop adding seeds once every method's 95%% CI "
        "half-width of post-warmup response time is at or under this "
        "(default 0.5 s)",
    )
    queue_init.add_argument(
        "--max-seeds",
        type=positive_int,
        default=len(PAPER_SEEDS),
        help="adaptive: per-scenario cap on total seeds "
        f"(default {len(PAPER_SEEDS)}, the paper's nbRepeat)",
    )
    queue_init.add_argument(
        "--seed-batch",
        type=positive_int,
        default=2,
        help="adaptive: seeds added per extension (default 2)",
    )
    queue_init.add_argument(
        "--ci-metric",
        choices=available_metrics(),
        default="response_time_post_warmup",
        metavar="METRIC",
        help="adaptive: registry metric whose CI drives convergence "
        f"(default response_time_post_warmup; available: "
        f"{', '.join(available_metrics())})",
    )

    queue_work = queue_sub.add_parser(
        "work", help="run one worker daemon until the queue drains"
    )
    add_queue_dir(queue_work)
    add_cache_options(queue_work)
    queue_work.add_argument(
        "--owner",
        default=None,
        help="worker id recorded in leases/manifests "
        "(default: host-pid-random)",
    )
    queue_work.add_argument(
        "--max-jobs",
        type=positive_int,
        default=None,
        help="stop after this many jobs (default: run until drained)",
    )
    queue_work.add_argument(
        "--ttl",
        type=positive_float,
        default=60.0,
        help="lease time-to-live in seconds; heartbeats renew at ttl/3 "
        "(default 60)",
    )
    queue_work.add_argument(
        "--poll",
        type=positive_float,
        default=0.5,
        help="seconds between queue checks while idle (default 0.5)",
    )
    queue_work.add_argument(
        "--wait",
        action="store_true",
        help="keep polling after the queue drains (standing daemon)",
    )
    queue_work.add_argument(
        "--max-attempts",
        type=positive_int,
        default=3,
        help="attempts per job before it is parked as an error record "
        "instead of retried (default 3)",
    )
    queue_work.add_argument(
        "--expiry-clock",
        choices=EXPIRY_CLOCKS,
        default="wall",
        help="how lease expiry is judged: 'wall' compares recorded "
        "deadlines against this box's clock (multi-box fleets need "
        "NTP); 'mtime' derives deadlines from heartbeat-file mtimes "
        "and 'now' from the shared filesystem's clock (skew-immune)",
    )
    queue_work.add_argument(
        "--profile",
        default=None,
        metavar="DIR",
        help="dump one cProfile stats file per executed job into DIR "
        "(aggregate with `repro telemetry hotspots DIR`); off by "
        "default and costs nothing when off",
    )

    queue_status_cmd = queue_sub.add_parser(
        "status", help="queue depth, worker liveness, and ETA"
    )
    add_queue_dir(queue_status_cmd)
    add_cache_options(queue_status_cmd)
    queue_status_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable status payload",
    )
    queue_status_cmd.add_argument(
        "--expiry-clock",
        choices=EXPIRY_CLOCKS,
        default="wall",
        help="judge worker liveness under this clock; pass the same "
        "value the fleet's workers use so status and scavengers agree "
        "(mtime: heartbeat-file mtimes vs. the shared filesystem's "
        "clock, skew-immune)",
    )

    queue_top_cmd = queue_sub.add_parser(
        "top",
        help="live fleet dashboard: per-worker throughput, heartbeat "
        "age, and oldest leases, refreshed in place",
    )
    add_queue_dir(queue_top_cmd)
    queue_top_cmd.add_argument(
        "--once",
        action="store_true",
        help="print a single frame and exit (for scripts and CI)",
    )
    queue_top_cmd.add_argument(
        "--interval",
        type=positive_float,
        default=2.0,
        help="seconds between refreshes (default 2)",
    )
    queue_top_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable frame (implies --once)",
    )
    queue_top_cmd.add_argument(
        "--expiry-clock",
        choices=EXPIRY_CLOCKS,
        default="wall",
        help="judge worker liveness under this clock (match the "
        "fleet's workers)",
    )

    queue_report_cmd = queue_sub.add_parser(
        "report",
        help="summary table over every cell the queue has completed",
    )
    add_queue_dir(queue_report_cmd)
    add_cache_options(queue_report_cmd)
    queue_report_cmd.add_argument(
        "--figures",
        action="store_true",
        help="also render the analysis figure catalog from the "
        "completed cells (works on a partially drained queue)",
    )
    queue_report_cmd.add_argument(
        "--figures-out",
        default=None,
        metavar="DIR",
        help="where --figures writes (default: <store>/figures)",
    )
    queue_report_cmd.add_argument(
        "--formats",
        nargs="+",
        choices=("json", "svg", "png"),
        default=["json", "svg"],
        help="--figures output formats (default: json svg; image "
        "formats are skipped with a note when matplotlib is missing)",
    )

    queue_retry = queue_sub.add_parser(
        "retry",
        help="requeue error-parked jobs with a fresh attempts budget",
    )
    add_queue_dir(queue_retry)
    queue_retry.add_argument(
        "--ids",
        nargs="+",
        default=None,
        metavar="JOB_ID",
        help="retry only these job ids (default: every error park)",
    )
    queue_retry.add_argument(
        "--list",
        action="store_true",
        help="list error-parked jobs without requeueing anything",
    )
    queue_retry.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable retry report",
    )

    queue_gc = queue_sub.add_parser(
        "gc",
        help="find orphaned temp files and stale heartbeats "
        "(--prune removes them)",
    )
    add_queue_dir(queue_gc)
    add_cache_options(queue_gc)
    queue_gc.add_argument(
        "--prune",
        action="store_true",
        help="remove what gc finds (default: list only)",
    )
    queue_gc.add_argument(
        "--temp-age",
        type=positive_float,
        default=3600.0,
        metavar="SECONDS",
        help="only count temp files older than this (default 3600; "
        "younger ones may belong to a live writer)",
    )
    queue_gc.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable gc report",
    )

    queue_fsck = queue_sub.add_parser(
        "fsck",
        help="audit the queue directory (and its store) against the "
        "protocol invariants; exits non-zero on unrepaired violations",
    )
    add_queue_dir(queue_fsck)
    add_cache_options(queue_fsck)
    queue_fsck.add_argument(
        "--repair",
        action="store_true",
        help="apply the protocol-defined self-repairs (requeue, "
        "discard, re-ticket, prune); never invents state or deletes "
        "a result",
    )
    queue_fsck.add_argument(
        "--temp-age",
        type=positive_float,
        default=3600.0,
        metavar="SECONDS",
        help="only flag atomic-write temp files older than this "
        "(default 3600; younger ones may belong to a live writer)",
    )
    queue_fsck.add_argument(
        "--max-attempts",
        type=positive_int,
        default=3,
        help="attempts budget used when requeueing uncovered leases "
        "(default 3)",
    )
    queue_fsck.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable fsck report",
    )

    queue_fleet = queue_sub.add_parser(
        "fleet",
        help="supervise N worker daemons: restart crashed ones under "
        "a restart budget, park the fleet when the environment is "
        "poison (exit 2)",
    )
    add_queue_dir(queue_fleet)
    add_cache_options(queue_fleet)
    queue_fleet.add_argument(
        "-n",
        "--count",
        type=positive_int,
        default=2,
        help="number of concurrent worker children (default 2)",
    )
    queue_fleet.add_argument(
        "--restart-budget",
        type=positive_int,
        default=None,
        help="fleet-wide restarts before parking (default: 3 per "
        "child)",
    )
    queue_fleet.add_argument(
        "--backoff",
        type=positive_float,
        default=0.5,
        metavar="SECONDS",
        help="base restart backoff; doubles per restart of a slot, "
        "capped at 30s (default 0.5)",
    )
    queue_fleet.add_argument(
        "--owner-prefix",
        default=None,
        help="children are named <prefix>-0..N-1 in leases/heartbeats "
        "(default: fleet-<host>-<pid>)",
    )
    queue_fleet.add_argument(
        "--ttl",
        type=positive_float,
        default=60.0,
        help="lease TTL passed to each worker (default 60)",
    )
    queue_fleet.add_argument(
        "--max-attempts",
        type=positive_int,
        default=3,
        help="per-job attempts budget passed to each worker (default 3)",
    )
    queue_fleet.add_argument(
        "--expiry-clock",
        choices=EXPIRY_CLOCKS,
        default="wall",
        help="expiry clock passed to each worker",
    )
    queue_fleet.add_argument(
        "--profile",
        default=None,
        metavar="DIR",
        help="pass --profile DIR to each worker child: one cProfile "
        "stats file per executed job, aggregated with "
        "`repro telemetry hotspots DIR`",
    )
    queue_fleet.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable fleet report",
    )

    store = sub.add_parser(
        "store",
        help="inspect a result store directly (verify on-disk "
        "integrity)",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_verify = store_sub.add_parser(
        "verify",
        help="check every entry's halves pair and parse; exits "
        "non-zero when the store is unclean",
    )
    add_cache_options(store_verify)
    store_verify.add_argument(
        "--shallow",
        action="store_true",
        help="pair the halves only; skip opening every entry "
        "(fast, misses power-loss torn files)",
    )
    store_verify.add_argument(
        "--prune",
        action="store_true",
        help="delete orphan halves and unreadable entries (none can "
        "ever be served as a hit)",
    )
    store_verify.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable verify report",
    )

    trace = sub.add_parser(
        "trace",
        help="record one run's arrival stream; replay it under other "
        "methods for paired (same-queries) comparisons",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    trace_record = trace_sub.add_parser(
        "record",
        help="run one scenario cell, writing its arrival trace and "
        "storing the recording run",
    )
    add_cache_options(trace_record)
    trace_record.add_argument(
        "--out",
        required=True,
        metavar="TRACE",
        help="trace file to write",
    )
    trace_record.add_argument(
        "--scenario",
        required=True,
        choices=available_scenarios(),
        metavar="SCENARIO",
        help="catalog scenario to record "
        f"(available: {', '.join(available_scenarios())})",
    )
    trace_record.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="tiny",
        help="base environment scale (default: tiny)",
    )
    trace_record.add_argument(
        "--method",
        default="sqlb",
        choices=available_methods(),
        help="allocation method of the recording run (default: sqlb)",
    )
    trace_record.add_argument("--seed", type=int, default=0)

    trace_replay = trace_sub.add_parser(
        "replay",
        help="replay a recorded trace under one or more methods into "
        "a result store",
    )
    add_cache_options(trace_replay)
    trace_replay.add_argument(
        "--workers",
        type=positive_int,
        default=None,
        help="process-pool size for the per-method replay jobs "
        "(default: $REPRO_WORKERS, else 1 = serial)",
    )
    trace_replay.add_argument(
        "--trace",
        required=True,
        metavar="TRACE",
        help="trace file written by 'repro trace record'",
    )
    trace_replay.add_argument(
        "--methods",
        nargs="+",
        choices=available_methods(),
        default=list(PAPER_METHODS),
        metavar="METHOD",
        help="methods to replay the trace under (default: the "
        "paper's three)",
    )
    trace_replay.add_argument(
        "--scenario",
        choices=available_scenarios(),
        default=None,
        metavar="SCENARIO",
        help="catalog scenario of the replay environment (default: "
        "the trace's recorded provenance)",
    )
    trace_replay.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="base environment scale (default: the trace's recorded "
        "provenance)",
    )

    def add_store_option(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--store",
            default=None,
            help="result-store directory to analyze "
            "(defaults to $REPRO_CACHE_DIR when set)",
        )

    analyze = sub.add_parser(
        "analyze",
        help="read-side analysis: series bands, paper figures, and "
        "cross-store regression verdicts (never simulates)",
    )
    analyze_sub = analyze.add_subparsers(
        dest="analyze_command", required=True
    )

    analyze_series = analyze_sub.add_parser(
        "series",
        help="one sampled series aggregated across seeds, per cell",
    )
    add_store_option(analyze_series)
    analyze_series.add_argument(
        "--series",
        required=True,
        metavar="NAME",
        help="sampled series name (e.g. response_time_mean, "
        "provider_intention_satisfaction_mean)",
    )
    analyze_series.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        metavar="SCENARIO",
        help="restrict to these scenarios (default: all in the store)",
    )
    analyze_series.add_argument(
        "--methods",
        nargs="+",
        default=None,
        metavar="METHOD",
        help="restrict to these methods (default: all in the store)",
    )
    analyze_series.add_argument(
        "--max-rows",
        type=positive_int,
        default=24,
        help="table subsample size per cell (default 24; --json is "
        "always full resolution)",
    )
    analyze_series.add_argument(
        "--json",
        action="store_true",
        help="emit the full-resolution band payloads",
    )

    analyze_figures = analyze_sub.add_parser(
        "figures", help="render the paper-figure catalog from a store"
    )
    add_store_option(analyze_figures)
    analyze_figures.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="output directory (default: <store>/figures)",
    )
    analyze_figures.add_argument(
        "--formats",
        nargs="+",
        choices=("json", "svg", "png"),
        default=["json", "svg"],
        help="output formats (default: json svg; image formats are "
        "skipped with a note when matplotlib is missing)",
    )
    analyze_figures.add_argument(
        "--only",
        nargs="+",
        choices=available_figures(),
        default=None,
        metavar="FIGURE",
        help="render only these catalog figures "
        f"(available: {', '.join(available_figures())})",
    )

    def threshold_value(text: str) -> tuple[str, float]:
        metric, sep, value = text.partition("=")
        if not sep or metric not in available_metrics():
            raise argparse.ArgumentTypeError(
                f"thresholds look like METRIC=FRACTION with METRIC "
                f"one of {', '.join(available_metrics())}; got {text!r}"
            )
        try:
            fraction = float(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"threshold value must be a number, got {value!r}"
            ) from None
        if fraction < 0:
            raise argparse.ArgumentTypeError(
                f"threshold must be >= 0, got {fraction}"
            )
        return metric, fraction

    analyze_compare = analyze_sub.add_parser(
        "compare",
        help="diff two stores cell by cell; exit 1 on any regression",
    )
    analyze_compare.add_argument(
        "store_a", help="baseline result-store directory"
    )
    analyze_compare.add_argument(
        "store_b", help="candidate result-store directory"
    )
    analyze_compare.add_argument(
        "--metrics",
        nargs="+",
        choices=available_metrics(),
        default=list(DEFAULT_COMPARE_METRICS),
        metavar="METRIC",
        help="registry metrics to compare "
        f"(default: {', '.join(DEFAULT_COMPARE_METRICS)})",
    )
    analyze_compare.add_argument(
        "--threshold",
        type=threshold_value,
        action="append",
        default=None,
        metavar="METRIC=FRACTION",
        help="per-metric relative-worsening gate (repeatable; e.g. "
        "--threshold response_time_post_warmup=0.3)",
    )
    analyze_compare.add_argument(
        "--default-threshold",
        type=positive_float,
        default=DEFAULT_THRESHOLD,
        metavar="FRACTION",
        help="gate for metrics without an explicit --threshold "
        f"(default {DEFAULT_THRESHOLD})",
    )
    analyze_compare.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable verdict payload",
    )

    perf = sub.add_parser(
        "perf",
        help="time the engine's standard workload matrix (queries/sec)",
    )
    perf.add_argument(
        "--quick",
        action="store_true",
        help="small-population cells only (seconds, for CI smoke)",
    )
    perf.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the machine-readable report JSON here "
        "(e.g. BENCH_engine.json)",
    )
    perf.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="compare against this baseline JSON; exit 1 when any shared "
        "cell regresses beyond --tolerance",
    )
    perf.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional qps drop before --check fails "
        "(default 0.30)",
    )
    perf.add_argument(
        "--profile",
        type=positive_int,
        default=None,
        metavar="N",
        help="append a cProfile top-N of one representative cell",
    )
    perf.add_argument(
        "--repeats",
        type=positive_int,
        default=2,
        help="time each cell this many times, report the best "
        "(default 2; filters scheduler noise out of the gate)",
    )
    perf.add_argument(
        "--no-phases",
        action="store_true",
        help="skip the extra instrumented pass that records the "
        "per-phase timer breakdown (the timed repeats are always "
        "uninstrumented either way)",
    )
    perf.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="append a timestamped JSONL row (qps matrix + phase "
        "breakdown) to this file, e.g. BENCH_history.jsonl",
    )
    perf_sub = perf.add_subparsers(dest="perf_command", metavar="")
    perf_history = perf_sub.add_parser(
        "history",
        help="render the qps trend from a --history JSONL file",
    )
    perf_history.add_argument(
        "file",
        metavar="PATH",
        help="history file written by `repro perf --history PATH`",
    )
    perf_history.add_argument(
        "--json",
        action="store_true",
        help="emit the raw history rows as a JSON array",
    )

    telemetry = sub.add_parser(
        "telemetry",
        help="read back telemetry event directories written by "
        "--telemetry DIR",
    )
    telemetry_sub = telemetry.add_subparsers(
        dest="telemetry_command", required=True
    )
    telemetry_report_cmd = telemetry_sub.add_parser(
        "report",
        help="per-phase breakdown, cache efficacy, and timer quantiles "
        "aggregated over every event file in a directory",
    )
    telemetry_report_cmd.add_argument(
        "events_dir",
        metavar="DIR",
        help="directory of events-*.jsonl files (the --telemetry DIR "
        "of a previous run)",
    )
    telemetry_report_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report payload",
    )
    telemetry_merge_cmd = telemetry_sub.add_parser(
        "merge",
        help="union every per-process events file into one canonical, "
        "deterministically ordered, digest-stamped merged stream",
    )
    telemetry_merge_cmd.add_argument(
        "events_dir",
        metavar="DIR",
        help="directory of events-*.jsonl files (the --telemetry DIR "
        "of a previous run)",
    )
    telemetry_merge_cmd.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="merged stream destination (default: DIR/merged.jsonl)",
    )
    telemetry_merge_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the merge summary as JSON",
    )
    telemetry_timeline_cmd = telemetry_sub.add_parser(
        "timeline",
        help="reconstruct the fleet drain: per-worker lanes, queue-wait/"
        "execute/idle decomposition, straggler and critical path",
    )
    telemetry_timeline_cmd.add_argument(
        "path",
        metavar="PATH",
        help="a merged stream, a single events file, or a telemetry "
        "directory (its merged.jsonl is preferred when present)",
    )
    telemetry_timeline_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable timeline payload",
    )
    telemetry_hotspots_cmd = telemetry_sub.add_parser(
        "hotspots",
        help="aggregate per-job cProfile dumps (queue work --profile / "
        "$REPRO_PROFILE_DIR) into a fleet-wide top-N table",
    )
    telemetry_hotspots_cmd.add_argument(
        "profile_dir",
        metavar="DIR",
        help="directory of profile-*.pstats dumps",
    )
    telemetry_hotspots_cmd.add_argument(
        "--top",
        type=positive_int,
        default=15,
        help="functions to list, by cumulative time (default 15)",
    )
    telemetry_hotspots_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable hotspot payload",
    )
    telemetry_bundle_cmd = telemetry_sub.add_parser(
        "bundle",
        help="render one self-contained HTML ops bundle (timeline, "
        "phases, counters, bench baseline) from a merged stream",
    )
    telemetry_bundle_cmd.add_argument(
        "path",
        metavar="PATH",
        help="a merged stream, a single events file, or a telemetry "
        "directory (its merged.jsonl is preferred when present)",
    )
    telemetry_bundle_cmd.add_argument(
        "--out",
        required=True,
        metavar="HTML",
        help="output HTML file (single file, no external assets)",
    )
    telemetry_bundle_cmd.add_argument(
        "--bench",
        default=None,
        metavar="JSON",
        help="embed this BENCH_engine.json baseline for side-by-side "
        "comparison",
    )
    telemetry_bundle_cmd.add_argument(
        "--bench-history",
        default=None,
        metavar="JSONL",
        help="embed a perf-trend section rendered from this "
        "BENCH_history.jsonl (per-mode deltas, torn tails skipped)",
    )
    telemetry_bundle_cmd.add_argument(
        "--audit-shards",
        default=None,
        metavar="PATH",
        dest="audit_shards",
        help="embed decision-audit report sections: PATH is a shard "
        "manifest, an .npz shard, or a directory of shards",
    )
    telemetry_bundle_cmd.add_argument(
        "--title",
        default="repro fleet ops bundle",
        help="bundle page title",
    )

    audit = sub.add_parser(
        "audit",
        help="read back allocation decision shards written by "
        "--audit DIR",
    )
    audit_sub = audit.add_subparsers(dest="audit_command", required=True)
    audit_report_cmd = audit_sub.add_parser(
        "report",
        help="per-provider allocation shares, score-gap distribution, "
        "per-class routing, and the anomaly sweep for one shard",
    )
    audit_report_cmd.add_argument(
        "path",
        metavar="PATH",
        help="a shard manifest, an .npz shard, or a directory of "
        "shards (then --method selects one)",
    )
    audit_report_cmd.add_argument(
        "--method",
        default=None,
        help="when PATH is a directory: the shard's registry method",
    )
    audit_report_cmd.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        help="also write the machine-readable payload to OUT "
        "(deterministic: double renders are byte-identical)",
    )
    audit_explain_cmd = audit_sub.add_parser(
        "explain",
        help="reconstruct one decision: top-K candidates, scores, "
        "intentions, who won and at what rank",
    )
    audit_explain_cmd.add_argument("path", metavar="PATH")
    audit_explain_cmd.add_argument(
        "index",
        type=int,
        metavar="QUERY_IDX",
        help="decision index within the shard (0-based issue order)",
    )
    audit_explain_cmd.add_argument(
        "--method",
        default=None,
        help="when PATH is a directory: the shard's registry method",
    )
    audit_diff_cmd = audit_sub.add_parser(
        "diff",
        help="paired decision-by-decision divergence of two shards "
        "recorded over the same replayed trace",
    )
    audit_diff_cmd.add_argument("path_a", metavar="PATH_A")
    audit_diff_cmd.add_argument("path_b", metavar="PATH_B")
    audit_diff_cmd.add_argument(
        "--method-a",
        default=None,
        help="when PATH_A is a directory: the first shard's method",
    )
    audit_diff_cmd.add_argument(
        "--method-b",
        default=None,
        help="when PATH_B is a directory: the second shard's method",
    )
    audit_diff_cmd.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        help="also write the machine-readable diff payload to OUT",
    )
    return parser


def _cmd_methods() -> str:
    lines = ["registered allocation methods:"]
    for name in available_methods():
        marker = " (paper)" if name in PAPER_METHODS else ""
        lines.append(f"  {name}{marker}")
    return "\n".join(lines)


def _cmd_run(args: argparse.Namespace) -> str:
    if args.paper_scale:
        config = paper_config(workload=WorkloadSpec.fixed(args.workload))
    else:
        config = scaled_config(
            duration=args.duration,
            # Keep a post-warmup measurement window even on short runs.
            warmup_time=min(150.0, args.duration / 4.0),
            workload=WorkloadSpec.fixed(args.workload),
        )
    if args.autonomous:
        config = config.with_departures(DepartureRules.autonomous(True))
    result = get_default_executor().run_one(
        config, args.method, seed=args.seed
    )

    lines = [
        f"method: {result.method_name}   seed: {result.seed}   "
        f"workload: {args.workload:.0%}",
        f"queries issued/served/unserved: {result.queries_issued}/"
        f"{result.queries_served}/{result.queries_unserved}",
        f"response time (post-warmup mean): "
        f"{result.response_time_post_warmup:.2f} s",
        f"provider satisfaction (intentions): "
        f"{result.series('provider_intention_satisfaction_mean')[-1]:.3f}",
        f"provider alloc. satisfaction (preferences): "
        f"{result.series('provider_preference_allocation_satisfaction_mean')[-1]:.3f}",
        f"consumer alloc. satisfaction: "
        f"{result.series('consumer_allocation_satisfaction_mean')[-1]:.3f}",
    ]
    if args.autonomous:
        providers = Counter(
            d.reason for d in result.departures if d.kind == "provider"
        )
        consumers = sum(
            1 for d in result.departures if d.kind == "consumer"
        )
        lines.append(
            f"departures: providers {dict(providers) or 0}, "
            f"consumers {consumers}"
        )
    return "\n".join(lines)


def _cmd_figure(args: argparse.Namespace) -> str:
    seeds = resolve_seeds(args.seeds)
    which = args.which
    if which in FIGURE4_SERIES:
        family = captive_ramp(seeds=seeds)
        series = FIGURE4_SERIES[which]
        times = next(iter(family.values())).times()
        return format_series_table(
            times,
            {m: family[m].series(series) for m in family},
            value_label=f"Figure {which}: {series}",
        )
    if which == "4i":
        curve = response_time_curve(seeds=seeds)
        return format_curve_table(
            curve.workloads,
            curve.response_times,
            value_label="Figure 4(i): response time (s), captive",
        )
    if which in ("5a", "5b"):
        curve = departure_response_times(
            include_overutilization=(which == "5b"), seeds=seeds
        )
        return format_curve_table(
            curve.workloads,
            curve.response_times,
            value_label=f"Figure {which}: response time (s), autonomous",
        )
    if which == "5c":
        curve = provider_departure_curve(seeds=seeds)
        return format_curve_table(
            DEFAULT_WORKLOADS,
            {m: 100.0 * v for m, v in curve.items()},
            value_label="Figure 5(c): provider departures (%)",
            precision=1,
        )
    if which == "6":
        curve = consumer_departure_curve(seeds=seeds)
        return format_curve_table(
            DEFAULT_WORKLOADS,
            {m: 100.0 * v for m, v in curve.items()},
            value_label="Figure 6: consumer departures (%)",
            precision=1,
        )
    if which == "table3":
        return format_reason_table(departure_reason_table(seeds=seeds))
    raise AssertionError(f"unhandled figure {which!r}")  # pragma: no cover


def _spec_from_args(args: argparse.Namespace) -> SweepSpec:
    return SweepSpec(
        name=args.name,
        scenarios=tuple(args.scenarios),
        methods=tuple(args.methods),
        seeds=resolve_seeds(args.seeds),
        scale=args.scale,
    )


def _cmd_sweep_run(args: argparse.Namespace) -> str:
    executor = get_default_executor()
    if executor.store is None:
        raise SystemExit(
            "repro: error: sweep run needs a result store for manifests "
            "and resume; pass --cache-dir or set $REPRO_CACHE_DIR"
        )
    spec = _spec_from_args(args)
    shard_index, shard_count = args.shard
    report = SweepRunner(executor).run_shard(spec, shard_index, shard_count)
    lines = [
        f"sweep: {spec.name}   spec: {spec.spec_hash()}   "
        f"shard: {shard_index}/{shard_count}",
        f"jobs: {report.jobs}   simulated: {report.simulated}   "
        f"store hits: {report.store_hits}",
        f"manifest: {report.manifest_path}",
    ]
    if report.all_store_hits:
        lines.append("shard fully warm: zero new simulations")
    return "\n".join(lines)


def _resolve_cache_dir(args: argparse.Namespace) -> str | None:
    """The one cache-dir resolution: flag beats env, --no-cache beats
    both.  Every command that touches a store resolves through here so
    they can never disagree about which store they read."""
    if args.no_cache:
        return None
    if args.cache_dir is not None:
        return args.cache_dir
    return os.environ.get(CACHE_DIR_ENV) or None


def _require_cache_dir(args: argparse.Namespace, command: str) -> str:
    if args.no_cache:
        raise SystemExit(
            f"repro: error: {command} reads a result store; "
            "--no-cache makes no sense here"
        )
    cache_dir = _resolve_cache_dir(args)
    if cache_dir is None:
        raise SystemExit(
            f"repro: error: {command} needs --cache-dir or $REPRO_CACHE_DIR"
        )
    return cache_dir


def _cmd_sweep_status(args: argparse.Namespace) -> str:
    cache_dir = _require_cache_dir(args, "sweep status")
    rows = manifest_status(load_manifests(cache_dir))
    if args.json:
        return json.dumps(
            {"engine_version": ENGINE_VERSION, "manifests": rows},
            sort_keys=True,
            indent=1,
        )
    if not rows:
        return f"no sweep manifests under {cache_dir}"
    lines = [
        f"{'sweep':<16} {'spec':<16} {'source':>14} {'jobs':>5} "
        f"{'simulated':>9} {'store_hit':>9} {'engine':>7}"
    ]
    for row in rows:
        stale = " (stale)" if row["stale"] else ""
        if row["worker"] is not None:
            source = f"w:{row['worker'][:12]}"
        elif row.get("trace") is not None:
            source = f"t:{Path(row['trace']).name[:12]}"
        else:
            source = f"{row['shard_index']}/{row['shard_count']}"
        lines.append(
            f"{row['sweep'] or '?':<16} "
            f"{row['spec_hash'] or '?':<16} "
            f"{source:>14} "
            f"{row['jobs']:>5} "
            f"{row['simulated']:>9} "
            f"{row['store_hits']:>9} "
            f"{row['engine_version'] or '?':>7}{stale}"
        )
    return "\n".join(lines)


def _cmd_sweep_merge(args: argparse.Namespace) -> str:
    try:
        report = merge_stores(args.sources, args.into)
    except FileNotFoundError as error:
        raise SystemExit(f"repro: error: {error}") from None
    return (
        f"merged into {report.destination}: "
        f"{report.entries_copied} entries copied, "
        f"{report.entries_skipped} already present; "
        f"{report.manifests_copied} manifests copied, "
        f"{report.manifests_skipped} already present"
    )


def _cmd_queue_init(args: argparse.Namespace) -> str:
    spec = _spec_from_args(args)
    adaptive = None
    if args.adaptive:
        adaptive = AdaptiveConfig(
            ci_threshold=args.ci_threshold,
            max_seeds=args.max_seeds,
            seed_batch=args.seed_batch,
            metric=args.ci_metric,
        ).payload()
        if args.max_seeds <= len(spec.seeds):
            # Equal is as useless as below: every scenario starts
            # "capped" and the advertised CI-driven seeding never runs.
            raise SystemExit(
                f"repro: error: --max-seeds {args.max_seeds} leaves no "
                f"headroom over the {len(spec.seeds)} initial seeds; "
                "adaptive seeding could never add one"
            )
    try:
        queue = WorkQueue.init(args.queue_dir, spec, adaptive=adaptive)
    except FileExistsError as error:
        raise SystemExit(f"repro: error: {error}") from None
    counts = queue.counts()
    lines = [
        f"queue initialised at {queue.root}",
        f"sweep: {spec.name}   spec: {spec.spec_hash()}   "
        f"scale: {spec.scale}",
        f"jobs enqueued: {counts.pending}",
    ]
    if adaptive is not None:
        lines.append(
            f"adaptive seeding: metric={args.ci_metric} "
            f"ci_threshold={args.ci_threshold} "
            f"max_seeds={args.max_seeds} seed_batch={args.seed_batch}"
        )
    lines.append(
        "drain with: repro queue work --queue-dir "
        f"{args.queue_dir} --cache-dir <shared store>"
    )
    return "\n".join(lines)


def _open_queue(args: argparse.Namespace) -> WorkQueue:
    # Commands without an --expiry-clock flag open under the default
    # wall clock; those with one (work, status) get a handle whose
    # heartbeat/liveness/scavenging judgements all share that clock.
    clock = getattr(args, "expiry_clock", "wall")
    try:
        return WorkQueue(args.queue_dir, clock=clock)
    except (FileNotFoundError, ValueError) as error:
        raise SystemExit(f"repro: error: {error}") from None


def _cmd_queue_work(args: argparse.Namespace) -> str:
    if getattr(args, "profile", None):
        # The executor's pool children inherit this through the
        # environment; active_profile_dir() re-reads it per process.
        os.environ[PROFILE_DIR_ENV] = str(args.profile)
    executor = get_default_executor()
    if executor.store is None:
        raise SystemExit(
            "repro: error: queue work needs a result store shared by all "
            "workers; pass --cache-dir or set $REPRO_CACHE_DIR"
        )
    worker = QueueWorker(
        _open_queue(args),
        executor=executor,
        owner=args.owner,
        ttl=args.ttl,
        poll_interval=args.poll,
        max_jobs=args.max_jobs,
        wait=args.wait,
        max_attempts=args.max_attempts,
        expiry_clock=args.expiry_clock,
    )
    report = worker.run(install_signal_handlers=True)
    lines = [
        f"worker {report.owner} finished"
        + (" (signalled)" if report.stopped_by_signal else ""),
        f"processed: {report.processed}   simulated: {report.simulated}   "
        f"store hits: {report.store_hits}   "
        f"requeued expired: {report.requeued}"
        + (f"   failed: {report.failed}" if report.failed else ""),
    ]
    if report.manifest_path is not None:
        lines.append(f"manifest: {report.manifest_path}")
    else:
        lines.append("no manifest written (no jobs processed)")
    return "\n".join(lines)


def _cmd_queue_status(args: argparse.Namespace) -> str:
    status = queue_status(
        _open_queue(args), store_root=_resolve_cache_dir(args)
    )
    if args.json:
        return json.dumps(status, sort_keys=True, indent=1)
    return format_queue_status(status)


def _cmd_queue_top(args: argparse.Namespace) -> str:
    queue = _open_queue(args)
    frame = queue_top(queue)
    if args.json:
        return json.dumps(frame, sort_keys=True, indent=1)
    if args.once:
        return format_queue_top(frame)
    # Live mode: redraw in place until the queue drains or ^C.  Frames
    # chain (previous=frame) so per-worker jobs/min comes from counter
    # deltas rather than session averages.
    try:
        while True:
            print("\x1b[2J\x1b[H" + format_queue_top(frame), flush=True)
            if frame["status"]["drained"]:
                break
            time.sleep(args.interval)
            frame = queue_top(queue, previous=frame)
    except KeyboardInterrupt:
        pass
    return ""


def _cmd_queue_report(args: argparse.Namespace) -> str:
    # queue report promises zero new simulations; without the shared
    # store it would silently re-simulate every completed cell.
    cache_dir = _require_cache_dir(args, "queue report")
    queue = _open_queue(args)
    records = queue.done_records()
    try:
        summaries = queue_report(
            queue,
            executor=get_default_executor(),
            done_records=records,
        )
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}") from None
    errors = sum(1 for r in records if r.get("state") == "error")
    header = (
        f"# queue: {queue.name}   spec: {queue.spec_hash}   "
        f"scale: {queue.spec.scale}   done: {len(records) - errors}"
        # An error-parked job must be visible here: the table below
        # silently omits its seed.
        + (f"   errors: {errors}" if errors else "")
    )
    if not summaries:
        body = header + "\nno completed cells yet"
    else:
        body = header + "\n" + format_sweep_table(summaries)
    if not args.figures:
        return body
    # Figures over the queue's *done records*, not the manifests:
    # manifests appear only when a worker session ends, so this is
    # what makes figure rendering work mid-drain.
    out_dir = args.figures_out or str(Path(cache_dir) / "figures")
    report = render_catalog(
        cache_dir,
        out_dir,
        formats=tuple(dict.fromkeys(args.formats)),
        cells=queue_cells(queue, records),
    )
    lines = [body, f"figures: {len(report.written)} files in {out_dir}"]
    lines.extend(f"figures skipped: {note}" for note in report.skipped)
    return "\n".join(lines)


def _cmd_queue_retry(args: argparse.Namespace) -> str:
    queue = _open_queue(args)
    if args.list:
        records = queue.error_records()
        payload = {
            "errors": records,
            "stranded": queue.stranded_jobs(),
        }
        if args.json:
            return json.dumps(payload, sort_keys=True, indent=1)
        if not records and not payload["stranded"]:
            return "no error-parked or stranded jobs"
        lines = [f"{'job id':<50} {'attempts':>8}  error"]
        for record in records:
            lines.append(
                f"{record.get('id', '?'):<50} "
                f"{record.get('attempts', '?'):>8}  "
                f"{record.get('error', '?')}"
            )
        for identifier in payload["stranded"]:
            lines.append(f"{identifier:<50} {'-':>8}  stranded (no state)")
        return "\n".join(lines)
    report = queue.retry_errors(ids=args.ids)
    if args.json:
        return json.dumps(
            {
                "requeued": list(report.requeued),
                "reticketed": list(report.reticketed),
                "skipped": [
                    {"id": identifier, "reason": reason}
                    for identifier, reason in report.skipped
                ],
            },
            sort_keys=True,
            indent=1,
        )
    lines = [
        f"requeued {len(report.requeued)} error-parked job(s) with a "
        "fresh attempts budget"
    ]
    lines.extend(f"  {identifier}" for identifier in report.requeued)
    if report.reticketed:
        lines.append(
            f"re-ticketed {len(report.reticketed)} stranded job(s)"
        )
        lines.extend(f"  {identifier}" for identifier in report.reticketed)
    for identifier, reason in report.skipped:
        lines.append(f"skipped {identifier}: {reason}")
    return "\n".join(lines)


def _cmd_queue_gc(args: argparse.Namespace) -> str:
    queue = _open_queue(args)
    extra_roots: list[str] = []
    cache_dir = _resolve_cache_dir(args)
    if cache_dir is not None:
        extra_roots.append(cache_dir)
        extra_roots.append(str(manifest_directory(cache_dir)))
    telemetry_dir = getattr(args, "telemetry", None)
    if telemetry_dir is not None:
        # Covers the dot-temp event files a killed worker left behind
        # in its --telemetry directory.
        extra_roots.append(str(telemetry_dir))
    audit_dir = getattr(args, "audit", None)
    if audit_dir is not None:
        # Covers the two audit crash footprints: *.npz.tmp husks and
        # manifest-less shards from a worker killed mid-flush.
        extra_roots.append(str(audit_dir))
    report = queue.gc(
        prune=args.prune,
        temp_age=args.temp_age,
        extra_roots=tuple(extra_roots),
    )
    if args.json:
        return json.dumps(
            {
                "temp_files": [str(p) for p in report.temp_files],
                "stale_heartbeats": list(report.stale_heartbeats),
                "stranded_jobs": list(report.stranded_jobs),
                "pruned": report.pruned,
            },
            sort_keys=True,
            indent=1,
        )
    verb = "removed" if args.prune else "found"
    lines = [
        f"{verb} {len(report.temp_files)} orphaned temp file(s), "
        f"{len(report.stale_heartbeats)} stale heartbeat(s)"
    ]
    lines.extend(f"  temp: {path}" for path in report.temp_files)
    lines.extend(
        f"  heartbeat: {owner}" for owner in report.stale_heartbeats
    )
    if report.stranded_jobs:
        lines.append(
            f"{len(report.stranded_jobs)} stranded job(s) — re-ticket "
            "with 'repro queue retry':"
        )
        lines.extend(f"  {identifier}" for identifier in report.stranded_jobs)
    if report.clean:
        lines.append("queue directory is clean")
    return "\n".join(lines)


def _cmd_queue_fsck(args: argparse.Namespace) -> str:
    queue = _open_queue(args)
    cache_dir = _resolve_cache_dir(args)
    store = ResultStore(cache_dir) if cache_dir is not None else None
    report = fsck_queue(
        queue,
        store=store,
        repair=args.repair,
        temp_age=args.temp_age,
        max_attempts=args.max_attempts,
        audit_root=getattr(args, "audit", None),
    )
    if args.json:
        output = json.dumps(report.payload(), sort_keys=True, indent=1)
    else:
        checked = report.checked
        lines = [
            f"fsck {queue.root}: jobs {checked['jobs']}  "
            f"pending {checked['pending']}  leases {checked['leases']}  "
            f"done {checked['done']}  heartbeats {checked['heartbeats']}"
            + (
                f"  store entries {checked['store_entries']}"
                if store is not None
                else "  (no store checked; pass --cache-dir)"
            )
        ]
        if report.clean:
            lines.append("consistent: no violations")
        else:
            lines.append(
                f"{'kind':<18} {'repair':<24} subject"
            )
            for violation in report.violations:
                status = violation.repair + (
                    " (applied)" if violation.repaired else ""
                )
                lines.append(
                    f"{violation.kind:<18} {status:<24} "
                    f"{violation.subject}"
                )
                lines.append(f"{'':<18} {'':<24}   {violation.detail}")
            unrepaired = len(report.unrepaired)
            lines.append(
                f"{len(report.violations)} violation(s), "
                f"{len(report.violations) - unrepaired} repaired, "
                f"{unrepaired} unrepaired"
                + (
                    ""
                    if args.repair
                    else " (re-run with --repair to fix)"
                )
            )
        output = "\n".join(lines)
    if report.unrepaired:
        # The verdict must reach both humans and scripts: print the
        # report, then fail the process.
        print(output)
        raise SystemExit(1)
    return output


def _cmd_queue_fleet(args: argparse.Namespace) -> str:
    cache_dir = _require_cache_dir(args, "queue fleet")
    queue = _open_queue(args)  # fail fast before spawning anything
    prefix = args.owner_prefix or f"fleet-{os.getpid()}"
    worker_args = (
        "--ttl",
        str(args.ttl),
        "--max-attempts",
        str(args.max_attempts),
        "--expiry-clock",
        args.expiry_clock,
    )
    telemetry_dir = getattr(args, "telemetry", None)
    if telemetry_dir is not None:
        worker_args += ("--telemetry", str(telemetry_dir))
    if args.profile is not None:
        worker_args += ("--profile", str(args.profile))
    audit_dir = getattr(args, "audit", None)
    if audit_dir is not None:
        worker_args += ("--audit", str(audit_dir))
    supervisor = FleetSupervisor(
        spawn_cli_worker(args.queue_dir, cache_dir, worker_args),
        count=args.count,
        restart_budget=args.restart_budget,
        backoff_base=args.backoff,
        owner_prefix=prefix,
        on_event=(
            None
            if args.json
            else lambda message: print(f"fleet: {message}", flush=True)
        ),
        # Advisory state file `queue top` folds into its fleet section.
        state_path=queue.root / FLEET_STATE_NAME,
    )
    report = supervisor.run(install_signal_handlers=True)
    counts = queue.counts()
    if args.json:
        output = json.dumps(
            {
                **report.payload(),
                "queue": {
                    "pending": counts.pending,
                    "leased": counts.leased,
                    "done": counts.done,
                },
            },
            sort_keys=True,
            indent=1,
        )
    else:
        if report.parked:
            verdict = (
                "parked: restart budget exhausted — the environment "
                "is killing workers faster than restarts help"
            )
        elif report.drained:
            verdict = "drained"
        else:
            verdict = "stopped" + (
                " (signalled)" if report.stopped_by_signal else ""
            )
        lines = [
            f"fleet {verdict}",
            f"children: {len(report.children)}   "
            f"restarts: {report.restarts}",
        ]
        for child in report.children:
            exit_note = (
                "" if child.exit_code is None
                else f" (exit {child.exit_code})"
            )
            lines.append(
                f"  {child.owner}: {child.state}{exit_note}"
                + (
                    f", {child.restarts} restart(s)"
                    if child.restarts
                    else ""
                )
            )
        lines.append(
            f"queue: pending {counts.pending}  leased {counts.leased}  "
            f"done {counts.done}"
        )
        output = "\n".join(lines)
    if report.parked:
        print(output)
        raise SystemExit(2)
    return output


def _cmd_store(args: argparse.Namespace) -> str:
    if args.store_command != "verify":  # pragma: no cover
        raise AssertionError(
            f"unhandled store command {args.store_command!r}"
        )
    cache_dir = _require_cache_dir(args, "store verify")
    store = ResultStore(cache_dir)
    report = store.verify(deep=not args.shallow)
    pruned = 0
    if args.prune and not report.clean:
        pruned = store.prune_invalid(report)
    if args.json:
        output = json.dumps(
            {
                "clean": report.clean,
                "entries": report.entries,
                "orphan_npz": list(report.orphan_npz),
                "orphan_json": list(report.orphan_json),
                "unreadable": list(report.unreadable),
                "pruned_files": pruned,
            },
            sort_keys=True,
            indent=1,
        )
    else:
        lines = [
            f"store {cache_dir}: {report.entries} complete entr"
            + ("y" if report.entries == 1 else "ies")
            + ("" if args.shallow else " (deep-read)")
        ]
        for label, keys in (
            ("orphan npz (interrupted put)", report.orphan_npz),
            ("orphan json (write order violated)", report.orphan_json),
            ("unreadable entries", report.unreadable),
        ):
            for key in keys:
                lines.append(f"  {label}: {key}")
        if report.clean:
            lines.append("store is clean")
        elif args.prune:
            lines.append(f"pruned {pruned} file(s)")
        else:
            lines.append(
                "store is unclean (re-run with --prune to remove; "
                "none of these can ever be served as a hit)"
            )
        output = "\n".join(lines)
    if not report.clean and not args.prune:
        print(output)
        raise SystemExit(1)
    return output


def _cmd_queue(args: argparse.Namespace) -> str:
    if args.queue_command == "init":
        return _cmd_queue_init(args)
    if args.queue_command == "work":
        _configure_executor(args)
        return _cmd_queue_work(args)
    if args.queue_command == "status":
        return _cmd_queue_status(args)
    if args.queue_command == "top":
        return _cmd_queue_top(args)
    if args.queue_command == "report":
        _configure_executor(args)
        return _cmd_queue_report(args)
    if args.queue_command == "retry":
        return _cmd_queue_retry(args)
    if args.queue_command == "gc":
        return _cmd_queue_gc(args)
    if args.queue_command == "fsck":
        return _cmd_queue_fsck(args)
    if args.queue_command == "fleet":
        return _cmd_queue_fleet(args)
    raise AssertionError(
        f"unhandled queue command {args.queue_command!r}"
    )  # pragma: no cover


def _scenario_config(scenario: str, scale: str):
    try:
        return scenario_catalog(scale, names=(scenario,))[scenario].config
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}") from None


def _workload_payload(config) -> dict:
    """A workload spec as its manifest payload (None fields dropped)."""
    return {
        name: value
        for name, value in dataclasses.asdict(config.workload).items()
        if value is not None
    }


def _cmd_trace_record(args: argparse.Namespace) -> str:
    cache_dir = _require_cache_dir(args, "trace record")
    config = _scenario_config(args.scenario, args.scale)
    try:
        result = record_trace(
            config,
            args.method,
            args.seed,
            args.out,
            scenario=args.scenario,
            scale=args.scale,
        )
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}") from None
    store = ResultStore(cache_dir)
    key = store.put(result, method=args.method)
    digest = trace_digest(args.out)
    spec = SweepSpec(
        name="trace-record",
        scenarios=(args.scenario,),
        methods=(args.method,),
        seeds=(args.seed,),
        scale=args.scale,
    )
    write_manifest(
        store.root,
        spec,
        environment_hash(spec),
        {"trace": str(args.out)},
        f"trace-record.{digest[:12]}",
        [
            {
                "scenario": args.scenario,
                "method": args.method,
                "seed": args.seed,
                "key": key,
                "state": "simulated",
            }
        ],
    )
    trace = load_trace(args.out)
    return "\n".join(
        [
            f"trace written to {args.out}",
            f"events: {trace.events} ({trace.issued} issued)   "
            f"digest: {digest[:16]}…",
            f"recording: {args.scenario} / {args.method} / seed "
            f"{args.seed} @ {args.scale}   fingerprint: "
            f"{trace.fingerprint[:16]}…",
            f"store: {key}",
            f"replay with: repro trace replay --trace {args.out} "
            f"--cache-dir <other store>",
        ]
    )


def _cmd_trace_replay(args: argparse.Namespace) -> str:
    cache_dir = _require_cache_dir(args, "trace replay")
    try:
        trace = load_trace(args.trace)
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}") from None
    scenario = args.scenario or trace.scenario
    scale = args.scale or trace.scale
    if scenario is None or scale is None:
        raise SystemExit(
            "repro: error: the trace records no scenario/scale "
            "provenance; pass --scenario and --scale"
        )
    if trace.engine_version != ENGINE_VERSION:
        raise SystemExit(
            f"repro: error: trace {args.trace} was recorded under "
            f"engine version {trace.engine_version!r}; this engine is "
            f"{ENGINE_VERSION!r} and replay would not be comparable"
        )
    base = _scenario_config(scenario, scale)
    try:
        config = replay_config(base, args.trace)
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}") from None
    methods = tuple(dict.fromkeys(args.methods))
    executor = get_default_executor()
    try:
        detailed = executor.run_detailed(
            [SimulationJob(config, method, trace.seed) for method in methods]
        )
    except ValueError as error:
        # Population/horizon mismatch against the replay environment.
        raise SystemExit(f"repro: error: {error}") from None
    store = ResultStore(cache_dir)
    spec = SweepSpec(
        name="trace-replay",
        scenarios=(scenario,),
        methods=methods,
        seeds=(trace.seed,),
        scale=scale,
    )
    entries = [
        {
            "scenario": scenario,
            "method": method,
            "seed": trace.seed,
            "key": store.key(config, method, trace.seed),
            "state": "store_hit" if hit else "simulated",
        }
        for method, (_, hit) in zip(methods, detailed)
    ]
    manifest_path = write_manifest(
        store.root,
        spec,
        environment_hash(spec),
        {
            "trace": str(args.trace),
            "trace_workload": _workload_payload(config),
        },
        f"trace-replay.{config.workload.trace_digest[:12]}",
        entries,
    )
    lines = [
        f"replayed {args.trace}: {scenario} @ {scale}, seed "
        f"{trace.seed}, {trace.events} events ({trace.issued} issued)"
    ]
    mismatch = False
    for method, (result, hit) in zip(methods, detailed):
        fingerprint = series_fingerprint(result)
        state = "store hit" if hit else "simulated"
        line = (
            f"  {method:<10} served {result.queries_served}/"
            f"{result.queries_issued}   fingerprint "
            f"{fingerprint[:16]}…   {state}"
        )
        if method == trace.method:
            if fingerprint == trace.fingerprint:
                line += "   byte-identical to the recording run"
            else:
                line += "   MISMATCH vs. the recording run"
                mismatch = True
        lines.append(line)
    lines.append(f"manifest: {manifest_path}")
    if mismatch:
        print("\n".join(lines))
        raise SystemExit(
            f"repro: error: replay under the recording method "
            f"{trace.method!r} did not reproduce the recording run's "
            "sampled series; the replay environment differs from the "
            "recorded one (wrong --scenario/--scale, or a code change "
            "that requires an ENGINE_VERSION bump)"
        )
    return "\n".join(lines)


def _cmd_trace(args: argparse.Namespace) -> str:
    if args.trace_command == "record":
        return _cmd_trace_record(args)
    if args.trace_command == "replay":
        return _cmd_trace_replay(args)
    raise AssertionError(
        f"unhandled trace command {args.trace_command!r}"
    )  # pragma: no cover


def _resolve_store(args: argparse.Namespace, command: str) -> str:
    """The store an analyze command reads: --store, else the cache env.

    Analysis is read-only by contract, so a missing directory is a
    user error to refuse loudly — there is nothing sensible to create.
    """
    store = args.store or os.environ.get(CACHE_DIR_ENV) or None
    if store is None:
        raise SystemExit(
            f"repro: error: {command} needs --store or $REPRO_CACHE_DIR"
        )
    if not Path(store).is_dir():
        raise SystemExit(
            f"repro: error: no result store at {store}"
        )
    return store


def _cmd_analyze_series(args: argparse.Namespace) -> str:
    store_root = _resolve_store(args, "analyze series")
    try:
        cells, stale = cells_from_store(store_root)
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}") from None
    if args.scenarios is not None:
        cells = [c for c in cells if c.scenario in set(args.scenarios)]
    if args.methods is not None:
        cells = [c for c in cells if c.method in set(args.methods)]
    if not cells:
        raise SystemExit(
            f"repro: error: no matching cells under {store_root} "
            "(no manifests, or the filters excluded everything)"
        )
    store = ResultStore(store_root)
    try:
        bands = [cell_band(store, cell, args.series) for cell in cells]
    except KeyError as error:
        # A typo'd --series must not masquerade as missing store data.
        raise SystemExit(f"repro: error: {error.args[0]}") from None
    if args.json:
        return json.dumps(
            {
                "series": args.series,
                "stale_manifests": stale,
                "cells": [band_payload(band) for band in bands],
            },
            sort_keys=True,
            indent=1,
            allow_nan=False,
        )
    blocks = [
        format_band_table(band, max_rows=args.max_rows) for band in bands
    ]
    if stale:
        blocks.append(
            f"({stale} stale manifest(s) skipped: results written "
            "under a different engine version)"
        )
    return "\n\n".join(blocks)


def _cmd_analyze_figures(args: argparse.Namespace) -> str:
    store_root = _resolve_store(args, "analyze figures")
    out_dir = args.out or str(Path(store_root) / "figures")
    try:
        report = render_catalog(
            store_root,
            out_dir,
            formats=tuple(dict.fromkeys(args.formats)),
            only=tuple(args.only) if args.only else None,
        )
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}") from None
    lines = [f"rendered {len(report.written)} file(s) into {out_dir}"]
    lines.extend(f"  {path}" for path in report.written)
    lines.extend(f"skipped: {note}" for note in report.skipped)
    if report.stale_manifests:
        lines.append(
            f"({report.stale_manifests} stale manifest(s) skipped)"
        )
    if not report.written:
        raise SystemExit(
            "\n".join(lines)
            + "\nrepro: error: nothing could be rendered"
        )
    return "\n".join(lines)


def _cmd_analyze_compare(args: argparse.Namespace) -> str:
    for root in (args.store_a, args.store_b):
        if not Path(root).is_dir():
            raise SystemExit(f"repro: error: no result store at {root}")
    thresholds = dict(args.threshold) if args.threshold else None
    try:
        report = compare_stores(
            args.store_a,
            args.store_b,
            metrics=tuple(dict.fromkeys(args.metrics)),
            thresholds=thresholds,
            default_threshold=args.default_threshold,
        )
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}") from None
    # A gate that found nothing to compare must fail, not pass: "OK
    # over zero cells" is exactly what a typo'd store path, a store
    # with no manifests, or two stores swept with disjoint seed sets
    # (every verdict incomparable) would silently produce.
    if not report.verdicts:
        raise SystemExit(
            "repro: error: the stores share no comparable cells "
            f"({len(report.only_in_a)} cell(s) only in A, "
            f"{len(report.only_in_b)} only in B); are both paths "
            "manifested result stores for the same sweep?"
        )
    if all(v.status == "incomparable" for v in report.verdicts):
        raise SystemExit(
            "repro: error: every shared cell is incomparable (no "
            "paired non-NaN seeds); were the stores swept with "
            "disjoint seed sets?"
        )
    if args.json:
        output = json.dumps(
            report.payload(), sort_keys=True, indent=1, allow_nan=False
        )
    else:
        output = format_compare_table(report)
    if not report.ok:
        # The verdict must reach both humans and scripts: print the
        # table/payload, then fail the process.
        print(output)
        raise SystemExit(1)
    return output


def _cmd_analyze(args: argparse.Namespace) -> str:
    if args.analyze_command == "series":
        return _cmd_analyze_series(args)
    if args.analyze_command == "figures":
        return _cmd_analyze_figures(args)
    if args.analyze_command == "compare":
        return _cmd_analyze_compare(args)
    raise AssertionError(
        f"unhandled analyze command {args.analyze_command!r}"
    )  # pragma: no cover


def _audit_bundle_payloads(path: str) -> list[dict]:
    """Report payloads for every audit shard at ``path`` (file or dir)."""
    target = Path(path)
    if target.is_dir():
        manifests = audit_reports.find_shards(target)
        if not manifests:
            raise audit_reports.AuditReadError(
                f"no audit shards under {target}"
            )
        return [
            audit_reports.report_payload(audit_reports.load_shard(manifest))
            for manifest in manifests
        ]
    return [audit_reports.report_payload(audit_reports.load_shard(target))]


def _write_audit_json(out: str, payload: dict) -> None:
    """Deterministic JSON render: double renders are byte-identical."""
    text = json.dumps(payload, sort_keys=True, indent=1, allow_nan=False)
    Path(out).write_text(text + "\n", encoding="utf-8")


def _cmd_audit(args: argparse.Namespace) -> str:
    try:
        if args.audit_command == "report":
            shard = audit_reports.resolve_shard(
                args.path, method=args.method
            )
            payload = audit_reports.report_payload(shard)
            lines = [audit_reports.format_report(payload)]
            if args.json is not None:
                _write_audit_json(args.json, payload)
                lines.append(f"payload written to {args.json}")
            return "\n".join(lines)
        if args.audit_command == "explain":
            shard = audit_reports.resolve_shard(
                args.path, method=args.method
            )
            payload = audit_reports.explain_payload(shard, args.index)
            return audit_reports.format_explain(payload)
        if args.audit_command == "diff":
            shard_a = audit_reports.resolve_shard(
                args.path_a, method=args.method_a
            )
            shard_b = audit_reports.resolve_shard(
                args.path_b, method=args.method_b
            )
            payload = audit_reports.diff_payload(shard_a, shard_b)
            lines = [audit_reports.format_diff(payload)]
            if args.json is not None:
                _write_audit_json(args.json, payload)
                lines.append(f"payload written to {args.json}")
            return "\n".join(lines)
    except (OSError, audit_reports.AuditReadError) as error:
        raise SystemExit(f"repro: error: {error}") from None
    raise AssertionError(
        f"unhandled audit command {args.audit_command!r}"
    )  # pragma: no cover


def _cmd_telemetry(args: argparse.Namespace) -> str:
    try:
        if args.telemetry_command == "report":
            report = telemetry_report(args.events_dir)
            if args.json:
                return json.dumps(report, sort_keys=True, indent=1)
            return format_telemetry_report(report)
        if args.telemetry_command == "merge":
            summary = merge_events(args.events_dir, out=args.out)
            if args.json:
                return json.dumps(summary, sort_keys=True, indent=1)
            return (
                f"merged {summary['events']} events from "
                f"{summary['files']} files into {summary['out']} "
                f"(stream digest {summary['digest']})"
            )
        if args.telemetry_command == "timeline":
            timeline = timeline_from_path(args.path)
            if args.json:
                return json.dumps(timeline, sort_keys=True, indent=1)
            return format_timeline(timeline)
        if args.telemetry_command == "hotspots":
            try:
                hotspots = collect_hotspots(args.profile_dir, top=args.top)
            except FileNotFoundError as error:
                raise SystemExit(f"repro: error: {error}") from None
            if args.json:
                return json.dumps(hotspots, sort_keys=True, indent=1)
            return format_hotspots(hotspots)
        if args.telemetry_command == "bundle":
            bench = None
            if args.bench is not None:
                try:
                    with open(args.bench, encoding="utf-8") as handle:
                        bench = json.load(handle)
                except (OSError, json.JSONDecodeError) as error:
                    raise SystemExit(
                        f"repro: error: cannot read bench baseline "
                        f"{args.bench}: {error}"
                    ) from None
            bench_history = None
            if args.bench_history is not None:
                try:
                    bench_history = load_history(args.bench_history)
                except OSError as error:
                    raise SystemExit(
                        f"repro: error: cannot read bench history "
                        f"{args.bench_history}: {error}"
                    ) from None
            audit = None
            if args.audit_shards is not None:
                try:
                    audit = _audit_bundle_payloads(args.audit_shards)
                except audit_reports.AuditReadError as error:
                    raise SystemExit(
                        f"repro: error: {error}"
                    ) from None
            path = write_bundle(
                args.out,
                load_stream(args.path),
                bench=bench,
                title=args.title,
                bench_history=bench_history,
                audit=audit,
            )
            return f"bundle written to {path}"
    except (OSError, TelemetryReadError) as error:
        raise SystemExit(f"repro: error: {error}") from None
    raise AssertionError(
        f"unhandled telemetry command {args.telemetry_command!r}"
    )  # pragma: no cover


def _cmd_perf(args: argparse.Namespace) -> str:
    if getattr(args, "perf_command", None) == "history":
        try:
            rows = load_history(args.file)
        except OSError as error:
            raise SystemExit(
                f"repro: error: cannot read history {args.file}: {error}"
            ) from None
        if args.json:
            return json.dumps(rows, sort_keys=True, indent=1)
        return format_history(rows)
    report = run_perf(
        quick=args.quick, repeats=args.repeats, phases=not args.no_phases
    )
    lines = [format_report(report)]
    if args.history:
        append_history(report, args.history)
        lines.append(f"history row appended to {args.history}")
    if args.profile:
        lines.append("")
        lines.append(f"cProfile top {args.profile} (captive_small/sqlb):")
        lines.append(profile_run(top=args.profile))
    if args.out:
        write_report(report, args.out)
        lines.append(f"report written to {args.out}")
    if args.check:
        try:
            baseline = load_report(args.check)
        except (OSError, json.JSONDecodeError) as error:
            raise SystemExit(
                f"repro: error: cannot read baseline {args.check}: {error}"
            ) from None
        problems = compare_reports(
            report, baseline, tolerance=args.tolerance
        )
        if problems:
            print("\n".join(lines))
            raise SystemExit(
                "repro: perf regression against "
                f"{args.check}:\n  " + "\n  ".join(problems)
            )
        lines.append(
            f"no regression against {args.check} "
            f"(tolerance {args.tolerance:.0%})"
        )
    return "\n".join(lines)


def _cmd_sweep_report(args: argparse.Namespace) -> str:
    spec = _spec_from_args(args)
    summaries = sweep_summary(spec, executor=get_default_executor())
    header = (
        f"# sweep: {spec.name}   spec: {spec.spec_hash()}   "
        f"scale: {spec.scale}   seeds: {len(spec.seeds)}"
    )
    return header + "\n" + format_sweep_table(summaries)


def _cmd_sweep(args: argparse.Namespace) -> str:
    if args.sweep_command == "run":
        _configure_executor(args)
        return _cmd_sweep_run(args)
    if args.sweep_command == "status":
        return _cmd_sweep_status(args)
    if args.sweep_command == "merge":
        return _cmd_sweep_merge(args)
    if args.sweep_command == "report":
        _configure_executor(args)
        return _cmd_sweep_report(args)
    raise AssertionError(
        f"unhandled sweep command {args.sweep_command!r}"
    )  # pragma: no cover


def _configure_executor(args: argparse.Namespace) -> None:
    """Install the default executor the simulation commands run through.

    Flags win; unset flags fall back to the ``REPRO_WORKERS`` /
    ``REPRO_CACHE_DIR`` environment knobs, symmetrically.
    """
    if getattr(args, "workers", None) is not None:
        workers = args.workers
    else:
        try:
            workers = workers_from_environment()
        except ValueError as error:
            raise SystemExit(f"repro: error: {error}") from None
    configure_default_executor(
        workers=workers, cache_dir=_resolve_cache_dir(args)
    )
    telemetry_dir = getattr(args, "telemetry", None)
    if telemetry_dir is not None:
        # Through the environment as well as directly: pool children
        # (and any subprocess this command spawns) resolve their own
        # Telemetry instance from $REPRO_TELEMETRY_DIR on first use.
        os.environ[TELEMETRY_DIR_ENV] = str(telemetry_dir)
        configure_telemetry(telemetry_dir)
    audit_dir = getattr(args, "audit", None)
    if audit_dir is not None:
        # Same split as telemetry: environment for pool children and
        # spawned subprocesses, direct configure for this process.
        os.environ[AUDIT_DIR_ENV] = str(audit_dir)
        configure_audit(audit_dir)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "methods":
        print(_cmd_methods())
    elif args.command == "run":
        _configure_executor(args)
        print(_cmd_run(args))
    elif args.command == "figure":
        _configure_executor(args)
        print(_cmd_figure(args))
    elif args.command == "sweep":
        print(_cmd_sweep(args))
    elif args.command == "queue":
        print(_cmd_queue(args))
    elif args.command == "store":
        print(_cmd_store(args))
    elif args.command == "trace":
        _configure_executor(args)
        print(_cmd_trace(args))
    elif args.command == "analyze":
        print(_cmd_analyze(args))
    elif args.command == "telemetry":
        print(_cmd_telemetry(args))
    elif args.command == "audit":
        print(_cmd_audit(args))
    elif args.command == "perf":
        print(_cmd_perf(args))
    return 0
