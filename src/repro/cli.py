"""Command-line interface.

Three subcommands::

    python -m repro methods
        List the registered allocation methods.

    python -m repro run --method sqlb --workload 0.8 --duration 400
        Run one simulation and print a summary (add --autonomous to let
        participants leave, --paper-scale for the Table 2 environment).

    python -m repro figure 4a
        Regenerate one of the paper's figures/tables (4a-4i, 5a-5c, 6,
        table3) and print the same series/rows the paper reports.

Both simulation-running subcommands accept ``--cache-dir PATH``
(persist completed runs to a disk store so re-invocations skip
simulation) and ``--no-cache`` (ignore any configured store, including
``$REPRO_CACHE_DIR``); ``figure`` additionally accepts ``--workers N``
to fan its many simulation jobs out over a process pool (``run``
executes a single job, so a pool would not help it).
"""

from __future__ import annotations

import argparse
import os
from collections import Counter

from repro.allocation.registry import PAPER_METHODS, available_methods
from repro.experiments.executor import (
    CACHE_DIR_ENV,
    configure_default_executor,
    get_default_executor,
    workers_from_environment,
)
from repro.experiments.autonomy import (
    consumer_departure_curve,
    departure_reason_table,
    departure_response_times,
    provider_departure_curve,
)
from repro.experiments.captive import (
    DEFAULT_WORKLOADS,
    FIGURE4_SERIES,
    captive_ramp,
    response_time_curve,
)
from repro.experiments.report import (
    format_curve_table,
    format_reason_table,
    format_series_table,
)
from repro.simulation.config import (
    DepartureRules,
    WorkloadSpec,
    paper_config,
    scaled_config,
)

__all__ = ["build_parser", "main"]

FIGURES = tuple(FIGURE4_SERIES) + ("4i", "5a", "5b", "5c", "6", "table3")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SQLB (VLDB 2007) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("methods", help="list registered allocation methods")

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(
                f"must be a positive integer, got {value}"
            )
        return value

    def add_cache_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--cache-dir",
            default=None,
            help="persist completed runs to this result-store directory "
            "(defaults to $REPRO_CACHE_DIR when set)",
        )
        command.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the persistent result store entirely",
        )

    run = sub.add_parser("run", help="run one simulation")
    # `run` executes exactly one job, so a worker pool would be a no-op;
    # only the cache flags apply here.
    add_cache_options(run)
    run.add_argument("--method", default="sqlb", choices=available_methods())
    run.add_argument(
        "--workload",
        type=float,
        default=0.8,
        help="fixed workload as a fraction of total system capacity",
    )
    run.add_argument("--duration", type=float, default=400.0)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--autonomous",
        action="store_true",
        help="allow participants to leave (Section 6.3.2 thresholds)",
    )
    run.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the exact Table 2 environment (slow)",
    )

    figure = sub.add_parser(
        "figure", help="regenerate one of the paper's figures/tables"
    )
    figure.add_argument(
        "--workers",
        type=positive_int,
        default=None,
        help="process-pool size for the figure's simulation jobs "
        "(default: $REPRO_WORKERS, else 1 = serial)",
    )
    add_cache_options(figure)
    figure.add_argument("which", choices=FIGURES)
    figure.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[11],
        help="repetition seeds (the paper averages 10)",
    )
    return parser


def _cmd_methods() -> str:
    lines = ["registered allocation methods:"]
    for name in available_methods():
        marker = " (paper)" if name in PAPER_METHODS else ""
        lines.append(f"  {name}{marker}")
    return "\n".join(lines)


def _cmd_run(args: argparse.Namespace) -> str:
    if args.paper_scale:
        config = paper_config(workload=WorkloadSpec.fixed(args.workload))
    else:
        config = scaled_config(
            duration=args.duration,
            # Keep a post-warmup measurement window even on short runs.
            warmup_time=min(150.0, args.duration / 4.0),
            workload=WorkloadSpec.fixed(args.workload),
        )
    if args.autonomous:
        config = config.with_departures(DepartureRules.autonomous(True))
    result = get_default_executor().run_one(
        config, args.method, seed=args.seed
    )

    lines = [
        f"method: {result.method_name}   seed: {result.seed}   "
        f"workload: {args.workload:.0%}",
        f"queries issued/served/unserved: {result.queries_issued}/"
        f"{result.queries_served}/{result.queries_unserved}",
        f"response time (post-warmup mean): "
        f"{result.response_time_post_warmup:.2f} s",
        f"provider satisfaction (intentions): "
        f"{result.series('provider_intention_satisfaction_mean')[-1]:.3f}",
        f"provider alloc. satisfaction (preferences): "
        f"{result.series('provider_preference_allocation_satisfaction_mean')[-1]:.3f}",
        f"consumer alloc. satisfaction: "
        f"{result.series('consumer_allocation_satisfaction_mean')[-1]:.3f}",
    ]
    if args.autonomous:
        providers = Counter(
            d.reason for d in result.departures if d.kind == "provider"
        )
        consumers = sum(
            1 for d in result.departures if d.kind == "consumer"
        )
        lines.append(
            f"departures: providers {dict(providers) or 0}, "
            f"consumers {consumers}"
        )
    return "\n".join(lines)


def _cmd_figure(args: argparse.Namespace) -> str:
    seeds = tuple(args.seeds)
    which = args.which
    if which in FIGURE4_SERIES:
        family = captive_ramp(seeds=seeds)
        series = FIGURE4_SERIES[which]
        times = next(iter(family.values())).times()
        return format_series_table(
            times,
            {m: family[m].series(series) for m in family},
            value_label=f"Figure {which}: {series}",
        )
    if which == "4i":
        curve = response_time_curve(seeds=seeds)
        return format_curve_table(
            curve.workloads,
            curve.response_times,
            value_label="Figure 4(i): response time (s), captive",
        )
    if which in ("5a", "5b"):
        curve = departure_response_times(
            include_overutilization=(which == "5b"), seeds=seeds
        )
        return format_curve_table(
            curve.workloads,
            curve.response_times,
            value_label=f"Figure {which}: response time (s), autonomous",
        )
    if which == "5c":
        curve = provider_departure_curve(seeds=seeds)
        return format_curve_table(
            DEFAULT_WORKLOADS,
            {m: 100.0 * v for m, v in curve.items()},
            value_label="Figure 5(c): provider departures (%)",
            precision=1,
        )
    if which == "6":
        curve = consumer_departure_curve(seeds=seeds)
        return format_curve_table(
            DEFAULT_WORKLOADS,
            {m: 100.0 * v for m, v in curve.items()},
            value_label="Figure 6: consumer departures (%)",
            precision=1,
        )
    if which == "table3":
        return format_reason_table(departure_reason_table(seeds=seeds))
    raise AssertionError(f"unhandled figure {which!r}")  # pragma: no cover


def _configure_executor(args: argparse.Namespace) -> None:
    """Install the default executor the simulation commands run through.

    Flags win; unset flags fall back to the ``REPRO_WORKERS`` /
    ``REPRO_CACHE_DIR`` environment knobs, symmetrically.
    """
    if getattr(args, "workers", None) is not None:
        workers = args.workers
    else:
        try:
            workers = workers_from_environment()
        except ValueError as error:
            raise SystemExit(f"repro: error: {error}") from None
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = args.cache_dir
    else:
        cache_dir = os.environ.get(CACHE_DIR_ENV) or None
    configure_default_executor(workers=workers, cache_dir=cache_dir)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "methods":
        print(_cmd_methods())
    elif args.command == "run":
        _configure_executor(args)
        print(_cmd_run(args))
    elif args.command == "figure":
        _configure_executor(args)
        print(_cmd_figure(args))
    return 0
