"""Matchmaking: finding the candidate set ``P_q`` (Section 2).

The paper assumes a sound and complete matchmaking procedure exists
(citing [11, 14]) and keeps it out of scope; its experiments further
assume every provider can perform every query.  We provide the same
abstraction so the allocation layer never hard-codes that assumption:

* :class:`UniversalMatchmaker` — the paper's experimental setting: every
  *active* provider can treat every query.
* :class:`CapabilityMatchmaker` — a per-query-class capability matrix,
  useful for example applications where providers specialise.

Both only ever return active (non-departed) providers, and the engine
treats an empty candidate set as an unserved query (with autonomy, the
whole population can leave).
"""

from __future__ import annotations

import numpy as np

from repro.simulation.queries import Query

__all__ = ["CapabilityMatchmaker", "Matchmaker", "UniversalMatchmaker"]


class Matchmaker:
    """Interface: map a query to the provider indices able to treat it."""

    #: True when :meth:`candidates` is a pure function of the query's
    #: *class* and the active mask.  The engine then caches candidate
    #: sets per query class between departures (the only events that
    #: change the mask).  A matchmaker depending on anything else — the
    #: issuing consumer, time, per-query content — must leave this False
    #: to stay on the uncached path.
    cacheable_by_class: bool = False

    def candidates(self, query: Query, active: np.ndarray) -> np.ndarray:
        """The set ``P_q`` restricted to currently active providers.

        Parameters
        ----------
        query:
            The incoming query.
        active:
            Boolean mask over the provider population.

        Returns
        -------
        numpy.ndarray
            Sorted provider indices; possibly empty.
        """
        raise NotImplementedError


class UniversalMatchmaker(Matchmaker):
    """Every active provider can treat every query (Section 6.1)."""

    cacheable_by_class = True

    def candidates(self, query: Query, active: np.ndarray) -> np.ndarray:
        return np.flatnonzero(active)


class CapabilityMatchmaker(Matchmaker):
    """Providers declare, per query class, whether they can treat it.

    Parameters
    ----------
    capability:
        Boolean matrix of shape ``(n_providers, n_query_classes)``;
        ``capability[p, k]`` means provider ``p`` can treat class ``k``.
        Sound and complete by construction: the returned set is exactly
        the capable subset, no false positives or negatives.
    """

    cacheable_by_class = True

    def __init__(self, capability: np.ndarray) -> None:
        capability = np.asarray(capability, dtype=bool)
        if capability.ndim != 2:
            raise ValueError(
                f"capability must be 2-D, got shape {capability.shape}"
            )
        if not capability.any(axis=0).all():
            raise ValueError(
                "every query class needs at least one capable provider "
                "(the paper only considers feasible queries)"
            )
        self._capability = capability

    def candidates(self, query: Query, active: np.ndarray) -> np.ndarray:
        if not 0 <= query.klass < self._capability.shape[1]:
            raise ValueError(f"unknown query class {query.klass}")
        mask = self._capability[:, query.klass] & active
        return np.flatnonzero(mask)
