"""Provider reputation (Section 5.1 of the paper).

Reputation ``rep(p) ∈ [-1, 1]`` enters the consumer-intention formula
(Definition 7) weighted by ``1 - υ``.  The paper treats reputation as an
external signal whose origin is out of scope ("it is taken into account
as much as participants consider it important"), so this module provides
a small registry that can either hold static values or aggregate
consumer feedback as a decayed running mean — enough to exercise the
``υ`` trade-off in Definition 7 and the reputation example application.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ReputationRegistry"]


class ReputationRegistry:
    """Holds and updates one reputation value per provider.

    Parameters
    ----------
    n_providers:
        Population size.
    initial:
        Initial reputation values; scalar or per-provider array.  The
        default 0.5 is a mildly positive prior, keeping Definition 7's
        positive branch reachable for liked providers.
    feedback_weight:
        Exponential-moving-average weight of a new rating; 0 freezes the
        registry (static reputations).
    """

    def __init__(
        self,
        n_providers: int,
        initial: float | np.ndarray = 0.5,
        feedback_weight: float = 0.05,
    ) -> None:
        if n_providers <= 0:
            raise ValueError(f"n_providers must be positive, got {n_providers}")
        if not 0.0 <= feedback_weight <= 1.0:
            raise ValueError(
                f"feedback_weight must be in [0, 1], got {feedback_weight}"
            )
        values = np.broadcast_to(
            np.asarray(initial, dtype=float), (n_providers,)
        ).copy()
        if values.min() < -1.0 or values.max() > 1.0:
            raise ValueError("reputations must lie in [-1, 1]")
        self._values = values
        self._weight = float(feedback_weight)

    @property
    def values(self) -> np.ndarray:
        """Current reputations (live view; treat as read-only)."""
        return self._values

    def of(self, providers: np.ndarray) -> np.ndarray:
        """Reputations of a provider subset."""
        return self._values[providers]

    def rate(self, provider: int, rating: float) -> None:
        """Fold one consumer rating in ``[-1, 1]`` into the reputation."""
        if not -1.0 <= rating <= 1.0:
            raise ValueError(f"rating must be in [-1, 1], got {rating}")
        if self._weight == 0.0:
            return
        current = self._values[provider]
        self._values[provider] = (
            (1.0 - self._weight) * current + self._weight * rating
        )

    def rate_many(self, providers: np.ndarray, ratings: np.ndarray) -> None:
        """Vectorised :meth:`rate` over distinct providers."""
        if self._weight == 0.0:
            return
        ratings = np.asarray(ratings, dtype=float)
        if ratings.min() < -1.0 or ratings.max() > 1.0:
            raise ValueError("ratings must lie in [-1, 1]")
        current = self._values[providers]
        self._values[providers] = (
            (1.0 - self._weight) * current + self._weight * ratings
        )
