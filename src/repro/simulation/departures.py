"""Participant departures (Section 6.3.2 of the paper).

Autonomy is the paper's central premise: dissatisfied participants leave.
The evaluation operationalises this with thresholds:

* A **consumer** leaves, by dissatisfaction, when its satisfaction drops
  below its adequation — i.e. when the allocation method punishes it.
* A **provider** leaves by *dissatisfaction* when
  ``δs(p) < δa(p) - 0.15``; by *starvation* when its utilisation falls
  below 20 % of the optimal utilisation; by *overutilisation* when it
  exceeds 220 % of the optimal.  The optimal utilisation equals the
  current workload fraction.

Departures are checked periodically after a warmup, and each departure
is recorded with the provider's three heterogeneity classes so the
Table 3 breakdown (reason × class dimension) can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.config import DepartureRules
from repro.simulation.participants import ConsumerPool, ProviderPool

__all__ = ["DepartureRecord", "DeparturePolicy"]

#: Reason priority when several thresholds trip at once: the paper's
#: narrative treats dissatisfaction as the primary signal, starvation and
#: overutilisation as load pathologies.
_REASON_ORDER = ("dissatisfaction", "starvation", "overutilization")


@dataclass(frozen=True)
class DepartureRecord:
    """One participant leaving the system.

    ``interest_class`` / ``adaptation_class`` / ``capacity_class`` are
    band indices (0=low, 1=medium, 2=high) for providers and ``-1`` for
    consumers (only the interest dimension is meaningful there, and the
    paper does not break consumers down by class).
    """

    kind: str  # "consumer" | "provider"
    index: int
    time: float
    reason: str
    interest_class: int = -1
    adaptation_class: int = -1
    capacity_class: int = -1


class DeparturePolicy:
    """Applies the Section 6.3.2 thresholds to the live populations."""

    def __init__(
        self,
        rules: DepartureRules,
        interest_classes: np.ndarray,
        adaptation_classes: np.ndarray,
        capacity_classes: np.ndarray,
        warm_start_entries: int,
    ) -> None:
        self._rules = rules
        self._interest = interest_classes
        self._adaptation = adaptation_classes
        self._capacity = capacity_classes
        self._warm_start = int(warm_start_entries)
        # Consecutive-trip counters implementing the persistence rule.
        self._consumer_streak: np.ndarray | None = None
        self._provider_streaks: dict[str, np.ndarray] = {}

    @property
    def rules(self) -> DepartureRules:
        return self._rules

    def check_consumers(
        self, now: float, consumers: ConsumerPool
    ) -> list[DepartureRecord]:
        """Consumers whose satisfaction fell below their adequation."""
        if not self._rules.consumers_may_leave:
            return []
        active = consumers.active
        # Require a full-enough memory before judging: a handful of
        # queries is not "the long run" the model reasons about.
        informed = consumers.queries_remembered() >= 10
        punished = consumers.satisfactions() < consumers.adequations()
        tripping = active & informed & punished
        if self._consumer_streak is None:
            self._consumer_streak = np.zeros(consumers.size, dtype=np.int64)
        elif self._consumer_streak.size != consumers.size:
            # The streaks are positional: if the pool ever resized, every
            # index would silently point at a different consumer and the
            # departure attribution would be garbage.  Pools never resize
            # today (departure flips the activity mask), so this is a
            # loud guard, not a supported path.
            raise ValueError(
                f"consumer streak array tracks {self._consumer_streak.size} "
                f"consumers but the pool now holds {consumers.size}; "
                "DeparturePolicy does not support resizing pools"
            )
        self._consumer_streak[~tripping] = 0
        self._consumer_streak[tripping] += 1
        leavers = np.flatnonzero(
            self._consumer_streak >= self._rules.consumer_persistence
        )
        records = []
        for consumer in leavers:
            consumers.deactivate(int(consumer))
            records.append(
                DepartureRecord(
                    kind="consumer",
                    index=int(consumer),
                    time=now,
                    reason="dissatisfaction",
                )
            )
        return records

    def check_providers(
        self,
        now: float,
        providers: ProviderPool,
        utilization: np.ndarray,
        optimal_utilization: float,
    ) -> list[DepartureRecord]:
        """Providers tripping any enabled threshold, with reasons."""
        reasons = self._rules.provider_reasons
        if not reasons:
            return []
        active = providers.active
        informed = providers.proposed_counts() >= self._warm_start + 10

        trip = {}
        if "dissatisfaction" in reasons:
            basis = self._rules.provider_basis
            trip["dissatisfaction"] = providers.satisfactions(basis) < (
                providers.adequations(basis) - self._rules.dissatisfaction_margin
            )
        if "starvation" in reasons:
            trip["starvation"] = utilization < (
                self._rules.starvation_fraction * optimal_utilization
            )
        if "overutilization" in reasons:
            threshold = max(
                self._rules.overutilization_fraction * optimal_utilization,
                self._rules.overutilization_floor,
            )
            trip["overutilization"] = utilization > threshold

        # Persistence: a reason only counts once it has tripped at this
        # many consecutive checks; a clean check resets its streak.
        persistent = {}
        for name, mask in trip.items():
            streak = self._provider_streaks.setdefault(
                name, np.zeros(providers.size, dtype=np.int64)
            )
            if streak.size != providers.size:
                # Same positional-identity guard as the consumer streaks:
                # a resized pool would mis-attribute every reason in the
                # Table 3 breakdown.
                raise ValueError(
                    f"provider streak array for {name!r} tracks "
                    f"{streak.size} providers but the pool now holds "
                    f"{providers.size}; DeparturePolicy does not support "
                    "resizing pools"
                )
            tripping = active & informed & mask
            streak[~tripping] = 0
            streak[tripping] += 1
            persistent[name] = streak >= self._rules.persistence

        any_trip = np.zeros(providers.size, dtype=bool)
        for mask in persistent.values():
            any_trip |= mask
        leavers = np.flatnonzero(any_trip)

        records = []
        for provider in leavers:
            reason = next(
                name
                for name in _REASON_ORDER
                if name in persistent and persistent[name][provider]
            )
            providers.deactivate(int(provider))
            records.append(
                DepartureRecord(
                    kind="provider",
                    index=int(provider),
                    time=now,
                    reason=reason,
                    interest_class=int(self._interest[provider]),
                    adaptation_class=int(self._adaptation[provider]),
                    capacity_class=int(self._capacity[provider]),
                )
            )
        return records
