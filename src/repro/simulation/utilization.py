"""Sliding-window utilisation tracking (the paper's ``Ut(p)``).

The paper defines utilisation only informally — "how much [a provider]
is loaded w.r.t. its capacity" (Section 2), computed "as in [16]" — but
anchors it numerically: at a workload of 80 % of total system capacity,
the *optimal* utilisation of a provider is 0.8 (Section 6.3.2).  We
therefore measure, per provider,

    ``Ut(p) = units assigned to p within the last W seconds / (C_p · W)``

which satisfies the anchor exactly (a perfectly proportional allocation
at X % workload gives every provider ``Ut = X/100``) and exceeds 1 when
a provider is assigned more than it can absorb — the regime Definition 8
and Figure 4(g) need to express.

The window is discretised into bins so the tracker is O(providers) per
advance and O(assigned) per update, fully vectorised.
"""

from __future__ import annotations

import numpy as np

__all__ = ["UtilizationTracker"]


class UtilizationTracker:
    """Binned sliding-window assigned-work meter for all providers.

    Parameters
    ----------
    capacities:
        Per-provider capacity in treatment units per second.
    window:
        Window length ``W`` in simulated seconds.
    bins:
        Number of bins the window is split into; more bins give a
        smoother window at slightly higher advance cost.
    """

    def __init__(
        self, capacities: np.ndarray, window: float, bins: int
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if bins <= 0:
            raise ValueError(f"bins must be positive, got {bins}")
        capacities = np.asarray(capacities, dtype=float)
        if capacities.ndim != 1 or capacities.size == 0:
            raise ValueError("capacities must be a non-empty 1-D array")
        if capacities.min() <= 0:
            raise ValueError("capacities must be positive")
        self._capacities = capacities
        self._window = float(window)
        self._bins = int(bins)
        self._bin_width = self._window / self._bins
        self._work = np.zeros((capacities.size, self._bins), dtype=float)
        self._current_bin = 0
        self._bin_start = 0.0
        self._row_sums = np.zeros(capacities.size, dtype=float)
        # Identity-keyed cache for utilization_of: the engine passes the
        # same cached candidates array between departures, so the
        # capacity-times-window denominator gather is reused.
        self._cached_providers: np.ndarray | None = None
        self._cached_denominator: np.ndarray | None = None

    @property
    def window(self) -> float:
        """The window length ``W`` in seconds."""
        return self._window

    def advance(self, now: float) -> None:
        """Roll the window forward to simulation time ``now``.

        Bins older than ``W`` are dropped.  Time must not go backwards.
        """
        if now < self._bin_start:
            raise ValueError(
                f"time went backwards: {now} < bin start {self._bin_start}"
            )
        steps = int((now - self._bin_start) / self._bin_width)
        if steps <= 0:
            return
        if steps >= self._bins:
            # The whole window has aged out.
            self._work[:] = 0.0
            self._row_sums[:] = 0.0
            self._current_bin = 0
            self._bin_start += steps * self._bin_width
            return
        for _ in range(steps):
            self._current_bin = (self._current_bin + 1) % self._bins
            expired = self._work[:, self._current_bin]
            self._row_sums -= expired
            self._work[:, self._current_bin] = 0.0
        self._bin_start += steps * self._bin_width
        # Guard against drift pushing a sum slightly negative.
        np.maximum(self._row_sums, 0.0, out=self._row_sums)

    def assign(
        self,
        providers: np.ndarray,
        units: float | np.ndarray,
        assume_unique: bool = False,
    ) -> None:
        """Record ``units`` of work assigned now to each given provider.

        ``assume_unique=True`` lets a caller that guarantees distinct
        provider indices (the engine validates its selection) skip the
        duplicate-safe ``ufunc.at`` scatter for plain fancy-indexed
        accumulation, which adds identically for distinct indices.
        """
        providers = np.asarray(providers, dtype=np.int64)
        if providers.size == 0:
            return
        if assume_unique and np.ndim(units) == 0:
            if providers.size == 1:
                # Scalar path for single-provider assignments (q.n = 1).
                provider = providers[0]
                self._work[provider, self._current_bin] += units
                self._row_sums[provider] += units
            else:
                self._work[providers, self._current_bin] += units
                self._row_sums[providers] += units
            return
        units_arr = np.broadcast_to(
            np.asarray(units, dtype=float), providers.shape
        )
        if assume_unique:
            self._work[providers, self._current_bin] += units_arr
            self._row_sums[providers] += units_arr
        else:
            np.add.at(self._work[:, self._current_bin], providers, units_arr)
            np.add.at(self._row_sums, providers, units_arr)

    def utilization(self) -> np.ndarray:
        """Current ``Ut(p)`` for every provider (a fresh array)."""
        return self._row_sums / (self._capacities * self._window)

    def utilization_of(self, providers: np.ndarray) -> np.ndarray:
        """Current ``Ut(p)`` for a provider subset."""
        if providers is not self._cached_providers:
            self._cached_denominator = self._capacities[providers] * self._window
            self._cached_providers = providers
        return self._row_sums[providers] / self._cached_denominator

    def reset(self) -> None:
        """Clear all recorded work (keeps the clock position)."""
        self._work[:] = 0.0
        self._row_sums[:] = 0.0
