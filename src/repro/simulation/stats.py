"""Time-series collection for simulation runs.

The engine samples the Section 4 metrics at a fixed interval and stores
them here.  The collector is deliberately dumb — named scalar series
plus a shared time axis — so that experiments can postprocess without
knowing engine internals, and new series can be added without schema
changes.

Storage is numpy-backed: each series is a float64 buffer grown by
doubling, so appending a sample is an O(1) scalar store and reading a
series back is a slice copy — no Python ``list[float]`` round-trips.
This matters most for the persistent result store, which rebuilds a
collector from arrays on every warm cache hit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TimeSeriesCollector"]

#: Initial buffer capacity (samples); buffers double as they fill.
_INITIAL_CAPACITY = 64


class TimeSeriesCollector:
    """Accumulates named scalar series sampled over simulation time."""

    def __init__(self) -> None:
        self._length = 0
        self._capacity = 0
        self._times = np.empty(0, dtype=float)
        self._series: dict[str, np.ndarray] = {}

    @classmethod
    def from_arrays(
        cls, times: np.ndarray, series: dict[str, np.ndarray]
    ) -> "TimeSeriesCollector":
        """Rebuild a collector from a time axis plus named series arrays.

        The inverse of :meth:`times`/:meth:`as_dict`; used by the
        persistent result store to deserialize sampled runs.  Every
        series must align with the time axis.  The arrays are adopted
        wholesale (as float64 copies) — no per-element conversion.
        """
        collector = cls()
        times = np.asarray(times, dtype=float)
        converted: dict[str, np.ndarray] = {}
        for name, values in series.items():
            values = np.asarray(values, dtype=float)
            if values.shape != times.shape:
                raise ValueError(
                    f"series {name!r} has shape {values.shape}, "
                    f"expected {times.shape}"
                )
            converted[name] = values.copy()
        collector._times = times.astype(float, copy=True).reshape(-1)
        collector._series = converted
        collector._length = collector._times.size
        collector._capacity = collector._times.size
        return collector

    def __len__(self) -> int:
        return self._length

    @property
    def names(self) -> tuple[str, ...]:
        """Names of all series collected so far."""
        return tuple(self._series)

    def _grow(self) -> None:
        new_capacity = max(self._capacity * 2, _INITIAL_CAPACITY)
        times = np.empty(new_capacity, dtype=float)
        times[: self._length] = self._times[: self._length]
        self._times = times
        for name, values in self._series.items():
            grown = np.empty(new_capacity, dtype=float)
            grown[: self._length] = values[: self._length]
            self._series[name] = grown
        self._capacity = new_capacity

    def add_sample(self, time: float, values: dict[str, float]) -> None:
        """Record one synchronous snapshot of every series.

        All samples must carry the same keys; a new key appearing after
        the first sample would silently misalign, so it is rejected.
        """
        length = self._length
        if length and values.keys() != self._series.keys():
            unexpected = set(values) ^ set(self._series)
            raise ValueError(
                f"sample keys changed mid-run (difference: {sorted(unexpected)})"
            )
        if length and time < self._times[length - 1]:
            raise ValueError(
                f"samples must be chronological: {time} < "
                f"{self._times[length - 1]}"
            )
        if length == self._capacity:
            if not length:
                # First sample defines the schema.
                self._series = {
                    name: np.empty(0, dtype=float) for name in values
                }
            self._grow()
        self._times[length] = time
        series = self._series
        for name, value in values.items():
            series[name][length] = value
        self._length = length + 1

    def times(self) -> np.ndarray:
        """The shared time axis."""
        return self._times[: self._length].copy()

    def series(self, name: str) -> np.ndarray:
        """One named series aligned with :meth:`times`."""
        if name not in self._series:
            raise KeyError(
                f"unknown series {name!r}; available: {sorted(self._series)}"
            )
        return self._series[name][: self._length].copy()

    def as_dict(self) -> dict[str, np.ndarray]:
        """All series as arrays (copies), keyed by name."""
        return {name: self.series(name) for name in self._series}

    def last(self, name: str) -> float:
        """Most recent value of one series."""
        values = self._series.get(name)
        if values is None or not self._length:
            raise KeyError(f"series {name!r} has no samples")
        return float(values[self._length - 1])
