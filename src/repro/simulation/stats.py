"""Time-series collection for simulation runs.

The engine samples the Section 4 metrics at a fixed interval and stores
them here.  The collector is deliberately dumb — named scalar series
plus a shared time axis — so that experiments can postprocess without
knowing engine internals, and new series can be added without schema
changes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TimeSeriesCollector"]


class TimeSeriesCollector:
    """Accumulates named scalar series sampled over simulation time."""

    def __init__(self) -> None:
        self._times: list[float] = []
        self._series: dict[str, list[float]] = {}

    @classmethod
    def from_arrays(
        cls, times: np.ndarray, series: dict[str, np.ndarray]
    ) -> "TimeSeriesCollector":
        """Rebuild a collector from a time axis plus named series arrays.

        The inverse of :meth:`times`/:meth:`as_dict`; used by the
        persistent result store to deserialize sampled runs.  Every
        series must align with the time axis.
        """
        collector = cls()
        times = np.asarray(times, dtype=float)
        for name, values in series.items():
            values = np.asarray(values, dtype=float)
            if values.shape != times.shape:
                raise ValueError(
                    f"series {name!r} has shape {values.shape}, "
                    f"expected {times.shape}"
                )
        collector._times = [float(t) for t in times]
        collector._series = {
            name: [float(v) for v in np.asarray(values, dtype=float)]
            for name, values in series.items()
        }
        return collector

    def __len__(self) -> int:
        return len(self._times)

    @property
    def names(self) -> tuple[str, ...]:
        """Names of all series collected so far."""
        return tuple(self._series)

    def add_sample(self, time: float, values: dict[str, float]) -> None:
        """Record one synchronous snapshot of every series.

        All samples must carry the same keys; a new key appearing after
        the first sample would silently misalign, so it is rejected.
        """
        if self._times and set(values) != set(self._series):
            unexpected = set(values) ^ set(self._series)
            raise ValueError(
                f"sample keys changed mid-run (difference: {sorted(unexpected)})"
            )
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"samples must be chronological: {time} < {self._times[-1]}"
            )
        self._times.append(float(time))
        for name, value in values.items():
            self._series.setdefault(name, []).append(float(value))

    def times(self) -> np.ndarray:
        """The shared time axis."""
        return np.asarray(self._times, dtype=float)

    def series(self, name: str) -> np.ndarray:
        """One named series aligned with :meth:`times`."""
        if name not in self._series:
            raise KeyError(
                f"unknown series {name!r}; available: {sorted(self._series)}"
            )
        return np.asarray(self._series[name], dtype=float)

    def as_dict(self) -> dict[str, np.ndarray]:
        """All series as arrays (copies), keyed by name."""
        return {name: self.series(name) for name in self._series}

    def last(self, name: str) -> float:
        """Most recent value of one series."""
        values = self._series.get(name)
        if not values:
            raise KeyError(f"series {name!r} has no samples")
        return values[-1]
