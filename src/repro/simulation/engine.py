"""The mediator simulation engine.

A mono-mediator discrete-event simulation of the paper's evaluation
environment (Section 6.1): consumers issue queries in a Poisson process;
for each query the mediator gathers the candidate set, collects the
consumer's and providers' intentions (lines 2-5 of Algorithm 1), hands
the decision to the configured allocation method, and updates queues,
utilisation, and the satisfaction model.  Metrics are sampled on a fixed
grid; with autonomy enabled, departure thresholds are checked
periodically after a warmup.

Because provider service is deterministic (FIFO queues with known
capacity), query completions are computed at assignment time and the
event loop reduces to a single ordered pass over arrivals — no event
heap is needed, which keeps the pure-Python hot path tight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.allocation.base import AllocationMethod, AllocationRequest
from repro.allocation.registry import build_method
from repro.audit.recorder import get_audit
from repro.core.intentions import (
    consumer_intention_vector,
    provider_intention_vector,
)
from repro.model import metrics
from repro.model.consumer_profile import query_adequation, query_satisfaction
from repro.model.strategic import StrategicReporting
from repro.simulation.capacity import assign_capacities
from repro.simulation.config import SimulationConfig
from repro.simulation.departures import DeparturePolicy, DepartureRecord
from repro.simulation.faults import compile_fault_events
from repro.simulation.matchmaking import Matchmaker, UniversalMatchmaker
from repro.simulation.participants import ConsumerPool, ProviderPool
from repro.simulation.preferences import (
    build_consumer_preferences,
    build_provider_preferences,
)
from repro.simulation.queries import QueryFactory
from repro.simulation.queueing import ProviderQueues
from repro.simulation.reputation import ReputationRegistry
from repro.simulation.rng import RngFactory
from repro.simulation.stats import TimeSeriesCollector
from repro.simulation.utilization import UtilizationTracker
from repro.simulation.workload import PoissonArrivals
from repro.telemetry.registry import get_telemetry

__all__ = [
    "ENGINE_VERSION",
    "MediatorSimulation",
    "SimulationResult",
    "run_simulation",
]

#: Version tag of the simulation semantics.  The persistent result
#: store (``repro.experiments.store``) mixes this into its cache keys,
#: so bumping it invalidates every cached run.  Bump whenever a change
#: alters the numbers a simulation produces for the same
#: (config, method, seed) — not for pure refactors.
ENGINE_VERSION = "1"

#: Hot-path phases the telemetry layer times, in execution order.
#: ``arrival`` covers the consumer draw and query construction; the
#: other four partition :meth:`MediatorSimulation._dispatch`.
ENGINE_PHASES = (
    "arrival",
    "candidate_lookup",
    "scoring",
    "ranking",
    "log_push",
)

#: Feed the dispatch-latency quantile timer every Nth issued query.
#: The stride is a deterministic counter — never an RNG draw — so
#: sampling cannot perturb the simulation's random streams.
_DISPATCH_SAMPLE_STRIDE = 8


def _finite_values(values: np.ndarray) -> np.ndarray:
    """The finite entries of ``values`` (one ``isfinite`` scan).

    ``_sample`` needs both the mean and the fairness of several sampled
    vectors; sharing the compressed finite array between them halves the
    ``isfinite`` scans per sample.
    """
    return values[np.isfinite(values)]


def _mean_of_finite(finite: np.ndarray) -> float:
    """Mean of an already-compressed finite array; NaN when empty."""
    if finite.size == 0:
        return float("nan")
    return float(finite.mean())


def _fairness_of_finite(finite: np.ndarray) -> float:
    if finite.size == 0:
        return float("nan")
    return metrics.fairness(finite)


def _finite_mean(values: np.ndarray) -> float:
    """Mean over finite entries; NaN when none remain."""
    return _mean_of_finite(_finite_values(values))


def _finite_fairness(values: np.ndarray) -> float:
    return _fairness_of_finite(_finite_values(values))


@dataclass
class SimulationResult:
    """Everything one simulation run produced.

    Attributes
    ----------
    method_name, seed, config:
        Provenance of the run.
    collector:
        The sampled time series (see the engine's ``_sample`` for the
        series catalogue).
    departures:
        Every departure, in order, with reasons and provider classes.
    queries_issued / queries_served / queries_unserved:
        Issue counters.  Unserved means no active capable provider
        existed at arrival time (only possible with autonomy).
    response_time_mean / response_time_post_warmup:
        Consumer-observed response time averages over the whole run and
        over the post-warmup portion.
    final:
        Named end-of-run arrays (per-provider/consumer characteristics,
        classes, activity) for distributional analysis.
    initial_providers / initial_consumers:
        The run's initial population sizes, recorded explicitly so the
        departure fractions are always taken over the population the
        run actually started with (0 falls back to the config sizes for
        results built by hand).
    """

    method_name: str
    seed: int
    config: SimulationConfig
    collector: TimeSeriesCollector
    departures: list[DepartureRecord] = field(default_factory=list)
    queries_issued: int = 0
    queries_served: int = 0
    queries_unserved: int = 0
    response_time_mean: float = float("nan")
    response_time_post_warmup: float = float("nan")
    final: dict[str, np.ndarray] = field(default_factory=dict)
    initial_providers: int = 0
    initial_consumers: int = 0

    def times(self) -> np.ndarray:
        return self.collector.times()

    def series(self, name: str) -> np.ndarray:
        return self.collector.series(name)

    def _departure_fraction(self, kind: str, initial: int) -> float:
        departed = {d.index for d in self.departures if d.kind == kind}
        if not departed:
            return 0.0
        return len(departed) / initial

    def provider_departure_fraction(self) -> float:
        """Fraction of the run's *initial* provider population that left.

        Counts distinct providers (a participant can only leave once)
        over the population the run started with, so the fraction always
        agrees with ``1 - final["provider_active"].mean()``.
        """
        initial = self.initial_providers or self.config.n_providers
        return self._departure_fraction("provider", initial)

    def consumer_departure_fraction(self) -> float:
        """Fraction of the run's *initial* consumer population that left."""
        initial = self.initial_consumers or self.config.n_consumers
        return self._departure_fraction("consumer", initial)


class MediatorSimulation:
    """One configured run: an environment, a method, and a seed.

    Parameters
    ----------
    config:
        The environment (populations, workload, autonomy, ...).
    method:
        An :class:`~repro.allocation.base.AllocationMethod` instance or a
        registry name (``"sqlb"``, ``"capacity"``, ``"mariposa"``, ...).
    seed:
        Root seed; the run is fully deterministic given (config, method,
        seed).
    matchmaker:
        Candidate-set source; defaults to the paper's universal
        matchmaker (every provider can treat every query).
    recorder:
        Optional trace recorder (see :mod:`repro.simulation.trace`);
        when set, every issued query's (time, consumer, class) is
        recorded.  Recording observes the run without altering it.
    """

    def __init__(
        self,
        config: SimulationConfig,
        method: AllocationMethod | str,
        seed: int = 0,
        matchmaker: Matchmaker | None = None,
        recorder=None,
    ) -> None:
        self.config = config
        if isinstance(method, str):
            method = build_method(method, config)
        self.method = method
        self.seed = int(seed)
        self._matchmaker = matchmaker or UniversalMatchmaker()
        self._recorder = recorder

        rngs = RngFactory(seed)
        self._rng_environment = rngs.get("environment")
        self._rng_workload = rngs.get("workload")
        self._rng_provider_prefs = rngs.get("provider_preferences")
        self._rng_method = rngs.get("method")
        self._rng_queries = rngs.get("queries")
        # The adversarial dimensions request their streams only when
        # configured: an unconfigured feature must not shift the spawn
        # order of the five streams above (bit-identity with the
        # pre-fault engine), and both streams are consumed entirely at
        # setup, so stream *order* between the two is immaterial.
        self._fault_events = (
            ()
            if config.faults is None
            else compile_fault_events(
                config.faults,
                config.duration,
                config.n_providers,
                rngs.get("faults"),
            )
        )
        self._fault_cursor = 0
        self._fault_down: set[int] = set()
        self._strategic = (
            None
            if config.strategic is None
            else StrategicReporting(
                config.strategic, config.n_providers, rngs.get("strategic")
            )
        )

        # --- environment ---------------------------------------------
        self.capacity = assign_capacities(
            config.n_providers, config.capacity, self._rng_environment
        )
        self.consumer_prefs = build_consumer_preferences(
            config.n_consumers,
            config.n_providers,
            config.consumer_interest,
            self._rng_environment,
        )
        self.provider_prefs = build_provider_preferences(
            config.n_providers,
            len(config.query_classes.costs),
            config.provider_adaptation,
            config.provider_pref_mode,
            self._rng_provider_prefs,
        )
        self.reputation = ReputationRegistry(
            config.n_providers,
            initial=self._rng_environment.uniform(
                0.05, 1.0, config.n_providers
            ),
            feedback_weight=0.0,
        )

        # --- live state ------------------------------------------------
        self.consumers = ConsumerPool(
            config.n_consumers,
            config.consumer_memory,
            config.initial_satisfaction,
        )
        self.providers = ProviderPool(
            config.n_providers,
            config.provider_memory,
            config.initial_satisfaction,
            warm_start_entries=config.warm_start_entries,
        )
        self.queues = ProviderQueues(self.capacity.rates)
        self.utilization = UtilizationTracker(
            self.capacity.rates,
            config.utilization_window,
            config.utilization_bins,
        )
        self._departure_policy = DeparturePolicy(
            config.departures,
            interest_classes=self.consumer_prefs.interest_classes,
            adaptation_classes=self.provider_prefs.adaptation_classes,
            capacity_classes=self.capacity.classes,
            warm_start_entries=config.warm_start_entries,
        )
        self._factory = QueryFactory(
            config.query_classes, config.queries_per_request, self._rng_queries
        )

        # --- hot-path caches and scratch buffers ------------------------
        # Candidate sets are constant between departures (the active mask
        # only changes in _check_departures), so they are cached per query
        # class and invalidated by comparing pool epochs.  Only matchmakers
        # that declare themselves a pure function of (query class, active
        # mask) participate — a custom matchmaker depending on anything
        # else stays on the uncached path.
        self._matchmaker_cacheable = bool(
            getattr(self._matchmaker, "cacheable_by_class", False)
        )
        self._candidate_cache: dict[int, np.ndarray] = {}
        self._candidate_epoch = -1
        # Per-query scratch reused across arrivals so the hot loop stops
        # allocating full-population intermediates (the ring log copies
        # what it stores, so reuse is safe).
        self._performed_scratch = np.zeros(config.n_providers, dtype=bool)
        self._ci_clip_scratch = np.empty(config.n_providers, dtype=float)
        self._pi_clip_scratch = np.empty(config.n_providers, dtype=float)

        # --- telemetry --------------------------------------------------
        # Phase accumulators are plain float sums, allocated only when a
        # registry is active; every hot-path mark is gated on a single
        # ``is not None`` check, so disabled runs skip the clock reads
        # entirely.  The cache tallies below are unconditional plain-int
        # arithmetic: cheap, and they never feed back into the run.
        self._telemetry = get_telemetry()
        self._phase_acc: dict[str, float] | None = (
            dict.fromkeys(ENGINE_PHASES, 0.0)
            if self._telemetry is not None
            else None
        )
        self._run_span: int | None = None
        self._run_started = 0.0
        self._dispatch_stride = 0
        self._candidate_hits = 0
        self._candidate_misses = 0

        # --- decision audit ---------------------------------------------
        # Same discipline as telemetry: resolved once per engine, every
        # hot-path hook behind a single ``is not None`` check, no RNG
        # stream touched, no arithmetic reordered — the recorder reads
        # copies of the per-query vectors only after the method has
        # chosen, so audited runs stay bit-identical to unaudited ones.
        self._audit = get_audit()
        if self._audit is not None:
            self._audit.begin_run(
                method=self.method.name,
                seed=self.seed,
                capacity_rates=self.capacity.rates,
                n_classes=len(config.query_classes.costs),
                epsilon=config.epsilon,
                fixed_omega=config.fixed_omega,
            )

        # --- accounting -------------------------------------------------
        self._collector = TimeSeriesCollector()
        self._departures: list[DepartureRecord] = []
        # Running per-kind counts so sampling never rescans the full
        # departure list (that scan was O(samples × departures)).
        self._provider_departure_count = 0
        self._consumer_departure_count = 0
        self._queries_issued = 0
        self._queries_served = 0
        self._queries_unserved = 0
        self._response_sum = 0.0
        self._response_count = 0
        self._response_sum_post_warmup = 0.0
        self._response_count_post_warmup = 0
        self._interval_response_sum = 0.0
        self._interval_response_count = 0

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the full horizon and return the run's results."""
        config = self.config
        self.method.reset()
        if self._telemetry is not None:
            self._run_span = self._telemetry.span_open("run", self.method.name)
            self._run_started = perf_counter()
        if config.workload.kind == "trace":
            return self._run_replay()
        # Hoist the capacity/cost constants out of the per-candidate rate
        # evaluation; the expression keeps arrival_rate_at's exact
        # left-to-right arithmetic so the thinning stream is unchanged.
        total_capacity = config.total_capacity()
        mean_cost = config.query_classes.mean_cost
        workload = config.workload
        duration = config.duration

        def rate_at(time: float) -> float:
            return (
                workload.fraction_at(time, duration) * total_capacity / mean_cost
            )

        arrivals = PoissonArrivals(
            rate_at=rate_at,
            peak_rate=config.peak_arrival_rate(),
            duration=config.duration,
            rng=self._rng_workload,
            # A fixed workload's rate always equals the peak, so every
            # candidate is accepted and the per-candidate rate evaluation
            # can be skipped (the thinning draw itself is kept).
            constant_rate=workload.kind == "fixed",
        )
        next_sample = config.sample_interval
        next_check = config.warmup_time + config.departure_check_interval
        autonomy = self._autonomy_enabled()  # constant for the whole run
        faults = bool(self._fault_events)  # likewise constant

        for time in arrivals:
            while next_sample <= time:
                if faults:
                    self._apply_faults_until(next_sample)
                self._sample(next_sample)
                next_sample += config.sample_interval
            while autonomy and next_check <= time:
                self._check_departures(next_check)
                next_check += config.departure_check_interval
            if faults:
                self._apply_faults_until(time)
            self._process_arrival(time)

        while next_sample <= config.duration:
            if faults:
                self._apply_faults_until(next_sample)
            self._sample(next_sample)
            next_sample += config.sample_interval

        return self._build_result()

    def _run_replay(self) -> SimulationResult:
        """Drive the run from a recorded trace instead of arrival RNG.

        The workload and query streams are bypassed *wholesale*: every
        arrival time, issuing consumer, and query class comes from the
        trace file, so two replays of one trace under different methods
        see literally the same query sequence (paired comparison with
        zero arrival-process variance).  Arrivals recorded with the
        skipped sentinel (class ``-1`` — the drawn consumer had departed
        at recording time) issue nothing here either, but still advance
        the sample/departure ladders exactly as they did while
        recording — that is what makes a recording-method replay
        byte-identical.
        """
        # Local import: trace.py imports this module for recording.
        from repro.simulation.trace import load_trace

        config = self.config
        trace = load_trace(
            config.workload.trace_path,
            expected_digest=config.workload.trace_digest,
        )
        self._check_trace_compatible(trace)

        next_sample = config.sample_interval
        next_check = config.warmup_time + config.departure_check_interval
        autonomy = self._autonomy_enabled()
        faults = bool(self._fault_events)
        active = self.consumers.active
        create_traced = self._factory.create_traced

        for time, consumer, klass in zip(
            trace.times.tolist(),
            trace.consumers.tolist(),
            trace.klasses.tolist(),
        ):
            while next_sample <= time:
                if faults:
                    self._apply_faults_until(next_sample)
                self._sample(next_sample)
                next_sample += config.sample_interval
            while autonomy and next_check <= time:
                self._check_departures(next_check)
                next_check += config.departure_check_interval
            if faults:
                self._apply_faults_until(time)
            if klass < 0 or not active[consumer]:
                # klass < 0: the arrival issued nothing at recording
                # time (departed consumer) and issues nothing here.
                # Inactive consumer: live at recording time but departed
                # in *this* run's dynamics — its queries vanish exactly
                # as they would on the live path.
                continue
            query = create_traced(consumer, time, klass)
            self._dispatch(query, time)

        while next_sample <= config.duration:
            if faults:
                self._apply_faults_until(next_sample)
            self._sample(next_sample)
            next_sample += config.sample_interval

        return self._build_result()

    def _check_trace_compatible(self, trace) -> None:
        config = self.config
        mismatches = []
        if trace.n_consumers != config.n_consumers:
            mismatches.append(
                f"consumers {trace.n_consumers} != {config.n_consumers}"
            )
        if trace.n_providers != config.n_providers:
            mismatches.append(
                f"providers {trace.n_providers} != {config.n_providers}"
            )
        if trace.duration != config.duration:
            mismatches.append(
                f"duration {trace.duration} != {config.duration}"
            )
        if tuple(trace.query_costs) != tuple(config.query_classes.costs):
            mismatches.append(
                f"query costs {tuple(trace.query_costs)} != "
                f"{tuple(config.query_classes.costs)}"
            )
        if mismatches:
            raise ValueError(
                "trace was recorded against a different environment: "
                + "; ".join(mismatches)
            )

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def _apply_faults_until(self, time: float) -> None:
        """Apply every compiled fault event scheduled at or before ``time``.

        Events take effect at the first engine event (arrival or sample)
        at or after their scheduled time — exact sub-interval timing is
        below the fidelity of the simulation's sampled outputs.
        """
        events = self._fault_events
        cursor = self._fault_cursor
        while cursor < len(events) and events[cursor].time <= time:
            self._apply_fault_event(events[cursor])
            cursor += 1
        self._fault_cursor = cursor

    def _apply_fault_event(self, event) -> None:
        providers = self.providers
        if event.action == "down":
            for index in event.providers:
                # Permanently-departed providers stay departed; already
                # fault-downed providers (overlapping windows) are not
                # double-claimed, so the first recovery restores them.
                if providers.active[index] and index not in self._fault_down:
                    providers.deactivate(index)
                    self._fault_down.add(index)
        else:
            for index in event.providers:
                # Only providers *this* layer took down come back — an
                # autonomy departure is never reversed by a recovery.
                if index in self._fault_down:
                    providers.reactivate(index)
                    self._fault_down.discard(index)

    # ------------------------------------------------------------------
    # per-query processing
    # ------------------------------------------------------------------

    def _candidate_entry(self, query) -> tuple[np.ndarray, np.ndarray]:
        """(candidates, their capacities) for ``query``, cached between
        departures.

        Invariant: for a cacheable matchmaker the cached array always
        equals ``matchmaker.candidates(query, active)`` recomputed fresh
        — the cache is keyed by query class and dropped whenever the
        provider pool's epoch (bumped on every ``deactivate``) moves.
        The capacity gather rides along because it depends only on the
        candidate set.  Callers must treat both arrays as read-only.
        """
        if not self._matchmaker_cacheable:
            self._candidate_misses += 1
            candidates = self._matchmaker.candidates(
                query, self.providers.active
            )
            return candidates, self.capacity.rates[candidates]
        epoch = self.providers.epoch
        if epoch != self._candidate_epoch:
            self._candidate_cache.clear()
            self._candidate_epoch = epoch
        entry = self._candidate_cache.get(query.klass)
        if entry is None:
            self._candidate_misses += 1
            candidates = self._matchmaker.candidates(
                query, self.providers.active
            )
            # Class-independent matchmakers (the universal one) produce
            # the same candidate set for every class; reusing the first
            # equal entry keeps one array *object* per epoch, which the
            # downstream identity-keyed caches (preference bands,
            # utilization denominators, ring-log lockstep) rely on to
            # hit across query classes.
            for existing in self._candidate_cache.values():
                if np.array_equal(existing[0], candidates):
                    entry = existing
                    break
            else:
                entry = (candidates, self.capacity.rates[candidates])
            self._candidate_cache[query.klass] = entry
        else:
            self._candidate_hits += 1
        return entry

    def _candidates(self, query) -> np.ndarray:
        """The candidate set for ``query`` (see :meth:`_candidate_entry`)."""
        return self._candidate_entry(query)[0]

    def _process_arrival(self, time: float) -> None:
        config = self.config
        acc = self._phase_acc
        if acc is not None:
            mark = perf_counter()
        consumer = int(self._rng_queries.integers(config.n_consumers))
        if not self.consumers.active[consumer]:
            # A departed consumer issues nothing; its share of the
            # arrival process vanishes with it (Section 6.3.2: fewer
            # incoming queries after consumer departures).  The arrival
            # itself is still recorded: replay must trigger the ladders
            # at every arrival instant, issued or not.
            if self._recorder is not None:
                self._recorder.record(time, consumer, -1)
            if acc is not None:
                acc["arrival"] += perf_counter() - mark
            return
        query = self._factory.create(consumer, time)
        if acc is not None:
            acc["arrival"] += perf_counter() - mark
        self._dispatch(query, time)

    def _dispatch(self, query, time: float) -> None:
        """Mediate one issued query (Algorithm 1 body).

        Shared between the live path (:meth:`_process_arrival`, which
        draws the consumer and class) and trace replay (which reads them
        from the file).
        """
        config = self.config
        consumer = query.consumer
        self._queries_issued += 1
        if self._recorder is not None:
            self._recorder.record(time, consumer, query.klass)

        # Phase marks are gated on a single None check each; ``mark``
        # carries the running perf_counter between phase boundaries.
        acc = self._phase_acc
        if acc is not None:
            started = mark = perf_counter()

        audit = self._audit
        if audit is not None:
            hits_before = self._candidate_hits
        candidates, capacities = self._candidate_entry(query)
        if acc is not None:
            now = perf_counter()
            acc["candidate_lookup"] += now - mark
            mark = now
        if candidates.size == 0:
            self._queries_unserved += 1
            if audit is not None:
                audit.record_unserved()
            return

        self.utilization.advance(time)
        utilizations = self.utilization.utilization_of(candidates)
        provider_preferences = self.provider_prefs.draw(
            candidates, query.klass
        )
        # Strategic providers distort what they *report*; their private
        # satisfaction (record_proposals below) is judged against the
        # truthful draw.  reported is provider_preferences itself when
        # no strategic spec is configured.
        if self._strategic is not None:
            reported_preferences = self._strategic.report(
                candidates, provider_preferences
            )
        else:
            reported_preferences = provider_preferences
        if config.fixed_provider_satisfaction is not None:
            provider_pref_satisfaction = np.full(
                candidates.size, config.fixed_provider_satisfaction
            )
        else:
            provider_pref_satisfaction = self.providers.satisfactions_of(
                candidates, "preference"
            )
        provider_intentions = provider_intention_vector(
            reported_preferences,
            utilizations,
            provider_pref_satisfaction,
            epsilon=config.epsilon,
        )
        consumer_intentions = self._consumer_intentions(consumer, candidates)

        consumer_satisfaction = self.consumers.satisfaction_of(consumer)
        provider_satisfactions = self.providers.satisfactions_of(
            candidates, "intention"
        )

        # Bypass the frozen-dataclass __init__ (twelve object.__setattr__
        # calls per query); the instance is indistinguishable from a
        # normally-constructed AllocationRequest.
        request = AllocationRequest.__new__(AllocationRequest)
        request.__dict__.update(
            time=time,
            query=query,
            candidates=candidates,
            consumer_intentions=consumer_intentions,
            provider_intentions=provider_intentions,
            provider_preferences=reported_preferences,
            utilizations=utilizations,
            capacities=capacities,
            backlog_seconds=self.queues.backlog_seconds_of(candidates, time),
            consumer_satisfaction=consumer_satisfaction,
            provider_satisfactions=provider_satisfactions,
            rng=self._rng_method,
        )
        if acc is not None:
            now = perf_counter()
            acc["scoring"] += now - mark
            mark = now

        positions = np.asarray(self.method.select(request), dtype=np.int64)
        self._validate_selection(positions, request)
        selected = candidates[positions]
        if acc is not None:
            now = perf_counter()
            acc["ranking"] += now - mark
            mark = now

        completions = self.queues.assign(selected, query.cost_units, time)
        response = self.queues.response_time(completions, time)
        self._record_response(response, time)
        self.utilization.assign(selected, query.cost_units, assume_unique=True)

        # --- satisfaction model updates -------------------------------
        # Clips land in preallocated scratch (the pools copy what they
        # store, so the buffers can be reused next arrival).
        n_candidates = candidates.size
        # min/max pair == np.clip without its dispatch wrapper.
        ci_clipped = self._ci_clip_scratch[:n_candidates]
        np.maximum(consumer_intentions, -1.0, out=ci_clipped)
        np.minimum(ci_clipped, 1.0, out=ci_clipped)
        adequation = query_adequation(ci_clipped)
        satisfaction = query_satisfaction(
            ci_clipped[positions], query.n_desired
        )
        self.consumers.record_query(consumer, adequation, satisfaction)

        performed = self._performed_scratch[:n_candidates]
        performed[:] = False
        performed[positions] = True
        pi_clipped = self._pi_clip_scratch[:n_candidates]
        np.maximum(provider_intentions, -1.0, out=pi_clipped)
        np.minimum(pi_clipped, 1.0, out=pi_clipped)
        self.providers.record_proposals(
            candidates,
            intentions=pi_clipped,
            preferences=provider_preferences,
            performed=performed,
        )
        self._queries_served += 1
        if acc is not None:
            now = perf_counter()
            acc["log_push"] += now - mark
            self._dispatch_stride += 1
            if self._dispatch_stride % _DISPATCH_SAMPLE_STRIDE == 0:
                self._telemetry.observe("engine.dispatch_s", now - started)
        if audit is not None:
            # After the phase marks so audit cost never skews the phase
            # breakdown; everything passed is read-only to the recorder
            # and ``consumer_satisfaction`` is the pre-update value.
            audit.record(
                time=time,
                consumer=consumer,
                klass=query.klass,
                n_desired=query.n_desired,
                cache_hit=self._candidate_hits > hits_before,
                candidates=candidates,
                positions=positions,
                provider_intentions=provider_intentions,
                consumer_intentions=consumer_intentions,
                utilizations=utilizations,
                consumer_satisfaction=consumer_satisfaction,
                provider_satisfactions=provider_satisfactions,
                adequation=adequation,
                satisfaction=satisfaction,
            )

    def _consumer_intentions(
        self, consumer: int, candidates: np.ndarray
    ) -> np.ndarray:
        config = self.config
        preferences = self.consumer_prefs.for_consumer(consumer, candidates)
        if config.consumer_intention_mode == "preference":
            # The paper's experimental setting: υ = 1, intentions are
            # exactly the consumer's preferences.  ``for_consumer``
            # gathers with an index array, so this is already a fresh
            # array — no defensive copy needed.
            return preferences
        return consumer_intention_vector(
            preferences,
            self.reputation.of(candidates),
            upsilon=config.upsilon,
            epsilon=config.epsilon,
        )

    @staticmethod
    def _validate_selection(
        positions: np.ndarray, request: AllocationRequest
    ) -> None:
        expected = request.n_to_select
        if positions.size != expected:
            raise ValueError(
                f"method {request.query.qid}: selected {positions.size} "
                f"providers, expected {expected}"
            )
        if positions.size == 1:
            # Fast path for the paper's q.n = 1: no duplicate check (a
            # singleton cannot repeat) and scalar range comparisons.
            position = positions[0]
            if position < 0 or position >= request.n_candidates:
                raise ValueError("selection out of candidate range")
            return
        if positions.size and (
            positions.min() < 0 or positions.max() >= request.n_candidates
        ):
            raise ValueError("selection out of candidate range")
        if np.unique(positions).size != positions.size:
            raise ValueError("selection contains duplicates")

    def _record_response(self, response: float, time: float) -> None:
        self._response_sum += response
        self._response_count += 1
        self._interval_response_sum += response
        self._interval_response_count += 1
        if time >= self.config.warmup_time:
            self._response_sum_post_warmup += response
            self._response_count_post_warmup += 1

    # ------------------------------------------------------------------
    # sampling and departures
    # ------------------------------------------------------------------

    def _autonomy_enabled(self) -> bool:
        rules = self.config.departures
        return rules.consumers_may_leave or bool(rules.provider_reasons)

    def _check_departures(self, time: float) -> None:
        self.utilization.advance(time)
        optimal = self.config.optimal_utilization_at(time)
        records = self._departure_policy.check_providers(
            time,
            self.providers,
            self.utilization.utilization(),
            optimal,
        )
        records.extend(
            self._departure_policy.check_consumers(time, self.consumers)
        )
        self._departures.extend(records)
        for record in records:
            if record.kind == "provider":
                self._provider_departure_count += 1
            else:
                self._consumer_departure_count += 1

    def _sample(self, time: float) -> None:
        self.utilization.advance(time)
        active_p = self.providers.active
        active_c = self.consumers.active

        sample: dict[str, float] = {
            "workload_fraction": self.config.workload.fraction_at(
                time, self.config.duration
            ),
            "active_providers": float(active_p.sum()),
            "active_consumers": float(active_c.sum()),
            "provider_departures_cumulative": float(
                self._provider_departure_count
            ),
            "consumer_departures_cumulative": float(
                self._consumer_departure_count
            ),
        }

        utilization = self.utilization.utilization()
        if active_p.any():
            ut_finite = _finite_values(utilization[active_p])
            sample["utilization_mean"] = _mean_of_finite(ut_finite)
            sample["utilization_fairness"] = _fairness_of_finite(ut_finite)
        else:
            sample["utilization_mean"] = float("nan")
            sample["utilization_fairness"] = float("nan")

        for basis in ("intention", "preference"):
            # The satisfaction vector feeds both the mean and the
            # fairness, so its finite mask is computed once and shared.
            sat_finite = _finite_values(
                self.providers.satisfactions(basis)[active_p]
            )
            adq = self.providers.adequations(basis)[active_p]
            alloc = self.providers.allocation_satisfactions(basis)[active_p]
            prefix = f"provider_{basis}"
            sample[f"{prefix}_satisfaction_mean"] = _mean_of_finite(sat_finite)
            sample[f"{prefix}_adequation_mean"] = _finite_mean(adq)
            sample[f"{prefix}_allocation_satisfaction_mean"] = _finite_mean(
                alloc
            )
            sample[f"{prefix}_satisfaction_fairness"] = _fairness_of_finite(
                sat_finite
            )

        consumer_sat_finite = _finite_values(
            self.consumers.satisfactions()[active_c]
        )
        consumer_adq = self.consumers.adequations()[active_c]
        consumer_alloc = self.consumers.allocation_satisfactions()[active_c]
        sample["consumer_satisfaction_mean"] = _mean_of_finite(
            consumer_sat_finite
        )
        sample["consumer_adequation_mean"] = _finite_mean(consumer_adq)
        sample["consumer_allocation_satisfaction_mean"] = _finite_mean(
            consumer_alloc
        )
        sample["consumer_satisfaction_fairness"] = _fairness_of_finite(
            consumer_sat_finite
        )

        if self._interval_response_count:
            sample["response_time_mean"] = (
                self._interval_response_sum / self._interval_response_count
            )
        else:
            sample["response_time_mean"] = float("nan")
        self._interval_response_sum = 0.0
        self._interval_response_count = 0

        self._collector.add_sample(time, sample)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def _build_result(self) -> SimulationResult:
        overall = (
            self._response_sum / self._response_count
            if self._response_count
            else float("nan")
        )
        post = (
            self._response_sum_post_warmup / self._response_count_post_warmup
            if self._response_count_post_warmup
            else float("nan")
        )
        final = {
            "provider_active": self.providers.active.copy(),
            "consumer_active": self.consumers.active.copy(),
            "provider_satisfaction_intention": self.providers.satisfactions(
                "intention"
            ),
            "provider_satisfaction_preference": self.providers.satisfactions(
                "preference"
            ),
            "provider_adequation_intention": self.providers.adequations(
                "intention"
            ),
            "provider_adequation_preference": self.providers.adequations(
                "preference"
            ),
            "consumer_satisfaction": self.consumers.satisfactions(),
            "consumer_adequation": self.consumers.adequations(),
            "utilization": self.utilization.utilization(),
            "capacity_classes": self.capacity.classes.copy(),
            "interest_classes": self.consumer_prefs.interest_classes.copy(),
            "adaptation_classes": self.provider_prefs.adaptation_classes.copy(),
            "completed_counts": self.queues.completed_counts(),
        }
        if self._telemetry is not None:
            self._emit_telemetry()
        return SimulationResult(
            method_name=self.method.name,
            seed=self.seed,
            config=self.config,
            collector=self._collector,
            departures=self._departures,
            queries_issued=self._queries_issued,
            queries_served=self._queries_served,
            queries_unserved=self._queries_unserved,
            response_time_mean=overall,
            response_time_post_warmup=post,
            final=final,
            initial_providers=self.providers.size,
            initial_consumers=self.consumers.size,
        )

    def _emit_telemetry(self) -> None:
        """Flush this run's tallies into the active registry.

        Phase events are emitted while the run span is still open, so
        they parent under it; the span closes last with the run's wall
        time.  All of this happens once, after the horizon — nothing
        here is on the hot path.
        """
        telemetry = self._telemetry
        for name, seconds in (self._phase_acc or {}).items():
            telemetry.event("phase", name, duration_s=seconds)
        telemetry.count(
            "engine.candidate_cache_hits", self._candidate_hits
        )
        telemetry.count(
            "engine.candidate_cache_misses", self._candidate_misses
        )
        pushes = self.consumers.push_stats()
        for kind, count in self.providers.push_stats().items():
            pushes[kind] += count
        telemetry.count("engine.ring_uniform_pushes", pushes["uniform"])
        telemetry.count("engine.ring_scattered_pushes", pushes["scattered"])
        telemetry.count("engine.ring_scalar_pushes", pushes["scalar"])
        telemetry.count(
            "engine.view_rebuilds",
            self.consumers.view_rebuilds + self.providers.view_rebuilds,
        )
        telemetry.count("engine.queries_issued", self._queries_issued)
        telemetry.count("engine.queries_served", self._queries_served)
        telemetry.count("engine.queries_unserved", self._queries_unserved)
        if self._run_span is not None:
            telemetry.span_close(
                self._run_span,
                "run",
                self.method.name,
                perf_counter() - self._run_started,
                attrs={
                    "method": self.method.name,
                    "seed": self.seed,
                    "queries_issued": self._queries_issued,
                    "queries_served": self._queries_served,
                },
            )
            self._run_span = None


def run_simulation(
    config: SimulationConfig,
    method: AllocationMethod | str,
    seed: int = 0,
    matchmaker: Matchmaker | None = None,
    recorder=None,
) -> SimulationResult:
    """Convenience wrapper: build and run one simulation."""
    return MediatorSimulation(
        config, method, seed=seed, matchmaker=matchmaker, recorder=recorder
    ).run()
