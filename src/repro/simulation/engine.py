"""The mediator simulation engine.

A mono-mediator discrete-event simulation of the paper's evaluation
environment (Section 6.1): consumers issue queries in a Poisson process;
for each query the mediator gathers the candidate set, collects the
consumer's and providers' intentions (lines 2-5 of Algorithm 1), hands
the decision to the configured allocation method, and updates queues,
utilisation, and the satisfaction model.  Metrics are sampled on a fixed
grid; with autonomy enabled, departure thresholds are checked
periodically after a warmup.

Because provider service is deterministic (FIFO queues with known
capacity), query completions are computed at assignment time and the
event loop reduces to a single ordered pass over arrivals — no event
heap is needed, which keeps the pure-Python hot path tight.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.allocation.base import AllocationMethod, AllocationRequest
from repro.allocation.registry import build_method
from repro.core.intentions import (
    clip_intention,
    consumer_intention_vector,
    provider_intention_vector,
)
from repro.model import metrics
from repro.model.consumer_profile import query_adequation, query_satisfaction
from repro.simulation.capacity import assign_capacities
from repro.simulation.config import SimulationConfig
from repro.simulation.departures import DeparturePolicy, DepartureRecord
from repro.simulation.matchmaking import Matchmaker, UniversalMatchmaker
from repro.simulation.participants import ConsumerPool, ProviderPool
from repro.simulation.preferences import (
    build_consumer_preferences,
    build_provider_preferences,
)
from repro.simulation.queries import QueryFactory
from repro.simulation.queueing import ProviderQueues
from repro.simulation.reputation import ReputationRegistry
from repro.simulation.rng import RngFactory
from repro.simulation.stats import TimeSeriesCollector
from repro.simulation.utilization import UtilizationTracker
from repro.simulation.workload import PoissonArrivals

__all__ = [
    "ENGINE_VERSION",
    "MediatorSimulation",
    "SimulationResult",
    "run_simulation",
]

#: Version tag of the simulation semantics.  The persistent result
#: store (``repro.experiments.store``) mixes this into its cache keys,
#: so bumping it invalidates every cached run.  Bump whenever a change
#: alters the numbers a simulation produces for the same
#: (config, method, seed) — not for pure refactors.
ENGINE_VERSION = "1"


def _finite_mean(values: np.ndarray) -> float:
    """Mean over finite entries; NaN when none remain."""
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return float("nan")
    return float(finite.mean())


def _finite_fairness(values: np.ndarray) -> float:
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return float("nan")
    return metrics.fairness(finite)


@dataclass
class SimulationResult:
    """Everything one simulation run produced.

    Attributes
    ----------
    method_name, seed, config:
        Provenance of the run.
    collector:
        The sampled time series (see the engine's ``_sample`` for the
        series catalogue).
    departures:
        Every departure, in order, with reasons and provider classes.
    queries_issued / queries_served / queries_unserved:
        Issue counters.  Unserved means no active capable provider
        existed at arrival time (only possible with autonomy).
    response_time_mean / response_time_post_warmup:
        Consumer-observed response time averages over the whole run and
        over the post-warmup portion.
    final:
        Named end-of-run arrays (per-provider/consumer characteristics,
        classes, activity) for distributional analysis.
    initial_providers / initial_consumers:
        The run's initial population sizes, recorded explicitly so the
        departure fractions are always taken over the population the
        run actually started with (0 falls back to the config sizes for
        results built by hand).
    """

    method_name: str
    seed: int
    config: SimulationConfig
    collector: TimeSeriesCollector
    departures: list[DepartureRecord] = field(default_factory=list)
    queries_issued: int = 0
    queries_served: int = 0
    queries_unserved: int = 0
    response_time_mean: float = float("nan")
    response_time_post_warmup: float = float("nan")
    final: dict[str, np.ndarray] = field(default_factory=dict)
    initial_providers: int = 0
    initial_consumers: int = 0

    def times(self) -> np.ndarray:
        return self.collector.times()

    def series(self, name: str) -> np.ndarray:
        return self.collector.series(name)

    def _departure_fraction(self, kind: str, initial: int) -> float:
        departed = {d.index for d in self.departures if d.kind == kind}
        if not departed:
            return 0.0
        return len(departed) / initial

    def provider_departure_fraction(self) -> float:
        """Fraction of the run's *initial* provider population that left.

        Counts distinct providers (a participant can only leave once)
        over the population the run started with, so the fraction always
        agrees with ``1 - final["provider_active"].mean()``.
        """
        initial = self.initial_providers or self.config.n_providers
        return self._departure_fraction("provider", initial)

    def consumer_departure_fraction(self) -> float:
        """Fraction of the run's *initial* consumer population that left."""
        initial = self.initial_consumers or self.config.n_consumers
        return self._departure_fraction("consumer", initial)


class MediatorSimulation:
    """One configured run: an environment, a method, and a seed.

    Parameters
    ----------
    config:
        The environment (populations, workload, autonomy, ...).
    method:
        An :class:`~repro.allocation.base.AllocationMethod` instance or a
        registry name (``"sqlb"``, ``"capacity"``, ``"mariposa"``, ...).
    seed:
        Root seed; the run is fully deterministic given (config, method,
        seed).
    matchmaker:
        Candidate-set source; defaults to the paper's universal
        matchmaker (every provider can treat every query).
    """

    def __init__(
        self,
        config: SimulationConfig,
        method: AllocationMethod | str,
        seed: int = 0,
        matchmaker: Matchmaker | None = None,
    ) -> None:
        self.config = config
        if isinstance(method, str):
            method = build_method(method, config)
        self.method = method
        self.seed = int(seed)
        self._matchmaker = matchmaker or UniversalMatchmaker()

        rngs = RngFactory(seed)
        self._rng_environment = rngs.get("environment")
        self._rng_workload = rngs.get("workload")
        self._rng_provider_prefs = rngs.get("provider_preferences")
        self._rng_method = rngs.get("method")
        self._rng_queries = rngs.get("queries")

        # --- environment ---------------------------------------------
        self.capacity = assign_capacities(
            config.n_providers, config.capacity, self._rng_environment
        )
        self.consumer_prefs = build_consumer_preferences(
            config.n_consumers,
            config.n_providers,
            config.consumer_interest,
            self._rng_environment,
        )
        self.provider_prefs = build_provider_preferences(
            config.n_providers,
            len(config.query_classes.costs),
            config.provider_adaptation,
            config.provider_pref_mode,
            self._rng_provider_prefs,
        )
        self.reputation = ReputationRegistry(
            config.n_providers,
            initial=self._rng_environment.uniform(
                0.05, 1.0, config.n_providers
            ),
            feedback_weight=0.0,
        )

        # --- live state ------------------------------------------------
        self.consumers = ConsumerPool(
            config.n_consumers,
            config.consumer_memory,
            config.initial_satisfaction,
        )
        self.providers = ProviderPool(
            config.n_providers,
            config.provider_memory,
            config.initial_satisfaction,
            warm_start_entries=config.warm_start_entries,
        )
        self.queues = ProviderQueues(self.capacity.rates)
        self.utilization = UtilizationTracker(
            self.capacity.rates,
            config.utilization_window,
            config.utilization_bins,
        )
        self._departure_policy = DeparturePolicy(
            config.departures,
            interest_classes=self.consumer_prefs.interest_classes,
            adaptation_classes=self.provider_prefs.adaptation_classes,
            capacity_classes=self.capacity.classes,
            warm_start_entries=config.warm_start_entries,
        )
        self._factory = QueryFactory(
            config.query_classes, config.queries_per_request, self._rng_queries
        )

        # --- accounting -------------------------------------------------
        self._collector = TimeSeriesCollector()
        self._departures: list[DepartureRecord] = []
        # Running per-kind counts so sampling never rescans the full
        # departure list (that scan was O(samples × departures)).
        self._provider_departure_count = 0
        self._consumer_departure_count = 0
        self._queries_issued = 0
        self._queries_served = 0
        self._queries_unserved = 0
        self._response_sum = 0.0
        self._response_count = 0
        self._response_sum_post_warmup = 0.0
        self._response_count_post_warmup = 0
        self._interval_response_sum = 0.0
        self._interval_response_count = 0

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the full horizon and return the run's results."""
        config = self.config
        self.method.reset()
        arrivals = PoissonArrivals(
            rate_at=config.arrival_rate_at,
            peak_rate=config.peak_arrival_rate(),
            duration=config.duration,
            rng=self._rng_workload,
        )
        next_sample = config.sample_interval
        next_check = config.warmup_time + config.departure_check_interval

        for time in arrivals:
            while next_sample <= time:
                self._sample(next_sample)
                next_sample += config.sample_interval
            while self._autonomy_enabled() and next_check <= time:
                self._check_departures(next_check)
                next_check += config.departure_check_interval
            self._process_arrival(time)

        while next_sample <= config.duration:
            self._sample(next_sample)
            next_sample += config.sample_interval

        return self._build_result()

    # ------------------------------------------------------------------
    # per-query processing
    # ------------------------------------------------------------------

    def _process_arrival(self, time: float) -> None:
        config = self.config
        consumer = int(self._rng_queries.integers(config.n_consumers))
        if not self.consumers.active[consumer]:
            # A departed consumer issues nothing; its share of the
            # arrival process vanishes with it (Section 6.3.2: fewer
            # incoming queries after consumer departures).
            return
        query = self._factory.create(consumer, time)
        self._queries_issued += 1

        candidates = self._matchmaker.candidates(query, self.providers.active)
        if candidates.size == 0:
            self._queries_unserved += 1
            return

        self.utilization.advance(time)
        utilizations = self.utilization.utilization_of(candidates)
        provider_preferences = self.provider_prefs.draw(
            candidates, query.klass
        )
        if config.fixed_provider_satisfaction is not None:
            provider_pref_satisfaction = np.full(
                candidates.size, config.fixed_provider_satisfaction
            )
        else:
            provider_pref_satisfaction = self.providers.satisfactions(
                "preference"
            )[candidates]
        provider_intentions = provider_intention_vector(
            provider_preferences,
            utilizations,
            provider_pref_satisfaction,
            epsilon=config.epsilon,
        )
        consumer_intentions = self._consumer_intentions(consumer, candidates)

        consumer_satisfaction = float(
            self.consumers.satisfactions()[consumer]
        )
        provider_satisfactions = self.providers.satisfactions("intention")[
            candidates
        ]

        request = AllocationRequest(
            time=time,
            query=query,
            candidates=candidates,
            consumer_intentions=consumer_intentions,
            provider_intentions=provider_intentions,
            provider_preferences=provider_preferences,
            utilizations=utilizations,
            capacities=self.capacity.rates[candidates],
            backlog_seconds=self.queues.backlog_seconds(time)[candidates],
            consumer_satisfaction=consumer_satisfaction,
            provider_satisfactions=provider_satisfactions,
            rng=self._rng_method,
        )

        positions = np.asarray(self.method.select(request), dtype=np.int64)
        self._validate_selection(positions, request)
        selected = candidates[positions]

        completions = self.queues.assign(selected, query.cost_units, time)
        response = self.queues.response_time(completions, time)
        self._record_response(response, time)
        self.utilization.assign(selected, query.cost_units)

        # --- satisfaction model updates -------------------------------
        ci_clipped = clip_intention(consumer_intentions)
        adequation = query_adequation(ci_clipped)
        satisfaction = query_satisfaction(
            ci_clipped[positions], query.n_desired
        )
        self.consumers.record_query(consumer, adequation, satisfaction)

        performed = np.zeros(candidates.size, dtype=bool)
        performed[positions] = True
        self.providers.record_proposals(
            candidates,
            intentions=clip_intention(provider_intentions),
            preferences=provider_preferences,
            performed=performed,
        )
        self._queries_served += 1

    def _consumer_intentions(
        self, consumer: int, candidates: np.ndarray
    ) -> np.ndarray:
        config = self.config
        preferences = self.consumer_prefs.for_consumer(consumer, candidates)
        if config.consumer_intention_mode == "preference":
            # The paper's experimental setting: υ = 1, intentions are
            # exactly the consumer's preferences.
            return preferences.copy()
        return consumer_intention_vector(
            preferences,
            self.reputation.of(candidates),
            upsilon=config.upsilon,
            epsilon=config.epsilon,
        )

    @staticmethod
    def _validate_selection(
        positions: np.ndarray, request: AllocationRequest
    ) -> None:
        expected = request.n_to_select
        if positions.size != expected:
            raise ValueError(
                f"method {request.query.qid}: selected {positions.size} "
                f"providers, expected {expected}"
            )
        if positions.size and (
            positions.min() < 0 or positions.max() >= request.n_candidates
        ):
            raise ValueError("selection out of candidate range")
        if np.unique(positions).size != positions.size:
            raise ValueError("selection contains duplicates")

    def _record_response(self, response: float, time: float) -> None:
        self._response_sum += response
        self._response_count += 1
        self._interval_response_sum += response
        self._interval_response_count += 1
        if time >= self.config.warmup_time:
            self._response_sum_post_warmup += response
            self._response_count_post_warmup += 1

    # ------------------------------------------------------------------
    # sampling and departures
    # ------------------------------------------------------------------

    def _autonomy_enabled(self) -> bool:
        rules = self.config.departures
        return rules.consumers_may_leave or bool(rules.provider_reasons)

    def _check_departures(self, time: float) -> None:
        self.utilization.advance(time)
        optimal = self.config.optimal_utilization_at(time)
        records = self._departure_policy.check_providers(
            time,
            self.providers,
            self.utilization.utilization(),
            optimal,
        )
        records.extend(
            self._departure_policy.check_consumers(time, self.consumers)
        )
        self._departures.extend(records)
        for record in records:
            if record.kind == "provider":
                self._provider_departure_count += 1
            else:
                self._consumer_departure_count += 1

    def _sample(self, time: float) -> None:
        self.utilization.advance(time)
        active_p = self.providers.active
        active_c = self.consumers.active

        sample: dict[str, float] = {
            "workload_fraction": self.config.workload.fraction_at(
                time, self.config.duration
            ),
            "active_providers": float(active_p.sum()),
            "active_consumers": float(active_c.sum()),
            "provider_departures_cumulative": float(
                self._provider_departure_count
            ),
            "consumer_departures_cumulative": float(
                self._consumer_departure_count
            ),
        }

        utilization = self.utilization.utilization()
        if active_p.any():
            ut_active = utilization[active_p]
            sample["utilization_mean"] = _finite_mean(ut_active)
            sample["utilization_fairness"] = _finite_fairness(ut_active)
        else:
            sample["utilization_mean"] = float("nan")
            sample["utilization_fairness"] = float("nan")

        for basis in ("intention", "preference"):
            sat = self.providers.satisfactions(basis)[active_p]
            adq = self.providers.adequations(basis)[active_p]
            alloc = self.providers.allocation_satisfactions(basis)[active_p]
            prefix = f"provider_{basis}"
            sample[f"{prefix}_satisfaction_mean"] = _finite_mean(sat)
            sample[f"{prefix}_adequation_mean"] = _finite_mean(adq)
            sample[f"{prefix}_allocation_satisfaction_mean"] = _finite_mean(
                alloc
            )
            sample[f"{prefix}_satisfaction_fairness"] = _finite_fairness(sat)

        consumer_sat = self.consumers.satisfactions()[active_c]
        consumer_adq = self.consumers.adequations()[active_c]
        consumer_alloc = self.consumers.allocation_satisfactions()[active_c]
        sample["consumer_satisfaction_mean"] = _finite_mean(consumer_sat)
        sample["consumer_adequation_mean"] = _finite_mean(consumer_adq)
        sample["consumer_allocation_satisfaction_mean"] = _finite_mean(
            consumer_alloc
        )
        sample["consumer_satisfaction_fairness"] = _finite_fairness(
            consumer_sat
        )

        if self._interval_response_count:
            sample["response_time_mean"] = (
                self._interval_response_sum / self._interval_response_count
            )
        else:
            sample["response_time_mean"] = float("nan")
        self._interval_response_sum = 0.0
        self._interval_response_count = 0

        self._collector.add_sample(time, sample)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def _build_result(self) -> SimulationResult:
        overall = (
            self._response_sum / self._response_count
            if self._response_count
            else float("nan")
        )
        post = (
            self._response_sum_post_warmup / self._response_count_post_warmup
            if self._response_count_post_warmup
            else float("nan")
        )
        final = {
            "provider_active": self.providers.active.copy(),
            "consumer_active": self.consumers.active.copy(),
            "provider_satisfaction_intention": self.providers.satisfactions(
                "intention"
            ),
            "provider_satisfaction_preference": self.providers.satisfactions(
                "preference"
            ),
            "provider_adequation_intention": self.providers.adequations(
                "intention"
            ),
            "provider_adequation_preference": self.providers.adequations(
                "preference"
            ),
            "consumer_satisfaction": self.consumers.satisfactions(),
            "consumer_adequation": self.consumers.adequations(),
            "utilization": self.utilization.utilization(),
            "capacity_classes": self.capacity.classes.copy(),
            "interest_classes": self.consumer_prefs.interest_classes.copy(),
            "adaptation_classes": self.provider_prefs.adaptation_classes.copy(),
            "completed_counts": self.queues.completed_counts(),
        }
        return SimulationResult(
            method_name=self.method.name,
            seed=self.seed,
            config=self.config,
            collector=self._collector,
            departures=self._departures,
            queries_issued=self._queries_issued,
            queries_served=self._queries_served,
            queries_unserved=self._queries_unserved,
            response_time_mean=overall,
            response_time_post_warmup=post,
            final=final,
            initial_providers=self.providers.size,
            initial_consumers=self.consumers.size,
        )


def run_simulation(
    config: SimulationConfig,
    method: AllocationMethod | str,
    seed: int = 0,
    matchmaker: Matchmaker | None = None,
) -> SimulationResult:
    """Convenience wrapper: build and run one simulation."""
    return MediatorSimulation(
        config, method, seed=seed, matchmaker=matchmaker
    ).run()
