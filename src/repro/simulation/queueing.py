"""Provider execution queues and response-time accounting.

Each provider processes the queries allocated to it one at a time, in
FIFO order — the standard model for the paper's "treatment units"
capacity: a query of ``u`` units takes ``u / C_p`` seconds of exclusive
service at provider ``p``.  Because service is deterministic once the
allocation is fixed, the queue reduces to a per-provider
``busy_until`` clock and completions can be computed at assignment time;
there is no need to materialise completion events.

Response time follows the paper's convention (Section 6.3.1): the
elapsed time from the moment a query is issued to the moment its
consumer receives the response — for multi-provider allocations, when
the *last* selected provider finishes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ProviderQueues"]


class ProviderQueues:
    """FIFO work queues for the whole provider population.

    Parameters
    ----------
    capacities:
        Per-provider capacity in treatment units per second.
    """

    def __init__(self, capacities: np.ndarray) -> None:
        capacities = np.asarray(capacities, dtype=float)
        if capacities.ndim != 1 or capacities.size == 0:
            raise ValueError("capacities must be a non-empty 1-D array")
        if capacities.min() <= 0:
            raise ValueError("capacities must be positive")
        self._capacities = capacities
        self._busy_until = np.zeros(capacities.size, dtype=float)
        self._completed = np.zeros(capacities.size, dtype=np.int64)
        self._busy_time = np.zeros(capacities.size, dtype=float)

    @property
    def busy_until(self) -> np.ndarray:
        """Per-provider time at which its queue drains (live view)."""
        return self._busy_until

    def backlog_seconds(self, now: float) -> np.ndarray:
        """Seconds of queued work ahead of a new arrival, per provider."""
        return np.maximum(self._busy_until - now, 0.0)

    def backlog_seconds_of(self, providers: np.ndarray, now: float) -> np.ndarray:
        """:meth:`backlog_seconds` for a provider subset only.

        Saves the full-population subtract/maximum when the caller (the
        engine, once per query) only needs the candidate rows.
        """
        return np.maximum(self._busy_until[providers] - now, 0.0)

    def estimate_delay(
        self, providers: np.ndarray, cost_units: float, now: float
    ) -> np.ndarray:
        """Queue wait plus service time if the query went to each provider.

        This is the delay estimate providers quote in their Mariposa-like
        bids; it is exact under the deterministic-service model.
        """
        providers = np.asarray(providers, dtype=np.int64)
        wait = np.maximum(self._busy_until[providers] - now, 0.0)
        service = cost_units / self._capacities[providers]
        return wait + service

    def assign(
        self, providers: np.ndarray, cost_units: float, now: float
    ) -> np.ndarray:
        """Enqueue one query at each selected provider.

        Returns the per-provider completion times.  The same query going
        to several providers (``q.n > 1``) is executed independently by
        each of them.
        """
        providers = np.asarray(providers, dtype=np.int64)
        if providers.size == 0:
            raise ValueError("cannot assign a query to zero providers")
        if cost_units <= 0:
            raise ValueError(f"cost must be positive, got {cost_units}")
        if providers.size == 1:
            # Scalar path for the paper's q.n = 1 (identical arithmetic:
            # the conditional is max(), float ops are the same IEEE ops).
            provider = providers[0]
            busy = float(self._busy_until[provider])
            start = busy if busy > now else now
            service = cost_units / float(self._capacities[provider])
            completion = start + service
            self._busy_until[provider] = completion
            self._completed[provider] += 1
            self._busy_time[provider] += service
            return np.array([completion])
        starts = np.maximum(self._busy_until[providers], now)
        service = cost_units / self._capacities[providers]
        completions = starts + service
        self._busy_until[providers] = completions
        self._completed[providers] += 1
        self._busy_time[providers] += service
        return completions

    def response_time(self, completions: np.ndarray, issued_at: float) -> float:
        """Consumer-observed response time for one query's completions."""
        if completions.size == 1:
            return float(completions[0] - issued_at)
        return float(np.max(completions) - issued_at)

    def completed_counts(self) -> np.ndarray:
        """Number of queries each provider has been assigned (copy)."""
        return self._completed.copy()

    def busy_seconds(self) -> np.ndarray:
        """Total service seconds accumulated per provider (copy)."""
        return self._busy_time.copy()
