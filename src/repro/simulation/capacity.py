"""Provider capacity generation (Section 6.1, after Saroiu et al. [20]).

Providers fall into three capacity classes — 10 % low, 60 % medium, 30 %
high — with high-capacity providers 3× more powerful than medium and 7×
more powerful than low.  Capacity is expressed in *treatment units per
second*; a high-capacity provider performs the paper's 130-unit query in
1.3 s, pinning the high rate at 100 units/s.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.config import CapacityClassMix

__all__ = ["CapacityAssignment", "assign_capacities", "draw_class_indices"]

#: Canonical band order used across the simulator: 0=low, 1=medium, 2=high.
CLASS_LOW, CLASS_MEDIUM, CLASS_HIGH = 0, 1, 2


def draw_class_indices(
    n: int, fractions: tuple[float, float, float], rng: np.random.Generator
) -> np.ndarray:
    """Assign ``n`` entities to the three bands with *exact* proportions.

    Uses largest-remainder rounding so a population of 400 providers
    contains exactly 40 low / 240 medium / 120 high (up to remainder
    seats), then shuffles, so class membership is uncorrelated with
    entity index.  Exact proportions keep small scaled populations
    faithful to the paper's mix.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    quotas = np.array([n * f for f in fractions], dtype=float)
    counts = np.floor(quotas).astype(int)
    remainder = n - int(counts.sum())
    if remainder > 0:
        # Hand the leftover seats to the largest fractional remainders.
        order = np.argsort(-(quotas - counts))
        for i in range(remainder):
            counts[order[i % 3]] += 1
    classes = np.repeat(np.arange(3), counts)
    rng.shuffle(classes)
    return classes


@dataclass(frozen=True)
class CapacityAssignment:
    """Capacity classes and rates for one provider population.

    Attributes
    ----------
    classes:
        Per-provider band index (0=low, 1=medium, 2=high).
    rates:
        Per-provider capacity in treatment units per second.
    """

    classes: np.ndarray
    rates: np.ndarray

    @property
    def total(self) -> float:
        """Realised aggregate system capacity (units per second)."""
        return float(self.rates.sum())

    def class_name(self, provider: int) -> str:
        """Human-readable band of one provider."""
        return ("low", "medium", "high")[int(self.classes[provider])]


def assign_capacities(
    n_providers: int, mix: CapacityClassMix, rng: np.random.Generator
) -> CapacityAssignment:
    """Draw the capacity class and rate of every provider."""
    classes = draw_class_indices(n_providers, mix.fractions, rng)
    band_rates = np.asarray(mix.rates, dtype=float)
    return CapacityAssignment(classes=classes, rates=band_rates[classes])
