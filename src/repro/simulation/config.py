"""Simulation configuration (Table 2 and Section 6.1 of the paper).

:class:`SimulationConfig` gathers every knob of the evaluation
environment: population sizes, the participants' memory sizes
(``conSatSize`` / ``proSatSize``), the heterogeneity class mixes for
consumer interest, provider adaptation, and provider capacity, the query
classes, the workload process, and the autonomy (departure) thresholds.

Three factory functions produce the configurations used throughout the
repository:

* :func:`paper_config` — the exact Table 2 parameters (200 consumers,
  400 providers, 10 000 simulated seconds).  Faithful but slow in pure
  Python (~1.5 M queries per run at 100 % workload).
* :func:`scaled_config` — the default for experiments and benchmarks:
  every *ratio* of the paper (class fractions, capacity ratios,
  window-to-arrival-rate ratios) at one fifth the population and a
  shorter horizon.
* :func:`tiny_config` — a seconds-fast configuration for unit and
  integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.model.strategic import StrategicSpec
from repro.simulation.faults import FaultSpec

__all__ = [
    "CapacityClassMix",
    "ClassBand",
    "DepartureRules",
    "FaultSpec",
    "MariposaParams",
    "PreferenceClassMix",
    "QueryClassSpec",
    "SimulationConfig",
    "StrategicSpec",
    "WorkloadSpec",
    "paper_config",
    "scaled_config",
    "tiny_config",
]

#: Canonical names of the three heterogeneity bands used everywhere.
BAND_NAMES = ("low", "medium", "high")


@dataclass(frozen=True)
class ClassBand:
    """One heterogeneity band: a population fraction plus a value range."""

    fraction: float
    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")
        if self.low > self.high:
            raise ValueError(
                f"band range is empty: low={self.low} > high={self.high}"
            )


@dataclass(frozen=True)
class PreferenceClassMix:
    """Three preference bands (low / medium / high) summing to 1.

    Used both for consumer interest in providers (Section 6.1: 60 % of
    providers are high-interest with preferences in [.34, 1], 30 % medium
    in [-.54, .34], 10 % low in [-1, -.54]) and for provider adaptation
    to queries (35 % high in [-.2, 1], 60 % medium in [-.6, .6], 5 % low
    in [-1, .2]).
    """

    low: ClassBand
    medium: ClassBand
    high: ClassBand

    def __post_init__(self) -> None:
        total = self.low.fraction + self.medium.fraction + self.high.fraction
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"band fractions must sum to 1, got {total}")

    @property
    def bands(self) -> tuple[ClassBand, ClassBand, ClassBand]:
        """The bands in canonical (low, medium, high) order."""
        return (self.low, self.medium, self.high)

    @property
    def fractions(self) -> tuple[float, float, float]:
        return (self.low.fraction, self.medium.fraction, self.high.fraction)


#: Consumer-interest mix of Section 6.1 (fractions are of *providers*).
CONSUMER_INTEREST_MIX = PreferenceClassMix(
    low=ClassBand(fraction=0.10, low=-1.0, high=-0.54),
    medium=ClassBand(fraction=0.30, low=-0.54, high=0.34),
    high=ClassBand(fraction=0.60, low=0.34, high=1.0),
)

#: Provider-adaptation mix of Section 6.1.
PROVIDER_ADAPTATION_MIX = PreferenceClassMix(
    low=ClassBand(fraction=0.05, low=-1.0, high=0.2),
    medium=ClassBand(fraction=0.60, low=-0.6, high=0.6),
    high=ClassBand(fraction=0.35, low=-0.2, high=1.0),
)


@dataclass(frozen=True)
class CapacityClassMix:
    """Provider capacity heterogeneity (Section 6.1, after [20]).

    10 % of providers are low-capacity, 60 % medium, 30 % high;
    high-capacity providers are 3× more powerful than medium and 7× more
    powerful than low.  ``high_rate`` fixes the absolute scale: treatment
    units per second of a high-capacity provider.  The paper's query
    costs (130 / 150 units performed in ~1.3 / 1.5 s at a high-capacity
    provider) pin ``high_rate = 100``.
    """

    fractions: tuple[float, float, float] = (0.10, 0.60, 0.30)
    high_rate: float = 100.0
    medium_ratio: float = 3.0
    low_ratio: float = 7.0

    def __post_init__(self) -> None:
        if abs(sum(self.fractions) - 1.0) > 1e-9:
            raise ValueError(f"capacity fractions must sum to 1, got {self.fractions}")
        if self.high_rate <= 0:
            raise ValueError(f"high_rate must be positive, got {self.high_rate}")
        if self.medium_ratio <= 1 or self.low_ratio <= self.medium_ratio:
            raise ValueError(
                "expected low_ratio > medium_ratio > 1, got "
                f"medium_ratio={self.medium_ratio}, low_ratio={self.low_ratio}"
            )

    @property
    def rates(self) -> tuple[float, float, float]:
        """(low, medium, high) capacity in treatment units per second."""
        return (
            self.high_rate / self.low_ratio,
            self.high_rate / self.medium_ratio,
            self.high_rate,
        )


@dataclass(frozen=True)
class QueryClassSpec:
    """The query classes of Section 6.1.

    Two classes consuming 130 and 150 treatment units at a high-capacity
    provider (≈1.3 s / 1.5 s there), drawn with equal probability unless
    weights say otherwise.
    """

    costs: tuple[float, ...] = (130.0, 150.0)
    weights: tuple[float, ...] = (0.5, 0.5)

    def __post_init__(self) -> None:
        if len(self.costs) != len(self.weights):
            raise ValueError("costs and weights must have the same length")
        if not self.costs:
            raise ValueError("at least one query class is required")
        if any(cost <= 0 for cost in self.costs):
            raise ValueError(f"query costs must be positive, got {self.costs}")
        if any(weight < 0 for weight in self.weights) or sum(self.weights) <= 0:
            raise ValueError(
                f"weights must be non-negative and not all zero, got {self.weights}"
            )

    @property
    def mean_cost(self) -> float:
        """Expected treatment units per query."""
        total = sum(self.weights)
        return sum(c * w for c, w in zip(self.costs, self.weights)) / total


@dataclass(frozen=True)
class WorkloadSpec:
    """The arrival process: Poisson with a time-varying target fraction.

    The paper's Figure 4(a)-(h) runs ramp the workload *uniformly* from
    30 % to 100 % of the total system capacity over the run; the
    response-time and autonomy experiments use fixed workloads.  Two
    further shapes extend the evaluation beyond the paper's grid:

    * ``burst`` — a flash crowd: the load sits at ``start_fraction``
      except inside the relative window ``[burst_start, burst_end)``
      (fractions of the horizon), where it jumps to ``burst_fraction``.
    * ``piecewise`` — piecewise-linear over breakpoints
      ``((relative_time, fraction), ...)`` spanning the whole horizon;
      expressive enough for diurnal load, sawtooths, or decay shapes.

    Workload fractions are relative to the *initial* total system
    capacity (departures do not change the demand).  ``burst`` and
    ``piecewise`` fractions may exceed 1 (overload stress).

    The fifth kind, ``trace``, replays a recorded arrival stream (see
    :mod:`repro.simulation.trace`): the engine reads every arrival time,
    consumer, and query class from the file at ``trace_path`` instead of
    drawing them, and ``trace_digest`` pins the exact bytes being
    replayed.  The shape fields carry the *recorded* workload (with its
    original kind in ``trace_base_kind``) so measurement-only reads like
    the sampled ``workload_fraction`` series and the optimal-utilisation
    rule still evaluate the shape the trace was produced under.
    """

    kind: str = "ramp"
    start_fraction: float = 0.30
    end_fraction: float = 1.00
    #: ``burst`` only: the elevated fraction and its relative window.
    burst_fraction: float | None = None
    burst_start: float | None = None
    burst_end: float | None = None
    #: ``piecewise`` only: ((relative_time, fraction), ...) breakpoints.
    points: tuple[tuple[float, float], ...] | None = None
    #: ``trace`` only: the trace file, its SHA-256, and the recorded
    #: workload's original kind (which the shape fields above describe).
    trace_path: str | None = None
    trace_digest: str | None = None
    trace_base_kind: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("fixed", "ramp", "burst", "piecewise", "trace"):
            raise ValueError(
                "kind must be 'fixed', 'ramp', 'burst', 'piecewise', or "
                f"'trace', got {self.kind!r}"
            )
        if self.kind == "trace":
            self._validate_trace()
        elif (
            self.trace_path is not None
            or self.trace_digest is not None
            or self.trace_base_kind is not None
        ):
            raise ValueError(
                f"trace_* parameters are only valid for kind='trace', "
                f"not {self.kind!r}"
            )
        shape = self._shape_kind()
        if shape in ("fixed", "ramp"):
            self._validate_no_extras()
            if self.start_fraction <= 0:
                raise ValueError(
                    f"start_fraction must be positive, got {self.start_fraction}"
                )
            if shape == "fixed" and self.end_fraction != self.start_fraction:
                object.__setattr__(self, "end_fraction", self.start_fraction)
            if self.end_fraction < self.start_fraction:
                raise ValueError("a ramp cannot decrease")
        elif shape == "burst":
            self._validate_burst()
        else:
            self._validate_piecewise()

    def _shape_kind(self) -> str:
        """The load *shape* to evaluate: the recorded kind for traces."""
        return self.trace_base_kind if self.kind == "trace" else self.kind

    def _validate_trace(self) -> None:
        if not self.trace_path:
            raise ValueError("a trace workload needs trace_path")
        if not self.trace_digest:
            raise ValueError("a trace workload needs trace_digest")
        if self.trace_base_kind not in ("fixed", "ramp", "burst", "piecewise"):
            raise ValueError(
                "trace_base_kind must name the recorded workload's kind "
                "('fixed', 'ramp', 'burst', or 'piecewise'), "
                f"got {self.trace_base_kind!r}"
            )

    def _validate_no_extras(self) -> None:
        if (
            self.burst_fraction is not None
            or self.burst_start is not None
            or self.burst_end is not None
        ):
            raise ValueError(
                f"burst_* parameters are only valid for kind='burst', "
                f"not {self.kind!r}"
            )
        if self.points is not None:
            raise ValueError(
                f"points are only valid for kind='piecewise', not {self.kind!r}"
            )

    def _validate_burst(self) -> None:
        if self.points is not None:
            raise ValueError("points are only valid for kind='piecewise'")
        if self.start_fraction <= 0:
            raise ValueError(
                f"start_fraction must be positive, got {self.start_fraction}"
            )
        if self.burst_fraction is None or self.burst_fraction <= 0:
            raise ValueError(
                f"burst_fraction must be positive, got {self.burst_fraction}"
            )
        if self.burst_start is None or self.burst_end is None:
            raise ValueError("a burst needs both burst_start and burst_end")
        if not 0.0 <= self.burst_start < self.burst_end <= 1.0:
            raise ValueError(
                "burst window must satisfy 0 <= burst_start < burst_end <= 1, "
                f"got [{self.burst_start}, {self.burst_end})"
            )
        # The baseline is the level outside the window; end_fraction is
        # meaningless for bursts and pinned so equality/hashing behave.
        if self.end_fraction != self.start_fraction:
            object.__setattr__(self, "end_fraction", self.start_fraction)

    def _validate_piecewise(self) -> None:
        if (
            self.burst_fraction is not None
            or self.burst_start is not None
            or self.burst_end is not None
        ):
            raise ValueError("burst_* parameters are only valid for kind='burst'")
        if self.points is None or len(self.points) < 2:
            raise ValueError("piecewise needs at least two (time, fraction) points")
        for point in self.points:
            if len(point) != 2:
                raise ValueError(f"each point must be (time, fraction), got {point}")
        # Canonicalise to a tuple of float pairs so specs hash and
        # compare by value regardless of how the points were supplied.
        object.__setattr__(
            self,
            "points",
            tuple((float(t), float(v)) for t, v in self.points),
        )
        times = [float(t) for t, _ in self.points]
        values = [float(v) for _, v in self.points]
        if times[0] != 0.0 or times[-1] != 1.0:
            raise ValueError(
                "piecewise points must span the whole horizon: first time "
                f"must be 0 and last must be 1, got {times[0]} and {times[-1]}"
            )
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError(f"piecewise times must strictly increase, got {times}")
        if any(v <= 0 for v in values):
            raise ValueError(f"piecewise fractions must be positive, got {values}")
        # Pin the redundant scalars to the endpoint values so
        # fraction_at(0)/fraction_at(duration) match start/end as for
        # the other kinds.
        object.__setattr__(self, "start_fraction", values[0])
        object.__setattr__(self, "end_fraction", values[-1])

    @staticmethod
    def fixed(fraction: float) -> "WorkloadSpec":
        """A constant workload at ``fraction`` of total system capacity."""
        return WorkloadSpec(
            kind="fixed", start_fraction=fraction, end_fraction=fraction
        )

    @staticmethod
    def burst(
        base: float, peak: float, start: float, end: float
    ) -> "WorkloadSpec":
        """A flash crowd: ``base`` load, ``peak`` during ``[start, end)``.

        ``start`` and ``end`` are fractions of the run duration, so one
        spec describes the same *shape* at every horizon.
        """
        return WorkloadSpec(
            kind="burst",
            start_fraction=base,
            end_fraction=base,
            burst_fraction=peak,
            burst_start=start,
            burst_end=end,
        )

    @staticmethod
    def piecewise(
        points: tuple[tuple[float, float], ...]
    ) -> "WorkloadSpec":
        """Piecewise-linear load over ``((relative_time, fraction), ...)``."""
        canonical = tuple(
            (float(time), float(value)) for time, value in points
        )
        return WorkloadSpec(kind="piecewise", points=canonical)

    def fraction_at(self, time: float, duration: float) -> float:
        """Instantaneous workload fraction at ``time`` into a run."""
        shape = self._shape_kind()
        if shape == "fixed":
            return self.start_fraction
        if duration <= 0:
            return self.start_fraction
        progress = min(max(time / duration, 0.0), 1.0)
        if shape == "ramp":
            return self.start_fraction + progress * (
                self.end_fraction - self.start_fraction
            )
        if shape == "burst":
            if self.burst_start <= progress < self.burst_end:
                return self.burst_fraction
            return self.start_fraction
        # piecewise: linear interpolation between the bracketing points.
        points = self.points
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            if progress <= t1:
                span = t1 - t0
                return v0 + (progress - t0) / span * (v1 - v0)
        return points[-1][1]  # pragma: no cover - progress is clamped to 1

    def peak_fraction(self, duration: float) -> float:
        """Upper bound of ``fraction_at`` over the horizon.

        Used for the Poisson thinning envelope.  For ``fixed``/``ramp``
        this evaluates the endpoints exactly as
        :meth:`SimulationConfig.peak_arrival_rate` historically did, so
        existing numerics are bit-identical.
        """
        shape = self._shape_kind()
        if shape in ("fixed", "ramp"):
            return max(
                self.fraction_at(0.0, duration),
                self.fraction_at(duration, duration),
            )
        if shape == "burst":
            return max(self.start_fraction, self.burst_fraction)
        return max(value for _, value in self.points)


@dataclass(frozen=True)
class DepartureRules:
    """Section 6.3.2's autonomy thresholds.

    * A consumer leaves by dissatisfaction when ``δs(c) < δa(c)``.
    * A provider leaves by dissatisfaction when
      ``δs(p) < δa(p) - dissatisfaction_margin`` (0.15 in the paper),
      by starvation when ``Ut(p) < starvation_fraction ×`` optimal
      utilisation (20 %), and by overutilisation when ``Ut(p) >
      overutilization_fraction ×`` optimal utilisation (220 %).
    * The optimal utilisation of a provider equals the current workload
      fraction (the paper: at 80 % workload the optimal utilisation is
      0.8).

    ``provider_reasons`` selects which reasons are *enabled* (Figure 5(a)
    disables overutilisation; captive runs disable everything).
    """

    consumers_may_leave: bool = False
    provider_reasons: tuple[str, ...] = ()
    dissatisfaction_margin: float = 0.15
    starvation_fraction: float = 0.20
    overutilization_fraction: float = 2.20
    #: Physical floor under the relative overutilisation threshold: a
    #: provider with utilisation below 1 has idle capacity and cannot be
    #: "overutilised" no matter how small 220 % of the current optimal
    #: is (at a 20 % workload the relative threshold alone would be
    #: 0.44).  The departure trigger is
    #: ``Ut > max(overutilization_fraction × optimal, floor)``.
    overutilization_floor: float = 1.0
    #: A threshold must trip at this many *consecutive* checks before
    #: the participant actually leaves.  The paper says participants
    #: "support high degrees" of dissatisfaction/starvation/
    #: overutilisation; with short satisfaction windows the raw
    #: characteristics fluctuate query to query, and an instantaneous
    #: rule would evict everyone on transient noise.  Persistence keeps
    #: departures tied to *chronic* punishment — which is exactly the
    #: condition SQLB's feedback loop is designed to correct.
    persistence: int = 3
    #: Streak length for the consumers' strict ``δs < δa`` rule.  Kept
    #: as a separate knob because the consumer signal (a window over
    #: *issued* queries) decorrelates on a different timescale than the
    #: provider signal (a window over every proposed query).
    consumer_persistence: int = 3
    #: Which satisfaction basis providers use for their own decision.
    #: They know their private preferences, so "preference" is the
    #: faithful default; "intention" is available for ablations.
    provider_basis: str = "preference"

    _VALID_REASONS = ("dissatisfaction", "starvation", "overutilization")

    def __post_init__(self) -> None:
        for reason in self.provider_reasons:
            if reason not in self._VALID_REASONS:
                raise ValueError(
                    f"unknown provider departure reason {reason!r}; "
                    f"valid: {self._VALID_REASONS}"
                )
        if self.provider_basis not in ("preference", "intention"):
            raise ValueError(
                f"provider_basis must be 'preference' or 'intention', "
                f"got {self.provider_basis!r}"
            )
        if self.dissatisfaction_margin < 0:
            raise ValueError("dissatisfaction_margin must be non-negative")
        if not 0 < self.starvation_fraction < 1:
            raise ValueError("starvation_fraction must be in (0, 1)")
        if self.overutilization_fraction <= 1:
            raise ValueError("overutilization_fraction must exceed 1")
        if self.overutilization_floor < 0:
            raise ValueError("overutilization_floor must be non-negative")
        if self.persistence < 1:
            raise ValueError("persistence must be at least 1")
        if self.consumer_persistence < 1:
            raise ValueError("consumer_persistence must be at least 1")

    @staticmethod
    def captive() -> "DepartureRules":
        """Nobody may leave (Section 6.3.1's first experiment series)."""
        return DepartureRules()

    @staticmethod
    def autonomous(include_overutilization: bool = True) -> "DepartureRules":
        """Everyone may leave (Section 6.3.2).

        ``include_overutilization=False`` reproduces the Figure 5(a)
        series where providers leave only by dissatisfaction or
        starvation.
        """
        reasons = ["dissatisfaction", "starvation"]
        if include_overutilization:
            reasons.append("overutilization")
        return DepartureRules(
            consumers_may_leave=True, provider_reasons=tuple(reasons)
        )


@dataclass(frozen=True)
class MariposaParams:
    """Knobs of the Mariposa-like baseline (Section 6.2.2).

    The paper describes the method qualitatively; see DESIGN.md §2.3 for
    the substitution rationale.  A provider's base bid decreases with its
    preference for the query (an interested provider bids lower) and is
    multiplied by its load factor (``bid × load``); the broker accepts
    the cheapest bids whose estimated delay stays under the consumer's
    bid curve, falling back to cheapest-overall when none qualify.
    """

    #: Bid at preference -1 (most expensive) is base_spread times the
    #: bid at preference +1 (cheapest).
    base_spread: float = 2.5
    #: The load multiplier is (1 + load_weight × Ut).  The paper calls
    #: Mariposa's load balancing "crude"; a low weight reproduces the
    #: reported concentration on the most adapted providers.
    load_weight: float = 0.3
    #: The consumer's bid curve: maximum acceptable estimated delay in
    #: seconds (price budget is taken as unconstrained).
    max_delay: float = 60.0

    def __post_init__(self) -> None:
        if self.base_spread <= 1:
            raise ValueError(f"base_spread must exceed 1, got {self.base_spread}")
        if self.load_weight < 0:
            raise ValueError(
                f"load_weight must be non-negative, got {self.load_weight}"
            )
        if self.max_delay <= 0:
            raise ValueError(f"max_delay must be positive, got {self.max_delay}")


@dataclass(frozen=True)
class SimulationConfig:
    """Everything that defines one simulated environment.

    Defaults follow Table 2 where the paper fixes a value; the population
    and horizon default to the *scaled* environment (see module
    docstring) — call :func:`paper_config` for the exact Table 2 scale.
    """

    # --- populations (Table 2) -------------------------------------
    n_consumers: int = 40
    n_providers: int = 80
    # --- participant memories (Table 2) ----------------------------
    consumer_memory: int = 200  # conSatSize: k last issued queries
    provider_memory: int = 500  # proSatSize: k last proposed queries
    initial_satisfaction: float = 0.5  # iniSatisfaction
    #: Synthetic neutral interactions pre-loaded into each provider's
    #: window so satisfaction starts at iniSatisfaction and *evolves*
    #: (they age out like real interactions).
    warm_start_entries: int = 1
    # --- environment heterogeneity (Section 6.1) -------------------
    consumer_interest: PreferenceClassMix = CONSUMER_INTEREST_MIX
    provider_adaptation: PreferenceClassMix = PROVIDER_ADAPTATION_MIX
    capacity: CapacityClassMix = CapacityClassMix()
    query_classes: QueryClassSpec = QueryClassSpec()
    #: "per_query": a provider redraws its preference for every incoming
    #: query from its adaptation band (the paper's literal reading);
    #: "per_query_class": one draw per (provider, query class), fixed.
    provider_pref_mode: str = "per_query"
    # --- intention computation (Section 5) -------------------------
    epsilon: float = 1.0
    upsilon: float = 1.0  # υ = 1 in the paper's experiments
    #: "preference": consumer intentions are exactly their preferences
    #: (the paper: "we set υ = 1, i.e. the consumers' intentions denote
    #: their preferences"); "formula": literal Definition 7 with
    #: reputation.
    consumer_intention_mode: str = "preference"
    fixed_omega: float | None = None  # None → Equation 6
    #: Ablation hook for Definition 8: when set, providers compute their
    #: intentions as if their preference-based satisfaction were this
    #: constant (0 → pure preference chasing, 1 → pure load shedding).
    #: None (default) uses the live satisfaction — the paper's design.
    fixed_provider_satisfaction: float | None = None
    # --- workload ---------------------------------------------------
    workload: WorkloadSpec = WorkloadSpec()
    duration: float = 1500.0
    queries_per_request: int = 1  # q.n (the paper's experiments use 1)
    # --- utilisation measurement (DESIGN.md §2.2) -------------------
    utilization_window: float = 30.0
    utilization_bins: int = 15
    # --- autonomy ----------------------------------------------------
    departures: DepartureRules = DepartureRules.captive()
    warmup_time: float = 150.0
    #: Checks are spaced one utilisation window apart by default so
    #: consecutive checks see (largely) fresh evidence; much faster
    #: checking makes the persistence rule vacuous because the same
    #: transient burst trips several consecutive checks.
    departure_check_interval: float = 30.0
    # --- measurement -------------------------------------------------
    sample_interval: float = 30.0
    # --- baseline knobs ----------------------------------------------
    mariposa: MariposaParams = MariposaParams()
    # --- adversarial scenario dimensions (opt-in; None = absent) -----
    #: Scheduled temporary capacity loss (outages / flapping).  ``None``
    #: keeps the run bit-identical to the pre-fault engine — it is the
    #: absence of the feature, not an empty schedule.
    faults: FaultSpec | None = None
    #: Providers that misreport preferences to game allocation.
    strategic: StrategicSpec | None = None

    def __post_init__(self) -> None:
        if self.n_consumers <= 0 or self.n_providers <= 0:
            raise ValueError("populations must be positive")
        if self.consumer_memory <= 0 or self.provider_memory <= 0:
            raise ValueError("memory sizes must be positive")
        if not 0.0 <= self.initial_satisfaction <= 1.0:
            raise ValueError("initial_satisfaction must be in [0, 1]")
        if self.warm_start_entries < 0:
            raise ValueError("warm_start_entries must be non-negative")
        if self.warm_start_entries > self.provider_memory:
            raise ValueError("warm_start_entries cannot exceed provider_memory")
        if self.provider_pref_mode not in ("per_query", "per_query_class"):
            raise ValueError(
                f"unknown provider_pref_mode {self.provider_pref_mode!r}"
            )
        if self.consumer_intention_mode not in ("preference", "formula"):
            raise ValueError(
                f"unknown consumer_intention_mode {self.consumer_intention_mode!r}"
            )
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not 0.0 <= self.upsilon <= 1.0:
            raise ValueError("upsilon must be in [0, 1]")
        if self.fixed_omega is not None and not 0.0 <= self.fixed_omega <= 1.0:
            raise ValueError("fixed_omega must be in [0, 1] when set")
        if self.fixed_provider_satisfaction is not None and not (
            0.0 <= self.fixed_provider_satisfaction <= 1.0
        ):
            raise ValueError(
                "fixed_provider_satisfaction must be in [0, 1] when set"
            )
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.queries_per_request < 1:
            raise ValueError("q.n must be at least 1")
        if self.utilization_window <= 0 or self.utilization_bins <= 0:
            raise ValueError("utilisation window parameters must be positive")
        if self.warmup_time < 0 or self.departure_check_interval <= 0:
            raise ValueError("invalid departure timing parameters")
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        if self.faults is not None and not isinstance(self.faults, FaultSpec):
            raise TypeError(f"faults must be a FaultSpec, got {self.faults!r}")
        if self.strategic is not None and not isinstance(
            self.strategic, StrategicSpec
        ):
            raise TypeError(
                f"strategic must be a StrategicSpec, got {self.strategic!r}"
            )

    # -- derived quantities ------------------------------------------

    def total_capacity(self) -> float:
        """Expected aggregate capacity in treatment units per second.

        Uses the class mix expectation; the realised total of a concrete
        provider population differs only by sampling rounding.
        """
        rates = self.capacity.rates
        fractions = self.capacity.fractions
        per_provider = sum(rate * frac for rate, frac in zip(rates, fractions))
        return self.n_providers * per_provider

    def arrival_rate_at(self, time: float) -> float:
        """Instantaneous Poisson arrival rate (queries per second)."""
        fraction = self.workload.fraction_at(time, self.duration)
        return fraction * self.total_capacity() / self.query_classes.mean_cost

    def peak_arrival_rate(self) -> float:
        """The maximum arrival rate over the run (used for thinning)."""
        fraction = self.workload.peak_fraction(self.duration)
        return fraction * self.total_capacity() / self.query_classes.mean_cost

    def optimal_utilization_at(self, time: float) -> float:
        """The paper's 'optimal utilisation': the workload fraction."""
        return self.workload.fraction_at(time, self.duration)

    def with_workload(self, workload: WorkloadSpec) -> "SimulationConfig":
        """A copy with a different workload spec."""
        return replace(self, workload=workload)

    def with_departures(self, departures: DepartureRules) -> "SimulationConfig":
        """A copy with different autonomy rules."""
        return replace(self, departures=departures)

    def with_faults(self, faults: FaultSpec | None) -> "SimulationConfig":
        """A copy with a different fault plan (``None`` removes it)."""
        return replace(self, faults=faults)

    def with_strategic(
        self, strategic: StrategicSpec | None
    ) -> "SimulationConfig":
        """A copy with different strategic misreporting (``None`` removes)."""
        return replace(self, strategic=strategic)


def paper_config(**overrides) -> SimulationConfig:
    """The exact Table 2 environment (200 consumers, 400 providers, 10 ks).

    Warning: a 100 %-workload run at this scale is ~1.5 M queries and
    takes many minutes in pure Python.  Use :func:`scaled_config` for
    day-to-day work.
    """
    params = dict(
        n_consumers=200,
        n_providers=400,
        consumer_memory=200,
        provider_memory=500,
        duration=10_000.0,
        sample_interval=200.0,
        warmup_time=500.0,
        utilization_window=30.0,
        utilization_bins=15,
    )
    params.update(overrides)
    return SimulationConfig(**params)


def scaled_config(**overrides) -> SimulationConfig:
    """The default scaled environment (see DESIGN.md §2.4).

    One fifth of the paper's populations with identical class mixes and
    capacity ratios; the horizon is shortened so a full three-method
    comparison runs in seconds.  The participant memories are scaled by
    the same 1/5 factor: the paper's distinguishing statistics (e.g. how
    many of the last ``proSatSize`` proposed queries a provider
    performed, ≈ ``proSatSize / n_providers``) are preserved only if the
    window scales with the population.
    """
    params = dict(
        n_consumers=40,
        n_providers=80,
        # The provider memory scales with the population (it controls
        # the performed-per-window statistic, see the docstring); the
        # consumer memory is kept closer to the paper's 200 because it
        # controls the smoothness of the consumer satisfaction signal
        # that the departure rule reads.
        consumer_memory=100,
        provider_memory=100,
        duration=1500.0,
        sample_interval=30.0,
        warmup_time=150.0,
    )
    params.update(overrides)
    return SimulationConfig(**params)


def tiny_config(**overrides) -> SimulationConfig:
    """A seconds-fast environment for unit and integration tests."""
    params = dict(
        n_consumers=8,
        n_providers=16,
        consumer_memory=50,
        provider_memory=100,
        duration=120.0,
        sample_interval=10.0,
        warmup_time=20.0,
        departure_check_interval=5.0,
        utilization_window=10.0,
        utilization_bins=5,
    )
    params.update(overrides)
    return SimulationConfig(**params)
