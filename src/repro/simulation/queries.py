"""Queries and query generation (Section 2 and Section 6.1).

A query is the paper's triple ``q = <c, d, n>``: the issuing consumer,
a task description, and the number of providers the consumer wants.  In
the simulation the description reduces to a *query class* (which fixes
the treatment cost in units) because the matchmaking step is assumed
sound and complete.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.config import QueryClassSpec

__all__ = ["Query", "QueryFactory"]


@dataclass(frozen=True)
class Query:
    """One feasible query.

    Attributes
    ----------
    qid:
        Monotonically increasing identifier (issue order).
    consumer:
        Index of the issuing consumer (``q.c``).
    klass:
        Query-class index into the configuration's
        :class:`~repro.simulation.config.QueryClassSpec`.
    cost_units:
        Treatment units this query consumes at a high-capacity provider
        (``q.d`` reduced to its cost).
    n_desired:
        ``q.n`` — how many providers the consumer wants.
    issued_at:
        Simulation time of arrival at the mediator.
    """

    qid: int
    consumer: int
    klass: int
    cost_units: float
    n_desired: int
    issued_at: float

    def __post_init__(self) -> None:
        if self.n_desired < 1:
            raise ValueError(f"q.n must be at least 1, got {self.n_desired}")
        if self.cost_units <= 0:
            raise ValueError(f"cost must be positive, got {self.cost_units}")


class QueryFactory:
    """Draws query classes and assembles :class:`Query` objects."""

    def __init__(
        self,
        spec: QueryClassSpec,
        n_desired: int,
        rng: np.random.Generator,
    ) -> None:
        self._spec = spec
        self._costs = np.asarray(spec.costs, dtype=float)
        weights = np.asarray(spec.weights, dtype=float)
        self._probabilities = weights / weights.sum()
        # Precomputed inverse-CDF table replicating Generator.choice's
        # internals (cumsum, normalise, searchsorted against one uniform
        # draw): same class sequence, same RNG stream, none of choice's
        # per-call validation overhead.
        self._cdf = self._probabilities.cumsum()
        self._cdf /= self._cdf[-1]
        self._cost_list = [float(cost) for cost in self._costs]
        self._n_desired = int(n_desired)
        self._rng = rng
        self._next_id = 0

    @property
    def issued(self) -> int:
        """How many queries this factory has created."""
        return self._next_id

    def create(self, consumer: int, issued_at: float) -> Query:
        """Draw a query class and issue a query for ``consumer``.

        The class draw is ``Generator.choice(n, p=...)`` unrolled: one
        uniform against the precomputed CDF, which consumes the exact
        same stream (verified bit-identical in the RNG tests).
        """
        klass = int(self._cdf.searchsorted(self._rng.random(), side="right"))
        # Bypass the frozen-dataclass __init__ (per-field object.__setattr__
        # plus __post_init__): every field here is valid by construction —
        # costs and n_desired were validated when the spec/factory were
        # built.  The resulting instance is indistinguishable from a
        # normally-constructed Query.
        query = Query.__new__(Query)
        query.__dict__.update(
            qid=self._next_id,
            consumer=consumer,
            klass=klass,
            cost_units=self._cost_list[klass],
            n_desired=self._n_desired,
            issued_at=issued_at,
        )
        self._next_id += 1
        return query

    def create_traced(
        self, consumer: int, issued_at: float, klass: int
    ) -> Query:
        """Issue a query with a *given* class — no RNG consumed.

        The trace-replay path: the class was drawn when the trace was
        recorded, so replay must not touch the query stream at all.
        """
        query = Query.__new__(Query)
        query.__dict__.update(
            qid=self._next_id,
            consumer=consumer,
            klass=klass,
            cost_units=self._cost_list[klass],
            n_desired=self._n_desired,
            issued_at=issued_at,
        )
        self._next_id += 1
        return query
