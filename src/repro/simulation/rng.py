"""Deterministic random-number plumbing for the simulator.

Every stochastic component of the simulation receives its own
:class:`numpy.random.Generator`, all derived from a single root seed via
NumPy's `SeedSequence` spawning.  Two runs with the same configuration
and seed are bit-identical; two components never share a stream, so
adding randomness to one subsystem cannot perturb another (a property the
repetition-based experiments rely on).
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngFactory", "spawn_generators"]


def spawn_generators(seed: int, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators from one root seed."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


class RngFactory:
    """Hands out named, independent random generators from one seed.

    The name-based interface keeps stream assignment stable across code
    changes: a component asking for ``factory.get("workload")`` always
    receives the stream derived from ``hash-independent`` spawn order of
    first request, recorded explicitly so tests can assert determinism.

    Examples
    --------
    >>> factory = RngFactory(seed=7)
    >>> a = factory.get("workload")
    >>> b = factory.get("preferences")
    >>> a is factory.get("workload")
    True
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._root = np.random.SeedSequence(self._seed)
        self._generators: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was built from."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created on first request."""
        if name not in self._generators:
            child = self._root.spawn(1)[0]
            self._generators[name] = np.random.default_rng(child)
        return self._generators[name]

    def names(self) -> tuple[str, ...]:
        """Names requested so far, in creation order."""
        return tuple(self._generators)
