"""Trace record/replay: the arrival stream as a portable artifact.

Recording serialises the *arrival stream* of one run — every arrival
time, the drawn consumer, and the drawn query class, in order —
together with enough environment identity (populations, horizon, query
costs, the recorded workload spec) to refuse replay against an
incompatible config.  Replaying feeds that exact stream to the engine
in place of the Poisson arrival process and the per-query
consumer/class draws.

Arrivals whose drawn consumer had already departed issue no query; they
are still recorded (with query class ``-1``) because the engine's
sample and departure-check ladders advance at *every* arrival, issued
or not, and byte-identical replay must trigger those ladders at the
same instants the recording run did.

Why this matters: two independent runs of different allocation methods
differ both because the methods differ *and* because their arrival
processes are independent samples.  Replaying one trace under every
method removes the second source entirely — the paired comparison sees
literally the same queries — which is what makes small cross-method
deltas in ``analyze compare`` meaningful.

The RNG-discipline contract (also in ROADMAP.md):

* Replay bypasses the ``workload`` and ``queries`` streams *wholesale*;
  it never draws from them, so there is no partial-consumption state to
  keep in sync.  The ``environment``, ``provider_preferences``, and
  ``method`` streams are untouched — a replay under the recording
  method and seed therefore reproduces the original run byte-for-byte
  (asserted in tests and the CI trace-smoke job).
* A trace ships as an explicit ``kind="trace"`` workload on the config
  — never a silent engine switch — so replayed results are stored under
  their own cache keys and ``ENGINE_VERSION`` is untouched.

The file format is deterministic sorted-key JSON (floats survive the
repr round-trip bit-exactly); ``trace_digest`` pins the raw bytes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.simulation.config import SimulationConfig, WorkloadSpec
from repro.simulation.engine import (
    ENGINE_VERSION,
    MediatorSimulation,
    SimulationResult,
)

__all__ = [
    "SKIPPED",
    "TRACE_FORMAT",
    "Trace",
    "TraceRecorder",
    "load_trace",
    "record_trace",
    "replay_config",
    "series_fingerprint",
    "trace_digest",
    "trace_workload",
]

#: Bump when the trace JSON schema changes incompatibly.
TRACE_FORMAT = "repro-trace-1"

#: The workload kinds a trace can record (everything but ``trace``).
_RECORDABLE_KINDS = ("fixed", "ramp", "burst", "piecewise")


#: Query-class sentinel for a recorded arrival that issued no query
#: (its drawn consumer had departed).
SKIPPED = -1


class TraceRecorder:
    """Accumulates the arrival stream of one run."""

    __slots__ = ("times", "consumers", "klasses")

    def __init__(self) -> None:
        self.times: list[float] = []
        self.consumers: list[int] = []
        self.klasses: list[int] = []

    def record(self, time: float, consumer: int, klass: int) -> None:
        """One arrival; ``klass`` is :data:`SKIPPED` when nothing issued."""
        self.times.append(time)
        self.consumers.append(consumer)
        self.klasses.append(klass)

    def __len__(self) -> int:
        return len(self.times)


@dataclasses.dataclass(frozen=True)
class Trace:
    """One loaded trace file.

    ``workload`` is the *recorded* run's workload payload (None-valued
    fields dropped); ``fingerprint`` is the recording run's full sampled
    series SHA-256, against which a recording-method replay can assert
    byte-identity.
    """

    method: str
    seed: int
    scenario: str | None
    scale: str | None
    duration: float
    n_consumers: int
    n_providers: int
    query_costs: tuple[float, ...]
    workload: dict
    fingerprint: str
    engine_version: str
    times: np.ndarray
    consumers: np.ndarray
    klasses: np.ndarray

    @property
    def events(self) -> int:
        """All recorded arrivals, issued or skipped."""
        return int(self.times.size)

    @property
    def issued(self) -> int:
        """Arrivals that actually issued a query."""
        return int((self.klasses != SKIPPED).sum())


def series_fingerprint(result: SimulationResult) -> str:
    """SHA-256 over the entire sampled output of a run.

    Time axis plus every series in sorted name order, raw float64
    bytes — the same fingerprint the golden tests freeze, so "replay is
    byte-identical" means exactly what the goldens mean by it.
    """
    digest = hashlib.sha256()
    digest.update(result.times().tobytes())
    for name in sorted(result.collector.names):
        digest.update(name.encode())
        digest.update(result.series(name).tobytes())
    return digest.hexdigest()


def trace_digest(path: Path | str) -> str:
    """SHA-256 of a trace file's raw bytes."""
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def record_trace(
    config: SimulationConfig,
    method: str,
    seed: int,
    path: Path | str,
    scenario: str | None = None,
    scale: str | None = None,
) -> SimulationResult:
    """Run one simulation, recording its issued-query stream to ``path``.

    Returns the recording run's result (which is bit-identical to the
    same run without a recorder — recording only observes).  ``scenario``
    and ``scale`` are optional provenance the replay CLI uses as
    defaults.
    """
    if config.workload.kind == "trace":
        raise ValueError(
            "refusing to record a replay: the config already replays a "
            "trace — record from the original workload instead"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    recorder = TraceRecorder()
    result = MediatorSimulation(
        config, method, seed=seed, recorder=recorder
    ).run()
    workload_payload = {
        name: value
        for name, value in dataclasses.asdict(config.workload).items()
        if value is not None
    }
    payload = {
        "format": TRACE_FORMAT,
        "engine_version": ENGINE_VERSION,
        "method": str(result.method_name),
        "seed": int(seed),
        "scenario": scenario,
        "scale": scale,
        "duration": float(config.duration),
        "n_consumers": int(config.n_consumers),
        "n_providers": int(config.n_providers),
        "query_costs": [float(c) for c in config.query_classes.costs],
        "workload": workload_payload,
        "series_sha256": series_fingerprint(result),
        "events": {
            "times": recorder.times,
            "consumers": recorder.consumers,
            "klasses": recorder.klasses,
        },
    }
    _atomic_write_bytes(
        path,
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        ),
    )
    return result


def load_trace(
    path: Path | str, expected_digest: str | None = None
) -> Trace:
    """Load and validate a trace file.

    ``expected_digest`` (the replay config's ``trace_digest``) pins the
    exact bytes: a trace file that was regenerated or edited after the
    replay config was minted fails loudly instead of silently comparing
    against different arrivals.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise ValueError(f"cannot read trace file {path}: {error}") from None
    if expected_digest is not None:
        actual = hashlib.sha256(raw).hexdigest()
        if actual != expected_digest:
            raise ValueError(
                f"trace file {path} does not match the replay config: "
                f"digest {actual[:16]}… != expected {expected_digest[:16]}…"
            )
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as error:
        raise ValueError(f"trace file {path} is not JSON: {error}") from None
    if not isinstance(payload, dict) or payload.get("format") != TRACE_FORMAT:
        raise ValueError(
            f"trace file {path} has format "
            f"{payload.get('format') if isinstance(payload, dict) else None!r}"
            f"; expected {TRACE_FORMAT!r}"
        )
    events = payload["events"]
    times = np.asarray(events["times"], dtype=float)
    consumers = np.asarray(events["consumers"], dtype=np.int64)
    klasses = np.asarray(events["klasses"], dtype=np.int64)
    if not times.size == consumers.size == klasses.size:
        raise ValueError(
            f"trace file {path} is inconsistent: {times.size} times, "
            f"{consumers.size} consumers, {klasses.size} classes"
        )
    duration = float(payload["duration"])
    n_consumers = int(payload["n_consumers"])
    costs = tuple(float(c) for c in payload["query_costs"])
    if times.size:
        if np.any(np.diff(times) < 0):
            raise ValueError(f"trace file {path} has non-monotonic times")
        if times[0] < 0 or times[-1] > duration:
            raise ValueError(
                f"trace file {path} has arrivals outside [0, {duration}]"
            )
        if consumers.min() < 0 or consumers.max() >= n_consumers:
            raise ValueError(
                f"trace file {path} has consumer indices outside "
                f"[0, {n_consumers})"
            )
        if klasses.min() < SKIPPED or klasses.max() >= len(costs):
            raise ValueError(
                f"trace file {path} has query classes outside "
                f"[{SKIPPED}, {len(costs)})"
            )
    return Trace(
        method=str(payload["method"]),
        seed=int(payload["seed"]),
        scenario=payload.get("scenario"),
        scale=payload.get("scale"),
        duration=duration,
        n_consumers=n_consumers,
        n_providers=int(payload["n_providers"]),
        query_costs=costs,
        workload=dict(payload["workload"]),
        fingerprint=str(payload["series_sha256"]),
        engine_version=str(payload.get("engine_version", "")),
        times=times,
        consumers=consumers,
        klasses=klasses,
    )


def trace_workload(path: Path | str) -> WorkloadSpec:
    """The ``kind="trace"`` workload spec replaying ``path``.

    The shape fields are copied from the recorded workload (with its
    kind demoted to ``trace_base_kind``) so shape-derived reads — the
    sampled ``workload_fraction`` series, the optimal-utilisation rule —
    evaluate what the trace was recorded under.
    """
    trace = load_trace(path)
    recorded = dict(trace.workload)
    base_kind = recorded.pop("kind")
    if base_kind not in _RECORDABLE_KINDS:
        raise ValueError(
            f"trace file {path} records workload kind {base_kind!r}; "
            f"expected one of {_RECORDABLE_KINDS}"
        )
    points = recorded.pop("points", None)
    if points is not None:
        recorded["points"] = tuple(
            (float(t), float(v)) for t, v in points
        )
    return WorkloadSpec(
        kind="trace",
        trace_path=str(path),
        trace_digest=trace_digest(path),
        trace_base_kind=base_kind,
        **recorded,
    )


def replay_config(
    config: SimulationConfig, path: Path | str
) -> SimulationConfig:
    """A copy of ``config`` that replays the trace at ``path``."""
    return config.with_workload(trace_workload(path))
