"""Vectorised participant state (consumers, providers, and their views).

The object-level profiles in :mod:`repro.model` are the readable
reference; a simulation touching hundreds of providers per query needs
the same bookkeeping as flat arrays.  :class:`ConsumerPool` and
:class:`ProviderPool` wrap :class:`repro.model.memory.RowRingLog` with
the Section 3 semantics (including the strict Definition 4/5 zero for
empty windows and the ``SQ ⊆ PQ`` coupling) and add activity masks for
the autonomy experiments.

The test suite cross-checks the pools against the scalar profiles on
random interaction traces.
"""

from __future__ import annotations

import numpy as np

from repro.model.memory import RowRingLog

__all__ = ["ConsumerPool", "ProviderPool", "ratio_with_zero_convention"]


def ratio_with_zero_convention(
    numerators: np.ndarray, denominators: np.ndarray
) -> np.ndarray:
    """``δas = δs / δa`` with the Definition 3/6 zero-adequation convention.

    Where adequation is zero, the ratio is ``inf`` if satisfaction is
    positive and the neutral ``1.0`` otherwise (see the profile classes
    for the rationale).
    """
    numerators = np.asarray(numerators, dtype=float)
    denominators = np.asarray(denominators, dtype=float)
    out = np.empty_like(numerators)
    zero = denominators == 0.0
    np.divide(numerators, denominators, out=out, where=~zero)
    out[zero & (numerators > 0.0)] = np.inf
    out[zero & (numerators <= 0.0)] = 1.0
    return out


class ConsumerPool:
    """State of the whole consumer population.

    Each consumer remembers its ``k`` last issued queries as per-query
    (adequation, satisfaction) pairs in ``[0, 1]`` (Equations 1-2), and
    reports the Definition 1-3 aggregates; the configured initial
    satisfaction is reported while a window is still empty (Table 2's
    ``iniSatisfaction``).
    """

    def __init__(
        self, n_consumers: int, memory: int, initial_satisfaction: float
    ) -> None:
        if n_consumers <= 0:
            raise ValueError(f"n_consumers must be positive, got {n_consumers}")
        self._log = RowRingLog(
            rows=n_consumers,
            capacity=memory,
            channels=("adequation", "satisfaction"),
        )
        self._initial = float(initial_satisfaction)
        self._active = np.ones(n_consumers, dtype=bool)

    @property
    def size(self) -> int:
        return self._log.rows

    @property
    def active(self) -> np.ndarray:
        """Boolean activity mask (live view; mutate via :meth:`deactivate`)."""
        return self._active

    def active_indices(self) -> np.ndarray:
        return np.flatnonzero(self._active)

    def deactivate(self, consumer: int) -> None:
        """Mark one consumer as departed."""
        self._active[consumer] = False

    def record_query(
        self, consumer: int, adequation: float, satisfaction: float
    ) -> None:
        """Push one issued query's per-query characteristics."""
        rows = np.array([consumer], dtype=np.int64)
        self._log.push(
            rows,
            {
                "adequation": np.array([adequation]),
                "satisfaction": np.array([satisfaction]),
            },
            performed=np.array([True]),
        )

    def adequations(self) -> np.ndarray:
        """``δa(c)`` per consumer (Definition 1)."""
        means = self._log.mean_all("adequation", default=self._initial)
        # Running-sum drift can nudge a mean a few ulps outside the
        # contractual [0, 1] range; clip.
        return np.clip(means, 0.0, 1.0)

    def satisfactions(self) -> np.ndarray:
        """``δs(c)`` per consumer (Definition 2)."""
        means = self._log.mean_all("satisfaction", default=self._initial)
        return np.clip(means, 0.0, 1.0)

    def allocation_satisfactions(self) -> np.ndarray:
        """``δas(c)`` per consumer (Definition 3)."""
        return ratio_with_zero_convention(
            self.satisfactions(), self.adequations()
        )

    def queries_remembered(self) -> np.ndarray:
        return self._log.counts()


class ProviderPool:
    """State of the whole provider population.

    Each provider remembers its ``k`` last *proposed* queries with two
    channels — the (clipped) intention it showed and its private
    preference — plus the performed flag.  Definition 4 aggregates over
    the whole window, Definition 5 over the performed subset only, in
    either basis.

    ``warm_start_entries`` synthetic neutral interactions (value 0,
    performed) are pre-loaded so satisfaction starts at the configured
    initial value and *evolves*, ageing out like real interactions —
    the Table 2 initialisation.
    """

    def __init__(
        self,
        n_providers: int,
        memory: int,
        initial_satisfaction: float,
        warm_start_entries: int = 1,
    ) -> None:
        if n_providers <= 0:
            raise ValueError(f"n_providers must be positive, got {n_providers}")
        self._log = RowRingLog(
            rows=n_providers,
            capacity=memory,
            channels=("intention", "preference"),
        )
        self._initial = float(initial_satisfaction)
        self._active = np.ones(n_providers, dtype=bool)
        # Neutral warm-start: intention/preference 0 maps to the 0.5
        # initial satisfaction after the (x+1)/2 rescale.  A non-0.5
        # initial value seeds the equivalent constant instead.
        seed_value = 2.0 * self._initial - 1.0
        for _ in range(warm_start_entries):
            self._log.push_all_rows(
                {
                    "intention": np.full(n_providers, seed_value),
                    "preference": np.full(n_providers, seed_value),
                },
                performed=np.ones(n_providers, dtype=bool),
            )

    @property
    def size(self) -> int:
        return self._log.rows

    @property
    def active(self) -> np.ndarray:
        """Boolean activity mask (live view; mutate via :meth:`deactivate`)."""
        return self._active

    def active_indices(self) -> np.ndarray:
        return np.flatnonzero(self._active)

    def deactivate(self, provider: int) -> None:
        """Mark one provider as departed."""
        self._active[provider] = False

    def record_proposals(
        self,
        providers: np.ndarray,
        intentions: np.ndarray,
        preferences: np.ndarray,
        performed: np.ndarray,
    ) -> None:
        """Push one proposed query into the given providers' windows.

        ``intentions`` must already be clipped to ``[-1, 1]`` (the
        Section 2 range the satisfaction model is defined over).
        """
        self._log.push(
            providers,
            {"intention": intentions, "preference": preferences},
            performed=performed,
        )

    def adequations(self, basis: str = "intention") -> np.ndarray:
        """``δa(p)`` per provider (Definition 4); 0 for empty windows."""
        means = self._log.mean_all(self._channel(basis), default=-1.0)
        # Running-sum drift can nudge a mean a few ulps outside [-1, 1];
        # the model's range is contractual, so clip.
        return np.clip((means + 1.0) / 2.0, 0.0, 1.0)

    def satisfactions(self, basis: str = "intention") -> np.ndarray:
        """``δs(p)`` per provider (Definition 5); 0 when nothing performed.

        The strict zero matters: a provider that performed none of its
        last ``k`` proposed queries is maximally dissatisfied, which is
        the paper's punishment mechanism under preference-blind
        allocation.
        """
        means = self._log.mean_performed(self._channel(basis), default=-1.0)
        return np.clip((means + 1.0) / 2.0, 0.0, 1.0)

    def allocation_satisfactions(self, basis: str = "intention") -> np.ndarray:
        """``δas(p)`` per provider (Definition 6)."""
        return ratio_with_zero_convention(
            self.satisfactions(basis), self.adequations(basis)
        )

    def proposed_counts(self) -> np.ndarray:
        """Window fill per provider (includes warm-start entries)."""
        return self._log.counts()

    def performed_counts(self) -> np.ndarray:
        """Performed entries in the window (includes warm-start entries)."""
        return self._log.performed_counts()

    @staticmethod
    def _channel(basis: str) -> str:
        if basis not in ("intention", "preference"):
            raise ValueError(
                f"basis must be 'intention' or 'preference', got {basis!r}"
            )
        return basis
