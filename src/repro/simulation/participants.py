"""Vectorised participant state (consumers, providers, and their views).

The object-level profiles in :mod:`repro.model` are the readable
reference; a simulation touching hundreds of providers per query needs
the same bookkeeping as flat arrays.  :class:`ConsumerPool` and
:class:`ProviderPool` wrap :class:`repro.model.memory.RowRingLog` with
the Section 3 semantics (including the strict Definition 4/5 zero for
empty windows and the ``SQ ⊆ PQ`` coupling) and add activity masks for
the autonomy experiments.

The satisfaction/adequation views are maintained *incrementally*.  A
pushed proposal changes every touched row's whole-window mean but only
changes the performed-only mean of the rows that performed it or evicted
a performed entry — a handful per query.  The pools therefore refresh
the satisfaction (performed-mean) views eagerly on exactly those dirty
rows, which the engine reads on every arrival, and recompute the
adequation (whole-window) views lazily when they are actually read —
once per sample or departure check rather than once per query.  Both
refresh paths apply the same elementwise arithmetic as a wholesale
recompute, so the views are bit-identical to the pre-cache behaviour;
when the underlying log resyncs its running sums (drift cancellation),
everything is rebuilt wholesale.

The test suite cross-checks the pools against the scalar profiles on
random interaction traces.
"""

from __future__ import annotations

import numpy as np

from repro.model.memory import RowRingLog

__all__ = ["ConsumerPool", "ProviderPool", "ratio_with_zero_convention"]


def ratio_with_zero_convention(
    numerators: np.ndarray, denominators: np.ndarray
) -> np.ndarray:
    """``δas = δs / δa`` with the Definition 3/6 zero-adequation convention.

    Where adequation is zero, the ratio is ``inf`` if satisfaction is
    positive and the neutral ``1.0`` otherwise (see the profile classes
    for the rationale).
    """
    numerators = np.asarray(numerators, dtype=float)
    denominators = np.asarray(denominators, dtype=float)
    out = np.empty_like(numerators)
    zero = denominators == 0.0
    np.divide(numerators, denominators, out=out, where=~zero)
    out[zero & (numerators > 0.0)] = np.inf
    out[zero & (numerators <= 0.0)] = 1.0
    return out


class ConsumerPool:
    """State of the whole consumer population.

    Each consumer remembers its ``k`` last issued queries as per-query
    (adequation, satisfaction) pairs in ``[0, 1]`` (Equations 1-2), and
    reports the Definition 1-3 aggregates; the configured initial
    satisfaction is reported while a window is still empty (Table 2's
    ``iniSatisfaction``).
    """

    def __init__(
        self, n_consumers: int, memory: int, initial_satisfaction: float
    ) -> None:
        if n_consumers <= 0:
            raise ValueError(f"n_consumers must be positive, got {n_consumers}")
        self._log = RowRingLog(
            rows=n_consumers,
            capacity=memory,
            channels=("adequation", "satisfaction"),
        )
        self._initial = float(initial_satisfaction)
        self._active = np.ones(n_consumers, dtype=bool)
        self._epoch = 0
        # Telemetry tally only; never feeds back into the simulation.
        self.view_rebuilds = 0
        self._refresh_all()

    @property
    def size(self) -> int:
        return self._log.rows

    @property
    def active(self) -> np.ndarray:
        """Boolean activity mask (live view; mutate via :meth:`deactivate`)."""
        return self._active

    @property
    def epoch(self) -> int:
        """Bumped whenever :meth:`deactivate` flips the activity mask.

        Callers caching anything derived from ``active`` (the engine's
        candidate sets) compare epochs instead of rescanning the mask.
        """
        return self._epoch

    def active_indices(self) -> np.ndarray:
        return np.flatnonzero(self._active)

    def deactivate(self, consumer: int) -> None:
        """Mark one consumer as departed."""
        self._active[consumer] = False
        self._epoch += 1

    def record_query(
        self, consumer: int, adequation: float, satisfaction: float
    ) -> None:
        """Push one issued query's per-query characteristics."""
        # Channel order matches the log's ("adequation", "satisfaction").
        self._log.push_scalar(
            consumer, (adequation, satisfaction), performed=True
        )
        if self._log.generation != self._generation:
            self._refresh_all()
        else:
            self._refresh_one(consumer)

    def push_stats(self) -> dict[str, int]:
        """The underlying ring log's push-path tallies."""
        return self._log.push_stats()

    def _refresh_all(self) -> None:
        self.view_rebuilds += 1
        # Running-sum drift can nudge a mean a few ulps outside the
        # contractual [0, 1] range; clip.
        self._adequation_view = np.clip(
            self._log.mean_all("adequation", default=self._initial), 0.0, 1.0
        )
        self._satisfaction_view = np.clip(
            self._log.mean_all("satisfaction", default=self._initial), 0.0, 1.0
        )
        self._generation = self._log.generation

    def _refresh_one(self, consumer: int) -> None:
        # Scalar refresh of one dirty row; min/max is the scalar clip
        # (the means are never NaN), so the values match _refresh_all.
        adequation = self._log.mean_all_one(
            "adequation", consumer, default=self._initial
        )
        self._adequation_view[consumer] = min(max(adequation, 0.0), 1.0)
        satisfaction = self._log.mean_all_one(
            "satisfaction", consumer, default=self._initial
        )
        self._satisfaction_view[consumer] = min(max(satisfaction, 0.0), 1.0)

    def adequations(self) -> np.ndarray:
        """``δa(c)`` per consumer (Definition 1)."""
        return self._adequation_view.copy()

    def satisfactions(self) -> np.ndarray:
        """``δs(c)`` per consumer (Definition 2)."""
        return self._satisfaction_view.copy()

    def satisfaction_of(self, consumer: int) -> float:
        """``δs(c)`` of one consumer — O(1) from the maintained view."""
        return float(self._satisfaction_view[consumer])

    def allocation_satisfactions(self) -> np.ndarray:
        """``δas(c)`` per consumer (Definition 3)."""
        return ratio_with_zero_convention(
            self._satisfaction_view, self._adequation_view
        )

    def queries_remembered(self) -> np.ndarray:
        return self._log.counts()


class ProviderPool:
    """State of the whole provider population.

    Each provider remembers its ``k`` last *proposed* queries with two
    channels — the (clipped) intention it showed and its private
    preference — plus the performed flag.  Definition 4 aggregates over
    the whole window, Definition 5 over the performed subset only, in
    either basis.

    ``warm_start_entries`` synthetic neutral interactions (value 0,
    performed) are pre-loaded so satisfaction starts at the configured
    initial value and *evolves*, ageing out like real interactions —
    the Table 2 initialisation.
    """

    _BASES = ("intention", "preference")

    def __init__(
        self,
        n_providers: int,
        memory: int,
        initial_satisfaction: float,
        warm_start_entries: int = 1,
    ) -> None:
        if n_providers <= 0:
            raise ValueError(f"n_providers must be positive, got {n_providers}")
        self._log = RowRingLog(
            rows=n_providers,
            capacity=memory,
            channels=("intention", "preference"),
        )
        self._initial = float(initial_satisfaction)
        self._active = np.ones(n_providers, dtype=bool)
        self._epoch = 0
        # Telemetry tally only; never feeds back into the simulation.
        self.view_rebuilds = 0
        # Neutral warm-start: intention/preference 0 maps to the 0.5
        # initial satisfaction after the (x+1)/2 rescale.  A non-0.5
        # initial value seeds the equivalent constant instead.
        seed_value = 2.0 * self._initial - 1.0
        for _ in range(warm_start_entries):
            self._log.push_all_rows(
                {
                    "intention": np.full(n_providers, seed_value),
                    "preference": np.full(n_providers, seed_value),
                },
                performed=np.ones(n_providers, dtype=bool),
            )
        self._refresh_all()

    @property
    def size(self) -> int:
        return self._log.rows

    @property
    def active(self) -> np.ndarray:
        """Boolean activity mask (live view; mutate via :meth:`deactivate`)."""
        return self._active

    @property
    def epoch(self) -> int:
        """Bumped whenever :meth:`deactivate` flips the activity mask.

        The engine's cached candidate sets key their validity on this:
        between departures the active set is constant, so candidates
        need no recomputation.
        """
        return self._epoch

    def active_indices(self) -> np.ndarray:
        return np.flatnonzero(self._active)

    def deactivate(self, provider: int) -> None:
        """Mark one provider as departed."""
        self._active[provider] = False
        self._epoch += 1

    def reactivate(self, provider: int) -> None:
        """Return a fault-downed provider to service.

        Bumps the epoch exactly as :meth:`deactivate` does, so every
        cache keyed on it (the engine's candidate sets and their
        identity-keyed dependents) re-derives the active set.  Only the
        fault layer calls this — permanent autonomy departures are never
        reversed.
        """
        self._active[provider] = True
        self._epoch += 1

    def record_proposals(
        self,
        providers: np.ndarray,
        intentions: np.ndarray,
        preferences: np.ndarray,
        performed: np.ndarray,
    ) -> None:
        """Push one proposed query into the given providers' windows.

        ``intentions`` must already be clipped to ``[-1, 1]`` (the
        Section 2 range the satisfaction model is defined over).
        """
        dirty = self._log.push(
            providers,
            {"intention": intentions, "preference": preferences},
            performed=performed,
        )
        if self._log.generation != self._generation:
            self._refresh_all()
            return
        # Every pushed row's whole-window mean moved: the adequation
        # views go stale and are rebuilt on next read (once per sample
        # or departure check).  The performed-only means moved just for
        # the rows push reported — the providers that performed this
        # query or evicted a performed entry — so the satisfaction
        # views, read on every arrival, refresh only those.
        self._adequation_stale = True
        if dirty.size:
            self._refresh_satisfaction_rows(dirty)

    def push_stats(self) -> dict[str, int]:
        """The underlying ring log's push-path tallies."""
        return self._log.push_stats()

    def _refresh_all(self) -> None:
        self.view_rebuilds += 1
        self._satisfaction_views = {}
        for basis in self._BASES:
            # Running-sum drift can nudge a mean a few ulps outside
            # [-1, 1]; the model's range is contractual, so clip.
            means_performed = self._log.mean_performed(basis, default=-1.0)
            self._satisfaction_views[basis] = np.clip(
                (means_performed + 1.0) / 2.0, 0.0, 1.0
            )
        self._refresh_adequations()
        self._generation = self._log.generation

    def _refresh_adequations(self) -> None:
        self.view_rebuilds += 1
        self._adequation_views = {}
        for basis in self._BASES:
            means_all = self._log.mean_all(basis, default=-1.0)
            self._adequation_views[basis] = np.clip(
                (means_all + 1.0) / 2.0, 0.0, 1.0
            )
        self._adequation_stale = False

    def _refresh_satisfaction_rows(self, rows: np.ndarray) -> None:
        if rows.size <= 8:
            # The dirty set is almost always just the selected provider
            # plus the odd performed-entry eviction: scalar arithmetic
            # (min/max is the scalar clip; the means are never NaN)
            # beats assembling masked subset arrays.
            log = self._log
            for row in rows:
                index = int(row)
                for basis in self._BASES:
                    mean = log.mean_performed_one(basis, index, default=-1.0)
                    value = (mean + 1.0) / 2.0
                    self._satisfaction_views[basis][index] = min(
                        max(value, 0.0), 1.0
                    )
            return
        for basis in self._BASES:
            means = self._log.mean_performed_rows(basis, rows, default=-1.0)
            self._satisfaction_views[basis][rows] = np.clip(
                (means + 1.0) / 2.0, 0.0, 1.0
            )

    def _adequation_view(self, basis: str) -> np.ndarray:
        if self._adequation_stale:
            self._refresh_adequations()
        return self._adequation_views[basis]

    def adequations(self, basis: str = "intention") -> np.ndarray:
        """``δa(p)`` per provider (Definition 4); 0 for empty windows."""
        return self._adequation_view(self._channel(basis)).copy()

    def satisfactions(self, basis: str = "intention") -> np.ndarray:
        """``δs(p)`` per provider (Definition 5); 0 when nothing performed.

        The strict zero matters: a provider that performed none of its
        last ``k`` proposed queries is maximally dissatisfied, which is
        the paper's punishment mechanism under preference-blind
        allocation.
        """
        return self._satisfaction_views[self._channel(basis)].copy()

    def satisfactions_of(
        self, providers: np.ndarray, basis: str = "intention"
    ) -> np.ndarray:
        """``δs(p)`` for a provider subset, gathered from the view."""
        return self._satisfaction_views[self._channel(basis)][providers]

    def allocation_satisfactions(self, basis: str = "intention") -> np.ndarray:
        """``δas(p)`` per provider (Definition 6)."""
        basis = self._channel(basis)
        return ratio_with_zero_convention(
            self._satisfaction_views[basis], self._adequation_view(basis)
        )

    def proposed_counts(self) -> np.ndarray:
        """Window fill per provider (includes warm-start entries)."""
        return self._log.counts()

    def performed_counts(self) -> np.ndarray:
        """Performed entries in the window (includes warm-start entries)."""
        return self._log.performed_counts()

    @staticmethod
    def _channel(basis: str) -> str:
        if basis not in ("intention", "preference"):
            raise ValueError(
                f"basis must be 'intention' or 'preference', got {basis!r}"
            )
        return basis
