"""Preference generation (Section 6.1 of the paper).

Two independent heterogeneity structures:

* **Consumer interest.**  Providers are partitioned into high- (60 %),
  medium- (30 %), and low-interest (10 %) classes; each consumer draws a
  private preference for each provider uniformly from the provider's
  class band ([.34, 1], [-.54, .34], [-1, -.54] respectively).  The
  result is a fixed ``(consumers × providers)`` preference matrix — a
  consumer's taste for a given provider is a long-term datum (Section 1:
  preferences are "quite static").
* **Provider adaptation.**  Providers are partitioned into high- (35 %),
  medium- (60 %), and low-adaptation (5 %) classes; a provider's
  preference for an incoming query is drawn uniformly from its class
  band, either fresh per query (default; the paper's "providers randomly
  obtain their preferences") or once per query class (config switch).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.capacity import draw_class_indices
from repro.simulation.config import PreferenceClassMix

__all__ = [
    "ConsumerPreferences",
    "ProviderPreferences",
    "build_consumer_preferences",
    "build_provider_preferences",
]


@dataclass(frozen=True)
class ConsumerPreferences:
    """The fixed consumer→provider preference structure.

    Attributes
    ----------
    interest_classes:
        Per-provider interest band (0=low, 1=medium, 2=high) — how
        interesting this provider is to consumers in general.
    matrix:
        ``matrix[c, p] = prf_c(q, p)`` — consumer ``c``'s preference for
        provider ``p``, constant across queries (consumer preferences
        target providers, not query content, in the paper's setup).
    """

    interest_classes: np.ndarray
    matrix: np.ndarray

    def for_consumer(self, consumer: int, providers: np.ndarray) -> np.ndarray:
        """Preferences of one consumer towards a provider subset."""
        return self.matrix[consumer, providers]


def build_consumer_preferences(
    n_consumers: int,
    n_providers: int,
    mix: PreferenceClassMix,
    rng: np.random.Generator,
) -> ConsumerPreferences:
    """Draw the interest classes and the preference matrix."""
    classes = draw_class_indices(n_providers, mix.fractions, rng)
    lows = np.array([band.low for band in mix.bands])
    highs = np.array([band.high for band in mix.bands])
    span_low = lows[classes]  # per-provider band bounds
    span_high = highs[classes]
    uniform = rng.random((n_consumers, n_providers))
    matrix = span_low[None, :] + uniform * (span_high - span_low)[None, :]
    return ConsumerPreferences(interest_classes=classes, matrix=matrix)


@dataclass
class ProviderPreferences:
    """Per-query provider preferences drawn from adaptation bands.

    Attributes
    ----------
    adaptation_classes:
        Per-provider adaptation band (0=low, 1=medium, 2=high).
    """

    adaptation_classes: np.ndarray
    _band_low: np.ndarray
    _band_high: np.ndarray
    _mode: str
    _rng: np.random.Generator
    _per_class_table: np.ndarray | None

    def __post_init__(self) -> None:
        # Identity-keyed cache of the per-candidate band bounds: the
        # engine passes the same cached candidates array on every
        # arrival between departures, so the class/bound gathers are
        # recomputed only when the candidate set object changes.
        self._cached_providers: np.ndarray | None = None
        self._cached_low: np.ndarray | None = None
        self._cached_span: np.ndarray | None = None

    def draw(self, providers: np.ndarray, query_class: int) -> np.ndarray:
        """Preferences of a provider subset for one incoming query.

        In ``per_query`` mode every call redraws; in ``per_query_class``
        mode the value is the provider's fixed preference for that query
        class.
        """
        if self._mode == "per_query_class":
            assert self._per_class_table is not None
            return self._per_class_table[providers, query_class]
        if providers is not self._cached_providers:
            classes = self.adaptation_classes[providers]
            self._cached_low = self._band_low[classes]
            self._cached_span = self._band_high[classes] - self._cached_low
            self._cached_providers = providers
        return (
            self._cached_low
            + self._rng.random(providers.size) * self._cached_span
        )


def build_provider_preferences(
    n_providers: int,
    n_query_classes: int,
    mix: PreferenceClassMix,
    mode: str,
    rng: np.random.Generator,
) -> ProviderPreferences:
    """Draw adaptation classes and set up the preference source."""
    if mode not in ("per_query", "per_query_class"):
        raise ValueError(f"unknown provider preference mode {mode!r}")
    classes = draw_class_indices(n_providers, mix.fractions, rng)
    lows = np.array([band.low for band in mix.bands])
    highs = np.array([band.high for band in mix.bands])
    table = None
    if mode == "per_query_class":
        uniform = rng.random((n_providers, n_query_classes))
        low = lows[classes][:, None]
        high = highs[classes][:, None]
        table = low + uniform * (high - low)
    return ProviderPreferences(
        adaptation_classes=classes,
        _band_low=lows,
        _band_high=highs,
        _mode=mode,
        _rng=rng,
        _per_class_table=table,
    )
