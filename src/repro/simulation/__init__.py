"""The mediator simulation substrate (Section 6.1's evaluation environment).

A discrete-event simulation of a mono-mediator distributed information
system: Poisson query arrivals, heterogeneous provider capacities and
preferences, FIFO provider queues, sliding-window utilisation, the
satisfaction model, and autonomy (departures).
"""

from repro.simulation.capacity import CapacityAssignment, assign_capacities
from repro.simulation.config import (
    CapacityClassMix,
    ClassBand,
    DepartureRules,
    MariposaParams,
    PreferenceClassMix,
    QueryClassSpec,
    SimulationConfig,
    WorkloadSpec,
    paper_config,
    scaled_config,
    tiny_config,
)
from repro.simulation.departures import DeparturePolicy, DepartureRecord
from repro.simulation.engine import (
    MediatorSimulation,
    SimulationResult,
    run_simulation,
)
from repro.simulation.matchmaking import (
    CapabilityMatchmaker,
    Matchmaker,
    UniversalMatchmaker,
)
from repro.simulation.participants import ConsumerPool, ProviderPool
from repro.simulation.queries import Query, QueryFactory
from repro.simulation.queueing import ProviderQueues
from repro.simulation.reputation import ReputationRegistry
from repro.simulation.rng import RngFactory, spawn_generators
from repro.simulation.stats import TimeSeriesCollector
from repro.simulation.utilization import UtilizationTracker
from repro.simulation.workload import PoissonArrivals

__all__ = [
    "CapabilityMatchmaker",
    "CapacityAssignment",
    "CapacityClassMix",
    "ClassBand",
    "ConsumerPool",
    "DeparturePolicy",
    "DepartureRecord",
    "DepartureRules",
    "MariposaParams",
    "Matchmaker",
    "MediatorSimulation",
    "PoissonArrivals",
    "PreferenceClassMix",
    "ProviderPool",
    "ProviderQueues",
    "Query",
    "QueryClassSpec",
    "QueryFactory",
    "ReputationRegistry",
    "RngFactory",
    "SimulationConfig",
    "SimulationResult",
    "TimeSeriesCollector",
    "UniversalMatchmaker",
    "UtilizationTracker",
    "WorkloadSpec",
    "assign_capacities",
    "paper_config",
    "run_simulation",
    "scaled_config",
    "spawn_generators",
    "tiny_config",
]
