"""Declarative provider fault injection: outages and flapping.

Permanent churn (the paper's autonomous departures) removes capacity
forever; this module adds the *temporary* capacity losses real fleets
see — a rack outage that comes back, a provider that flaps in and out
of service — as a declarative :class:`FaultSpec` attached to
:class:`~repro.simulation.config.SimulationConfig`.

Two invariants keep faults composable with the rest of the engine:

* Every capacity change is routed through the provider pool's
  ``deactivate()`` / ``reactivate()`` methods, both of which bump the
  pool epoch, so the engine's per-class candidate caches (and every
  identity-keyed cache downstream of them) invalidate exactly as they
  do for permanent departures.
* The fault schedule is *compiled once* before the run from a dedicated
  RNG stream (requested only when a spec is configured), so a config
  with ``faults=None`` consumes zero extra RNG draws and is
  bit-identical to the pre-fault engine.

Timing semantics: event times are fractions of the run duration, and a
compiled event applies at the first engine event (arrival or sample) at
or after its scheduled time.  A downed provider keeps draining its
already-assigned queue backlog — the outage removes it from *new*
allocation only, matching the "provider stops accepting work" model.
Providers that departed permanently (autonomy) while down are never
resurrected by a recovery event.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = [
    "FaultEvent",
    "FaultSpec",
    "FlapSpec",
    "OutageSpec",
    "compile_fault_events",
]


@dataclasses.dataclass(frozen=True)
class OutageSpec:
    """One scheduled outage: a provider fraction down for a window.

    ``start`` and ``end`` are fractions of the run duration; the
    affected providers (a random ``fraction`` of the pool, drawn from
    the fault RNG stream) go down at ``start * duration`` and recover
    at ``end * duration``.
    """

    fraction: float
    start: float
    end: float

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(
                f"outage fraction must be in (0, 1], got {self.fraction}"
            )
        if not 0.0 <= self.start < self.end <= 1.0:
            raise ValueError(
                "outage window needs 0 <= start < end <= 1, got "
                f"[{self.start}, {self.end}]"
            )


@dataclasses.dataclass(frozen=True)
class FlapSpec:
    """Periodic down/up cycling of a provider fraction.

    Within ``[start, end]`` (fractions of the duration) the affected
    providers repeat a cycle of relative length ``period``: down for
    the first ``duty`` of each cycle, up for the rest.  Recovery is
    clamped to ``end`` so the flap never leaks capacity loss past its
    window.
    """

    fraction: float
    period: float
    duty: float = 0.5
    start: float = 0.0
    end: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(
                f"flap fraction must be in (0, 1], got {self.fraction}"
            )
        if self.period <= 0.0:
            raise ValueError(f"flap period must be > 0, got {self.period}")
        if not 0.0 < self.duty < 1.0:
            raise ValueError(f"flap duty must be in (0, 1), got {self.duty}")
        if not 0.0 <= self.start < self.end <= 1.0:
            raise ValueError(
                "flap window needs 0 <= start < end <= 1, got "
                f"[{self.start}, {self.end}]"
            )


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """The full fault plan for one run: any mix of outages and flaps.

    An empty spec (``FaultSpec()``) compiles to zero events and — by
    the RNG discipline documented in the module docstring — still costs
    one extra stream request, so configs that want byte-identity with
    the baseline should use ``faults=None``, not an empty spec.
    """

    outages: tuple[OutageSpec, ...] = ()
    flaps: tuple[FlapSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "outages", tuple(self.outages))
        object.__setattr__(self, "flaps", tuple(self.flaps))
        for outage in self.outages:
            if not isinstance(outage, OutageSpec):
                raise TypeError(f"outages must be OutageSpec, got {outage!r}")
        for flap in self.flaps:
            if not isinstance(flap, FlapSpec):
                raise TypeError(f"flaps must be FlapSpec, got {flap!r}")


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One compiled capacity change: providers go down or come up."""

    time: float
    action: str  # "down" | "up"
    providers: tuple[int, ...]


def _draw_targets(
    fraction: float, n_providers: int, rng: np.random.Generator
) -> tuple[int, ...]:
    size = max(1, round(fraction * n_providers))
    chosen = rng.choice(n_providers, size=size, replace=False)
    return tuple(sorted(int(p) for p in chosen))


def compile_fault_events(
    spec: FaultSpec,
    duration: float,
    n_providers: int,
    rng: np.random.Generator,
) -> tuple[FaultEvent, ...]:
    """Expand a spec into a time-sorted schedule of down/up events.

    Target providers are drawn independently per outage/flap, in spec
    order, from ``rng`` — the compilation consumes RNG deterministically
    so the schedule is a pure function of (spec, duration, pool size,
    stream seed).  The sort is stable: events sharing a timestamp apply
    in spec order.
    """
    events: list[FaultEvent] = []
    for outage in spec.outages:
        targets = _draw_targets(outage.fraction, n_providers, rng)
        events.append(
            FaultEvent(outage.start * duration, "down", targets)
        )
        events.append(FaultEvent(outage.end * duration, "up", targets))
    for flap in spec.flaps:
        targets = _draw_targets(flap.fraction, n_providers, rng)
        window_end = flap.end * duration
        period = flap.period * duration
        down_span = flap.duty * period
        time = flap.start * duration
        while time < window_end:
            events.append(FaultEvent(time, "down", targets))
            events.append(
                FaultEvent(min(time + down_span, window_end), "up", targets)
            )
            time += period
    events.sort(key=lambda event: event.time)
    return tuple(events)
