"""Trace-context propagation for fleet-wide span correlation.

A *trace id* is the join key that ties every telemetry event emitted on
behalf of one logical job — the queue protocol events in the
coordinating process, the executor's cell span in a pool child, and the
engine's run/phase spans inside it — into a single story that survives
process boundaries.  The id is minted once, deterministically, from the
job's stable identity (queue spec hash + job id, or sweep spec hash +
cell identity) and then *carried*, never re-derived from clocks or RNG:

* :func:`mint_trace_id` hashes the identity parts (SHA-256, truncated
  like the event digest) so re-enqueueing the same job in the same
  queue yields the same id — idempotent enqueue stays a byte-identical
  no-op and a resumed drain keeps its correlation keys.
* :func:`trace_scope` installs an id for the duration of a ``with``
  block; :class:`~repro.telemetry.registry.Telemetry` stamps the
  current id into every event's ``attrs`` (under ``"trace"``) while a
  scope is active.  The envelope schema itself is untouched —
  ``EVENT_SCHEMA_VERSION`` stays frozen; correlation is attrs-only.

The scope is a plain module global rather than thread-local state: the
executor's unit of concurrency is the *process* (fork-based pools), and
each pool child installs its own scope from the pickled job, so there
is nothing to share.  Like the rest of the telemetry package this
module is stdlib-only and draws no randomness.
"""

from __future__ import annotations

import contextlib
import hashlib
from typing import Iterator

__all__ = ["current_trace_id", "mint_trace_id", "trace_scope"]

#: Hex digits kept from the SHA-256 — matches the event digest width so
#: trace ids and digests read alike in the stream.
_TRACE_LENGTH = 16

_current: str | None = None


def mint_trace_id(*parts: object) -> str:
    """Derive a deterministic trace id from the identity ``parts``.

    The parts should pin down the logical job uniquely and stably
    (e.g. ``("queue", spec_hash, job_id)``); equal parts always yield
    the equal id, so minting is idempotent.
    """
    if not parts:
        raise ValueError("mint_trace_id requires at least one part")
    material = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(material.encode("utf-8")).hexdigest()
    return digest[:_TRACE_LENGTH]


def current_trace_id() -> str | None:
    """The trace id installed by the innermost active scope, if any."""
    return _current


@contextlib.contextmanager
def trace_scope(trace: str | None) -> Iterator[str | None]:
    """Install ``trace`` as the current trace id for the block.

    ``None`` is accepted and leaves whatever scope is already active
    untouched, so call sites can pass an optional id through without
    branching.  Scopes nest; the previous id is restored on exit even
    when the block raises.
    """
    global _current
    if trace is None:
        yield _current
        return
    previous = _current
    _current = trace
    try:
        yield trace
    finally:
        _current = previous
