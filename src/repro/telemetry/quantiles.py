"""Streaming quantile estimation — the P² algorithm, stdlib-only.

The telemetry layer wants latency quantiles (p50/p90/p99 of per-query
dispatch time, per-job wall time) without storing observations: a
simulation serves hundreds of thousands of queries and the registry
must stay O(1) per metric.  The P² algorithm (Jain & Chlamtac, CACM
1985) maintains five markers per tracked quantile — the running min,
max, the target quantile, and the two midpoints — adjusting marker
heights with a piecewise-parabolic fit as observations stream in.
Constant memory, a handful of float operations per observation, and
accuracy well within the few-percent band the report surfaces round to.

This module deliberately imports nothing from the rest of the package
(and no numpy): the telemetry layer must be importable from the
engine's hot path without dragging in any simulation machinery.
"""

from __future__ import annotations

__all__ = ["P2Quantile"]


class P2Quantile:
    """One streaming quantile estimate via the P² algorithm.

    Parameters
    ----------
    q:
        The quantile to track, in (0, 1) — e.g. ``0.99``.

    Until five observations have arrived the estimate is exact (sorted
    buffer); from the sixth on, the five markers are maintained
    incrementally.  ``value()`` returns ``nan`` while empty.
    """

    __slots__ = ("count", "q", "_heights", "_positions", "_desired")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        self.q = float(q)
        self.count = 0
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q,
                         3.0 + 2.0 * q, 5.0]

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        heights = self._heights
        if self.count <= 5:
            heights.append(value)
            heights.sort()
            return

        # Locate the marker interval holding the new observation and
        # widen the extremes when it falls outside them.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1

        positions = self._positions
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        # Desired positions advance by a constant per observation
        # (d[i] = 1 + (n-1)·f[i] with fixed fractions f), so they are
        # maintained incrementally instead of rebuilt each time.
        q = self.q
        desired = self._desired
        desired[1] += q / 2.0
        desired[2] += q
        desired[3] += (1.0 + q) / 2.0
        desired[4] += 1.0
        for index in (1, 2, 3):
            drift = desired[index] - positions[index]
            right_gap = positions[index + 1] - positions[index]
            left_gap = positions[index - 1] - positions[index]
            if (drift >= 1.0 and right_gap > 1.0) or (
                drift <= -1.0 and left_gap < -1.0
            ):
                step = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, step)
                positions[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        below = positions[index] - positions[index - 1]
        above = positions[index + 1] - positions[index]
        span = positions[index + 1] - positions[index - 1]
        return heights[index] + step / span * (
            (below + step)
            * (heights[index + 1] - heights[index])
            / above
            + (above - step)
            * (heights[index] - heights[index - 1])
            / below
        )

    def _linear(self, index: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        other = index + int(step)
        return heights[index] + step * (
            heights[other] - heights[index]
        ) / (positions[other] - positions[index])

    def value(self) -> float:
        """The current estimate (exact below six observations)."""
        count = self.count
        if count == 0:
            return float("nan")
        heights = self._heights
        if count <= 5:
            # Exact: nearest-rank on the sorted buffer.
            rank = max(0, min(count - 1, round(self.q * (count - 1))))
            return heights[rank]
        return heights[2]
