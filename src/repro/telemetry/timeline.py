"""``repro telemetry timeline``: reconstruct a fleet drain.

Consumes a merged event stream (:mod:`repro.telemetry.merge`) and joins
the queue protocol events emitted by the coordinating process with the
executor cell spans and engine run/phase spans emitted inside the
workers — the join key is the trace id that
:meth:`repro.scheduler.queue.WorkQueue.enqueue` mints and every
downstream event carries in ``attrs["trace"]``.

The reconstruction answers the three drain questions directly:

* **where did this job's time go** — each job's claim→ack wall time is
  split into ``execute_s`` (its cell spans) and ``overhead_s``
  (everything else inside the lease: store lookups, protocol I/O,
  scheduling);
* **was the fleet idle or executing** — each worker lane decomposes
  its wall time as ``queue_wait_s + execute_s + idle_s == wall_s``
  *exactly by construction* (queue-wait is lease overhead summed over
  the lane's jobs, idle is the gaps between leases), so the report can
  never silently lose seconds;
* **who was the straggler** — the lane whose last ack ends the drain,
  with its job chain as the critical path.

Per-phase latency is reported with count-weighted merged quantiles:
each process's phase durations yield exact quantiles, merged across
processes weighted by observation count — the same aggregation
contract the registry's P² snapshot merge uses.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["drain_timeline", "format_timeline", "timeline_from_path"]

#: Span kinds that must be trace-correlated; anything of these kinds
#: without a resolvable trace counts as an orphan span.
_CORRELATED_KINDS = ("cell", "run", "phase")


def _quantile(values: list[float], q: float) -> float:
    """Exact linear-interpolation quantile of a sorted sample."""
    if not values:
        return 0.0
    position = q * (len(values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(values) - 1)
    fraction = position - lower
    return values[lower] * (1.0 - fraction) + values[upper] * fraction


def _merged_phase_stats(
    per_pid: dict[int, list[float]],
) -> dict:
    """Count-weighted quantile merge of one phase across processes."""
    total = sum(sum(durations) for durations in per_pid.values())
    count = sum(len(durations) for durations in per_pid.values())
    merged = {
        "count": count,
        "total_s": total,
        "mean_s": total / count if count else 0.0,
        "max_s": max(
            (max(d) for d in per_pid.values() if d), default=0.0
        ),
    }
    for q, key in ((0.5, "p50_s"), (0.9, "p90_s"), (0.99, "p99_s")):
        weighted = 0.0
        for durations in per_pid.values():
            if durations:
                weighted += _quantile(sorted(durations), q) * len(durations)
        merged[key] = weighted / count if count else 0.0
    return merged


def drain_timeline(events: list[dict]) -> dict:
    """Reconstruct the drain carried by ``events`` (a merged stream)."""
    claims: dict[str, list[dict]] = {}
    acks: dict[str, dict] = {}
    cells: dict[str, list[dict]] = {}
    runs: dict[str, int] = {}
    phase_spans: dict[str, int] = {}
    phases: dict[str, dict[int, list[float]]] = {}
    pids: set[int] = set()
    orphans = 0
    considered = 0

    for event in events:
        kind = event["kind"]
        if kind in ("snapshot", "merge"):
            continue
        considered += 1
        pids.add(event["pid"])
        attrs = event.get("attrs") or {}
        trace = attrs.get("trace")
        if kind == "queue":
            if trace is None:
                continue
            if event["name"] == "claim":
                claims.setdefault(trace, []).append(event)
            elif event["name"] == "ack":
                acks[trace] = event
        elif kind in _CORRELATED_KINDS:
            if trace is None:
                orphans += 1
                continue
            if kind == "cell":
                cells.setdefault(trace, []).append(event)
            elif kind == "run":
                runs[trace] = runs.get(trace, 0) + 1
            else:
                phase_spans[trace] = phase_spans.get(trace, 0) + 1
                phases.setdefault(event["name"], {}).setdefault(
                    event["pid"], []
                ).append(event["dur_s"])

    # A correlated span whose trace no claim ever announced is as
    # orphaned as one with no trace at all.
    for trace in set(cells) | set(runs) | set(phase_spans):
        if trace not in claims:
            orphans += (
                len(cells.get(trace, ()))
                + runs.get(trace, 0)
                + phase_spans.get(trace, 0)
            )

    jobs: list[dict] = []
    for trace, claim_events in sorted(
        claims.items(), key=lambda item: item[1][-1]["t_wall"]
    ):
        claim = claim_events[-1]
        ack = acks.get(trace)
        execute = sum(c["dur_s"] for c in cells.get(trace, ()))
        claim_t = claim["t_wall"]
        ack_t = ack["t_wall"] if ack is not None else None
        wall = (ack_t - claim_t) if ack_t is not None else 0.0
        jobs.append(
            {
                "id": claim["attrs"].get("id"),
                "trace": trace,
                "owner": (ack or claim)["attrs"].get("owner"),
                "state": ack["attrs"].get("state") if ack else "unacked",
                "claim_t": claim_t,
                "ack_t": ack_t,
                "wall_s": wall,
                "execute_s": execute,
                "overhead_s": wall - execute,
                "attempts": len(claim_events),
                "spans": {
                    "cells": len(cells.get(trace, ())),
                    "runs": runs.get(trace, 0),
                    "phases": phase_spans.get(trace, 0),
                },
            }
        )

    workers: dict[str, dict] = {}
    for job in jobs:
        if job["ack_t"] is None:
            continue
        lane = workers.setdefault(
            job["owner"],
            {
                "jobs": 0,
                "first_claim_t": job["claim_t"],
                "last_ack_t": job["ack_t"],
                "busy_s": 0.0,
                "execute_s": 0.0,
            },
        )
        lane["jobs"] += 1
        lane["first_claim_t"] = min(lane["first_claim_t"], job["claim_t"])
        lane["last_ack_t"] = max(lane["last_ack_t"], job["ack_t"])
        lane["busy_s"] += job["wall_s"]
        lane["execute_s"] += job["execute_s"]
    for lane in workers.values():
        wall = lane["last_ack_t"] - lane["first_claim_t"]
        lane["wall_s"] = wall
        # queue_wait + execute + idle == wall, exactly: queue-wait is
        # lease overhead (busy minus execute), idle the rest of the lane.
        lane["queue_wait_s"] = lane["busy_s"] - lane["execute_s"]
        lane["idle_s"] = wall - lane["busy_s"]
        lane["utilization"] = lane["execute_s"] / wall if wall > 0 else 0.0
        del lane["busy_s"]

    acked = [job for job in jobs if job["ack_t"] is not None]
    started = min((job["claim_t"] for job in jobs), default=0.0)
    finished = max((job["ack_t"] for job in acked), default=started)
    critical: dict = {}
    if acked and workers:
        straggler = max(workers, key=lambda o: workers[o]["last_ack_t"])
        chain = [job for job in acked if job["owner"] == straggler]
        longest = max(acked, key=lambda job: job["wall_s"])
        critical = {
            "straggler": straggler,
            "ends_t": workers[straggler]["last_ack_t"],
            "jobs": [job["id"] for job in chain],
            "chain_s": sum(job["wall_s"] for job in chain),
            "longest_job": {
                "id": longest["id"],
                "owner": longest["owner"],
                "wall_s": longest["wall_s"],
                "execute_s": longest["execute_s"],
            },
        }

    return {
        "drain": {
            "events": considered,
            "processes": len(pids),
            "jobs": len(jobs),
            "acked": len(acked),
            "unacked": len(jobs) - len(acked),
            "workers": len(workers),
            "started_t": started,
            "finished_t": finished,
            "wall_s": finished - started,
            "orphan_spans": orphans,
        },
        "workers": {owner: workers[owner] for owner in sorted(workers)},
        "jobs": jobs,
        "critical_path": critical,
        "phases": {
            name: _merged_phase_stats(phases[name])
            for name in sorted(phases)
        },
    }


def timeline_from_path(path: Path | str) -> dict:
    """Timeline of a merged file, an events file, or a telemetry dir."""
    from repro.telemetry.merge import load_stream

    return drain_timeline(load_stream(path))


def _fmt_s(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    if seconds >= 100:
        return f"{seconds:.0f}s"
    if seconds >= 1:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def format_timeline(timeline: dict) -> str:
    """Human-readable drain report (tables; one string, no trailing \\n)."""
    drain = timeline["drain"]
    lines = [
        "fleet drain timeline",
        f"  jobs {drain['jobs']} ({drain['acked']} acked)"
        f"  workers {drain['workers']}"
        f"  processes {drain['processes']}"
        f"  wall {_fmt_s(drain['wall_s'])}"
        f"  orphan spans {drain['orphan_spans']}",
        "",
        "  worker lanes (queue-wait + execute + idle = wall)",
        "    worker                jobs     wall   q-wait  execute"
        "     idle  util",
    ]
    for owner, lane in timeline["workers"].items():
        lines.append(
            f"    {owner:<20} {lane['jobs']:>5}"
            f" {_fmt_s(lane['wall_s']):>8}"
            f" {_fmt_s(lane['queue_wait_s']):>8}"
            f" {_fmt_s(lane['execute_s']):>8}"
            f" {_fmt_s(lane['idle_s']):>8}"
            f" {lane['utilization'] * 100:>4.0f}%"
        )
    critical = timeline["critical_path"]
    if critical:
        longest = critical["longest_job"]
        lines += [
            "",
            f"  straggler {critical['straggler']}"
            f" (chain {_fmt_s(critical['chain_s'])}"
            f" over {len(critical['jobs'])} jobs)",
            f"  longest job {longest['id']} on {longest['owner']}"
            f" ({_fmt_s(longest['wall_s'])} wall,"
            f" {_fmt_s(longest['execute_s'])} execute)",
        ]
    if timeline["jobs"]:
        lines += [
            "",
            "  jobs (by claim order)",
            "    job                                   owner"
            "                 wall  execute overhead  state",
        ]
        for job in timeline["jobs"]:
            lines.append(
                f"    {str(job['id']):<37} {str(job['owner']):<20}"
                f" {_fmt_s(job['wall_s']):>8}"
                f" {_fmt_s(job['execute_s']):>8}"
                f" {_fmt_s(job['overhead_s']):>8}"
                f"  {job['state']}"
            )
    if timeline["phases"]:
        lines += [
            "",
            "  engine phases (count-weighted merged quantiles)",
            "    phase                count    total     p50     p90"
            "     p99     max",
        ]
        for name, stats in timeline["phases"].items():
            lines.append(
                f"    {name:<20} {stats['count']:>6}"
                f" {_fmt_s(stats['total_s']):>8}"
                f" {_fmt_s(stats['p50_s']):>7}"
                f" {_fmt_s(stats['p90_s']):>7}"
                f" {_fmt_s(stats['p99_s']):>7}"
                f" {_fmt_s(stats['max_s']):>7}"
            )
    return "\n".join(lines)
