"""``repro telemetry bundle``: a single-file, self-contained ops report.

Renders one HTML file — no external scripts, stylesheets, fonts, or
network fetches; pure stdlib on the write side — that embeds everything
a reviewer needs to judge a fleet drain:

* the drain timeline (worker lanes as inline SVG, per-worker
  queue-wait/execute/idle decomposition, straggler/critical path);
* the per-phase engine breakdown and cache-efficacy table from the
  registry aggregation (:func:`repro.telemetry.report.aggregate_events`);
* the fleet counters;
* the committed ``BENCH_engine.json`` baseline for side-by-side
  comparison, when provided;
* the ``BENCH_history.jsonl`` perf trend (``--bench-history``), one
  row per committed benchmark run with per-mode deltas; and
* decision-audit report sections (``--audit``), one per shard, with
  allocation shares and the anomaly sweep.

Determinism is a contract, not an accident: the renderer reads no
clock, generates no ids, and serialises every embedded JSON blob with
sorted keys — rendering the same merged stream twice yields the same
bytes (CI diffs a double render).  Output goes through the same
tempfile + ``os.replace`` idiom as the figure catalog's exports.
"""

from __future__ import annotations

import html
import json
import time
from pathlib import Path

from repro.telemetry.report import aggregate_events
from repro.telemetry.timeline import drain_timeline

__all__ = ["render_bundle", "write_bundle"]

_CSS = """
body{font:14px/1.45 system-ui,sans-serif;margin:24px auto;max-width:980px;
 color:#1a1a2e;background:#fafafa}
h1{font-size:20px}h2{font-size:16px;margin-top:28px;border-bottom:1px solid
 #ddd;padding-bottom:4px}
table{border-collapse:collapse;margin:8px 0;font-variant-numeric:tabular-nums}
th,td{padding:3px 10px;text-align:right;border-bottom:1px solid #eee}
th{background:#f0f0f5}th:first-child,td:first-child{text-align:left}
.tiles{display:flex;gap:12px;flex-wrap:wrap;margin:12px 0}
.tile{background:#fff;border:1px solid #ddd;border-radius:6px;
 padding:8px 14px;min-width:90px}
.tile b{display:block;font-size:18px}
.lane-label{font-size:11px;fill:#444}
details{margin-top:24px}pre{font-size:11px;overflow-x:auto}
"""


def _fmt(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    if seconds >= 1:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _tile(label: str, value: str) -> str:
    return f'<div class="tile"><b>{_esc(value)}</b>{_esc(label)}</div>'


def _lanes_svg(timeline: dict) -> str:
    """Worker lanes as inline SVG: one row per worker, one rect per
    lease (claim→ack), opacity scaled by the job's execute share."""
    workers = timeline["workers"]
    jobs = [job for job in timeline["jobs"] if job["ack_t"] is not None]
    drain = timeline["drain"]
    wall = drain["wall_s"]
    if not workers or not jobs or wall <= 0:
        return "<p>no acked jobs to draw.</p>"
    t0 = drain["started_t"]
    left, width, row_h = 150, 800, 22
    height = len(workers) * row_h + 24
    rows = sorted(workers)
    parts = [
        f'<svg viewBox="0 0 {left + width + 10} {height}" '
        f'width="{left + width + 10}" height="{height}" '
        'xmlns="http://www.w3.org/2000/svg">'
    ]

    def x(t: float) -> float:
        return left + (t - t0) / wall * width

    for lane_index, owner in enumerate(rows):
        y = lane_index * row_h + 14
        parts.append(
            f'<text class="lane-label" x="4" y="{y + 12}">'
            f"{_esc(owner)}</text>"
        )
        parts.append(
            f'<line x1="{left}" y1="{y + 8}" x2="{left + width}" '
            f'y2="{y + 8}" stroke="#ddd"/>'
        )
    for job in jobs:
        lane_index = rows.index(job["owner"])
        y = lane_index * row_h + 14
        x0, x1 = x(job["claim_t"]), x(job["ack_t"])
        share = (
            job["execute_s"] / job["wall_s"] if job["wall_s"] > 0 else 0.0
        )
        opacity = 0.35 + 0.6 * min(1.0, max(0.0, share))
        parts.append(
            f'<rect x="{x0:.2f}" y="{y}" '
            f'width="{max(x1 - x0, 1.5):.2f}" height="16" rx="2" '
            f'fill="#3b6ea5" fill-opacity="{opacity:.2f}">'
            f"<title>{_esc(job['id'])}\n"
            f"wall {_fmt(job['wall_s'])}, execute "
            f"{_fmt(job['execute_s'])}</title></rect>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _workers_table(timeline: dict) -> str:
    rows = [
        "<table><tr><th>worker</th><th>jobs</th><th>wall</th>"
        "<th>queue-wait</th><th>execute</th><th>idle</th>"
        "<th>util</th></tr>"
    ]
    for owner, lane in timeline["workers"].items():
        rows.append(
            f"<tr><td>{_esc(owner)}</td><td>{lane['jobs']}</td>"
            f"<td>{_fmt(lane['wall_s'])}</td>"
            f"<td>{_fmt(lane['queue_wait_s'])}</td>"
            f"<td>{_fmt(lane['execute_s'])}</td>"
            f"<td>{_fmt(lane['idle_s'])}</td>"
            f"<td>{lane['utilization'] * 100:.0f}%</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _phases_table(timeline: dict) -> str:
    if not timeline["phases"]:
        return "<p>no engine phase spans in the stream.</p>"
    rows = [
        "<table><tr><th>phase</th><th>count</th><th>total</th>"
        "<th>p50</th><th>p90</th><th>p99</th><th>max</th></tr>"
    ]
    for name, stats in timeline["phases"].items():
        rows.append(
            f"<tr><td>{_esc(name)}</td><td>{stats['count']}</td>"
            f"<td>{_fmt(stats['total_s'])}</td>"
            f"<td>{_fmt(stats['p50_s'])}</td>"
            f"<td>{_fmt(stats['p90_s'])}</td>"
            f"<td>{_fmt(stats['p99_s'])}</td>"
            f"<td>{_fmt(stats['max_s'])}</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _counters_table(report: dict) -> str:
    if not report["counters"]:
        return "<p>no counters recorded.</p>"
    rows = ["<table><tr><th>counter</th><th>value</th></tr>"]
    for name, value in report["counters"].items():
        rows.append(
            f"<tr><td>{_esc(name)}</td><td>{value:.0f}</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _bench_table(bench: dict) -> str:
    cells = bench.get("cells", {})
    rows = [
        "<table><tr><th>cell</th><th>queries</th><th>seconds</th>"
        "<th>qps</th></tr>"
    ]
    for name in sorted(cells):
        cell = cells[name]
        rows.append(
            f"<tr><td>{_esc(name)}</td>"
            f"<td>{cell.get('queries', 0)}</td>"
            f"<td>{cell.get('seconds', 0.0):.3f}</td>"
            f"<td>{cell.get('qps', 0.0):,.0f}</td></tr>"
        )
    rows.append(
        f"</table><p>aggregate qps "
        f"{bench.get('aggregate_qps', 0.0):,.0f} "
        f"(engine v{_esc(bench.get('engine_version', '?'))}, "
        f"mode {_esc(bench.get('mode', '?'))})</p>"
    )
    return "".join(rows)


def _history_table(rows: list[dict]) -> str:
    """The perf trend as a table (oldest row first).

    Deterministic by construction: timestamps come from the rows (UTC,
    so the rendering does not depend on the reader's timezone), never
    from the clock, and the delta column compares each row against the
    previous row of the *same* mode, mirroring ``repro perf history``.
    """
    if not rows:
        return "<p>no perf history rows.</p>"
    parts = [
        "<table><tr><th>when (UTC)</th><th>mode</th><th>engine</th>"
        "<th>aggregate qps</th><th>delta</th><th>cells</th></tr>"
    ]
    last_by_mode: dict[str, float] = {}
    for row in rows:
        stamp = row.get("t")
        when = (
            time.strftime("%Y-%m-%d %H:%M", time.gmtime(stamp))
            if isinstance(stamp, (int, float))
            else "baseline"
        )
        mode = str(row.get("mode", "?"))
        aggregate = float(row.get("aggregate_qps", 0.0))
        previous = last_by_mode.get(mode)
        delta = (
            f"{(aggregate / previous - 1.0) * 100:+.0f}%" if previous else "-"
        )
        last_by_mode[mode] = aggregate
        parts.append(
            f"<tr><td>{_esc(when)}</td><td>{_esc(mode)}</td>"
            f"<td>{_esc(row.get('engine_version', '?'))}</td>"
            f"<td>{aggregate:,.0f}</td><td>{_esc(delta)}</td>"
            f"<td>{len(row.get('cells', {}))}</td></tr>"
        )
    parts.append("</table>")
    return "".join(parts)


def _audit_section(payload: dict, top: int = 8) -> str:
    """One decision-audit report payload as tiles + tables."""
    tiles = [
        _tile("decisions", str(payload["decisions"])),
        _tile("unserved", str(payload["unserved"])),
        _tile("imposed", str(payload["imposed"])),
        _tile("anomalies", str(payload["anomaly_count"])),
    ]
    ranked = sorted(
        payload["providers"],
        key=lambda row: (-row["allocations"], row["provider"]),
    )
    parts = [
        f"<h2>Decision audit — {_esc(payload['method'])} "
        f"seed {_esc(payload['seed'])}</h2>",
        f'<div class="tiles">{"".join(tiles)}</div>',
        "<table><tr><th>provider</th><th>allocations</th><th>share</th>"
        "<th>capacity share</th><th>imposed</th></tr>",
    ]
    for row in ranked[:top]:
        parts.append(
            f"<tr><td>{row['provider']}</td><td>{row['allocations']}</td>"
            f"<td>{row['share'] * 100:.1f}%</td>"
            f"<td>{row['capacity_share'] * 100:.1f}%</td>"
            f"<td>{row['imposed']}</td></tr>"
        )
    parts.append("</table>")
    if payload["anomalies"]:
        parts.append("<ul>")
        for anomaly in payload["anomalies"]:
            detail = {
                key: value
                for key, value in sorted(anomaly.items())
                if key != "kind"
            }
            parts.append(
                f"<li><b>{_esc(anomaly['kind'])}</b> "
                f"{_esc(json.dumps(detail, sort_keys=True))}</li>"
            )
        parts.append("</ul>")
    else:
        parts.append("<p>no anomalies detected.</p>")
    return "".join(parts)


def render_bundle(
    events: list[dict],
    bench: dict | None = None,
    title: str = "repro fleet ops bundle",
    bench_history: list[dict] | None = None,
    audit: list[dict] | None = None,
) -> str:
    """The full HTML document for ``events`` (a merged stream)."""
    timeline = drain_timeline(events)
    report = aggregate_events(events)
    drain = timeline["drain"]
    critical = timeline["critical_path"]

    tiles = [
        _tile("jobs", str(drain["jobs"])),
        _tile("workers", str(drain["workers"])),
        _tile("processes", str(drain["processes"])),
        _tile("drain wall", _fmt(drain["wall_s"])),
        _tile("events", str(drain["events"])),
        _tile("orphan spans", str(drain["orphan_spans"])),
    ]
    critical_html = ""
    if critical:
        longest = critical["longest_job"]
        critical_html = (
            f"<p>straggler <b>{_esc(critical['straggler'])}</b> "
            f"(chain {_fmt(critical['chain_s'])} over "
            f"{len(critical['jobs'])} jobs); longest job "
            f"<b>{_esc(longest['id'])}</b> on "
            f"{_esc(longest['owner'])} "
            f"({_fmt(longest['wall_s'])} wall, "
            f"{_fmt(longest['execute_s'])} execute).</p>"
        )

    # Embedded machine-readable copy: sorted keys, NaN refused — the
    # same canonical-JSON discipline as the figure catalog's exports.
    # "</" must not appear inside a <script> element's text.
    blob = json.dumps(
        {
            "timeline": timeline,
            "report": report,
            "bench": bench,
            "bench_history": bench_history,
            "audit": audit,
        },
        sort_keys=True,
        allow_nan=False,
        indent=1,
    ).replace("</", "<\\/")

    sections = [
        "<!doctype html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        f'<div class="tiles">{"".join(tiles)}</div>',
        "<h2>Worker lanes</h2>",
        _lanes_svg(timeline),
        "<h2>Drain decomposition</h2>",
        _workers_table(timeline),
        critical_html,
        "<h2>Engine phases (count-weighted merged quantiles)</h2>",
        _phases_table(timeline),
        "<h2>Fleet counters</h2>",
        _counters_table(report),
    ]
    if bench is not None:
        sections += ["<h2>Committed benchmark baseline</h2>",
                     _bench_table(bench)]
    if bench_history is not None:
        sections += ["<h2>Benchmark history</h2>",
                     _history_table(bench_history)]
    for payload in audit or ():
        sections.append(_audit_section(payload))
    sections += [
        "<details><summary>Machine-readable data</summary>",
        f'<pre><script type="application/json" id="bundle-data">{blob}'
        "</script></pre></details>",
        "</body></html>",
    ]
    return "\n".join(section for section in sections if section) + "\n"


def write_bundle(
    path: Path | str,
    events: list[dict],
    bench: dict | None = None,
    title: str = "repro fleet ops bundle",
    bench_history: list[dict] | None = None,
    audit: list[dict] | None = None,
) -> Path:
    """Render and atomically write the bundle; returns the path."""
    from repro.telemetry.events import atomic_write_bytes

    path = Path(path)
    atomic_write_bytes(
        path,
        render_bundle(
            events, bench, title, bench_history=bench_history, audit=audit
        ).encode("utf-8"),
    )
    return path
