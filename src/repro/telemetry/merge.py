"""``repro telemetry merge``: one canonical stream per fleet drain.

A fleet drain leaves one events file per process (coordinator, each
worker, each pool child).  This module unions them into a single
merged stream with a *canonical* order, so that every downstream
consumer — the timeline, the ops bundle, a plain ``grep`` — sees the
same bytes no matter which process flushed last or what order the
filesystem lists files in.

Canonical order is ``(t_wall, pid, id, encoded line)``: wall-clock
first so the stream reads as a fleet chronology, with the process id,
per-process sequence id, and finally the full encoded line as
tie-breakers — a total order over any input, so the merge is
deterministic and re-merging an unchanged directory is byte-identical
(the CI smoke diffs exactly that).

The merged file ends with one ``merge``-kind manifest event recording
the input files, the event count, and a digest of the merged lines.
Its timestamp is the newest input event's (never the merging wall
clock), which is what keeps warm re-merges byte-identical.  Inputs are
read through :func:`repro.telemetry.events.read_events`, so a torn or
tampered file refuses the whole merge loudly; the output is written
with the same tempfile + rename idiom every other artifact uses.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from repro.telemetry.events import (
    EVENT_SCHEMA_VERSION,
    TelemetryReadError,
    atomic_write_bytes,
    encode_event,
    read_events,
)

__all__ = ["MERGED_EVENTS_NAME", "load_stream", "merge_events"]

#: Default output name.  Deliberately outside the ``events-*.jsonl``
#: input glob so a merged file sitting in the telemetry directory is
#: never re-consumed as an input by the next merge.
MERGED_EVENTS_NAME = "merged.jsonl"


def _sort_key(entry: tuple[dict, str]) -> tuple:
    event, line = entry
    return (event["t_wall"], event["pid"], event["id"], line)


def merge_events(
    run_dir: Path | str, out: Path | str | None = None
) -> dict:
    """Merge every per-process events file under ``run_dir``.

    Returns a summary dict (``out``, ``files``, ``events``,
    ``digest``).  Raises :class:`TelemetryReadError` when the
    directory is missing, holds no events files, or any input refuses
    verification.
    """
    run_dir = Path(run_dir)
    if not run_dir.is_dir():
        raise TelemetryReadError(f"no telemetry directory at {run_dir}")
    out = run_dir / MERGED_EVENTS_NAME if out is None else Path(out)

    sources: list[Path] = [
        path
        for path in sorted(run_dir.glob("events-*.jsonl"))
        if not path.name.startswith(".")
    ]
    if not sources:
        raise TelemetryReadError(
            f"no events-*.jsonl files under {run_dir}; nothing to merge"
        )

    entries: list[tuple[dict, str]] = []
    for path in sources:
        for event in read_events(path):
            entries.append((event, encode_event(event)))
    entries.sort(key=_sort_key)

    lines = [line for _, line in entries]
    stream = "\n".join(lines)
    digest = hashlib.sha256(stream.encode("utf-8")).hexdigest()[:16]
    newest = max((event["t_wall"] for event, _ in entries), default=0.0)
    manifest = {
        "v": EVENT_SCHEMA_VERSION,
        "kind": "merge",
        "name": "manifest",
        "id": 0,
        "parent": None,
        "pid": 0,
        "t_wall": newest,
        "dur_s": 0.0,
        "attrs": {
            "files": [path.name for path in sources],
            "events": len(lines),
            "stream_digest": digest,
        },
    }
    lines.append(encode_event(manifest))
    atomic_write_bytes(out, ("\n".join(lines) + "\n").encode("utf-8"))
    return {
        "out": str(out),
        "files": len(sources),
        "events": len(entries),
        "digest": digest,
    }


def load_stream(path: Path | str) -> list[dict]:
    """Events from a merged file, a single events file, or a directory.

    A directory prefers its :data:`MERGED_EVENTS_NAME` when present and
    otherwise unions the raw per-process files (unsorted inputs are
    fine for every aggregate consumer; use :func:`merge_events` when
    canonical bytes matter).
    """
    path = Path(path)
    if path.is_dir():
        merged = path / MERGED_EVENTS_NAME
        if merged.is_file():
            return read_events(merged)
        from repro.telemetry.events import read_events_dir

        return read_events_dir(path)
    return read_events(path)
