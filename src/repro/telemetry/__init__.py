"""Unified telemetry: counters, streaming timers, and span events.

Stdlib-only by design (the engine's hot path imports this package), and
strictly opt-in: with no ``$REPRO_TELEMETRY_DIR`` and no
:func:`configure_telemetry` call, :func:`get_telemetry` returns ``None``
and every instrumentation site short-circuits — a disabled run is
bit-identical to the uninstrumented seed and never touches an RNG.

Fleet-wide correlation rides on top: trace ids
(:mod:`repro.telemetry.tracing`) join every process's events, the
merge/timeline/bundle read side (:mod:`repro.telemetry.merge`,
:mod:`~repro.telemetry.timeline`, :mod:`~repro.telemetry.bundle`)
reconstructs a drain from them, and :mod:`repro.telemetry.profiling`
adds opt-in per-job cProfile capture — all equally no-ops when off.
"""

from repro.telemetry.bundle import render_bundle, write_bundle
from repro.telemetry.events import (
    EVENT_SCHEMA_VERSION,
    TelemetryReadError,
    atomic_write_bytes,
    encode_event,
    read_events,
    read_events_dir,
    verify_event,
)
from repro.telemetry.merge import (
    MERGED_EVENTS_NAME,
    load_stream,
    merge_events,
)
from repro.telemetry.profiling import (
    PROFILE_DIR_ENV,
    active_profile_dir,
    collect_hotspots,
    format_hotspots,
    profile_job,
)
from repro.telemetry.quantiles import P2Quantile
from repro.telemetry.registry import (
    TELEMETRY_DIR_ENV,
    Telemetry,
    TimerStats,
    configure_telemetry,
    get_telemetry,
    telemetry_from_environment,
    telemetry_session,
)
from repro.telemetry.report import (
    aggregate_events,
    format_telemetry_report,
    telemetry_report,
)
from repro.telemetry.timeline import (
    drain_timeline,
    format_timeline,
    timeline_from_path,
)
from repro.telemetry.tracing import (
    current_trace_id,
    mint_trace_id,
    trace_scope,
)

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "MERGED_EVENTS_NAME",
    "P2Quantile",
    "PROFILE_DIR_ENV",
    "TELEMETRY_DIR_ENV",
    "Telemetry",
    "TelemetryReadError",
    "TimerStats",
    "active_profile_dir",
    "aggregate_events",
    "atomic_write_bytes",
    "collect_hotspots",
    "configure_telemetry",
    "current_trace_id",
    "drain_timeline",
    "encode_event",
    "format_hotspots",
    "format_telemetry_report",
    "format_timeline",
    "get_telemetry",
    "load_stream",
    "merge_events",
    "mint_trace_id",
    "profile_job",
    "read_events",
    "read_events_dir",
    "render_bundle",
    "telemetry_from_environment",
    "telemetry_report",
    "telemetry_session",
    "timeline_from_path",
    "trace_scope",
    "verify_event",
    "write_bundle",
]
