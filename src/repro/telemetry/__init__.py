"""Unified telemetry: counters, streaming timers, and span events.

Stdlib-only by design (the engine's hot path imports this package), and
strictly opt-in: with no ``$REPRO_TELEMETRY_DIR`` and no
:func:`configure_telemetry` call, :func:`get_telemetry` returns ``None``
and every instrumentation site short-circuits — a disabled run is
bit-identical to the uninstrumented seed and never touches an RNG.
"""

from repro.telemetry.events import (
    EVENT_SCHEMA_VERSION,
    TelemetryReadError,
    atomic_write_bytes,
    encode_event,
    read_events,
    read_events_dir,
    verify_event,
)
from repro.telemetry.quantiles import P2Quantile
from repro.telemetry.registry import (
    TELEMETRY_DIR_ENV,
    Telemetry,
    TimerStats,
    configure_telemetry,
    get_telemetry,
    telemetry_from_environment,
    telemetry_session,
)
from repro.telemetry.report import (
    format_telemetry_report,
    telemetry_report,
)

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "P2Quantile",
    "TELEMETRY_DIR_ENV",
    "Telemetry",
    "TelemetryReadError",
    "TimerStats",
    "atomic_write_bytes",
    "configure_telemetry",
    "encode_event",
    "format_telemetry_report",
    "get_telemetry",
    "read_events",
    "read_events_dir",
    "telemetry_from_environment",
    "telemetry_report",
    "telemetry_session",
    "verify_event",
]
