"""The process-local telemetry registry and its enable/disable plumbing.

One :class:`Telemetry` instance per process aggregates three metric
kinds — monotonic **counters**, last-value **gauges**, and streaming
**timers** (count/sum/min/max plus P² p50/p90/p99) — and collects the
span-scoped structured events defined in
:mod:`repro.telemetry.events`.  Producers (engine, executor, store,
queue, worker) reach it through :func:`get_telemetry`, which returns
``None`` when telemetry is disabled; every hook is guarded by that
``None`` check, so a disabled run pays one attribute load per hook
site and nothing else.

Invariants the rest of the repo relies on:

* **No-op when disabled** — ``get_telemetry()`` is ``None`` unless
  ``$REPRO_TELEMETRY_DIR`` is set or :func:`configure_telemetry` was
  called; no file is touched, no clock read on the hot path.
* **Never touches an RNG stream** — the registry observes wall/perf
  clocks only.  Enabling telemetry must leave every simulation output
  bit-identical (the golden tests assert this both ways).
* **One event schema** — everything flushed here round-trips through
  :func:`repro.telemetry.events.read_events`.

Process-pool children are handled explicitly: a forked child inherits
the parent's registry object, so :func:`get_telemetry` re-resolves
from the environment whenever the cached instance's pid is not the
current process — each pool worker writes its own events file and
never doubles the parent's.
"""

from __future__ import annotations

import itertools
import os
import socket
import time
from contextlib import contextmanager
from pathlib import Path

from repro.telemetry.events import (
    EVENT_SCHEMA_VERSION,
    atomic_write_bytes,
    encode_event,
)
from repro.telemetry.tracing import current_trace_id

__all__ = [
    "TELEMETRY_DIR_ENV",
    "Telemetry",
    "TimerStats",
    "configure_telemetry",
    "get_telemetry",
    "telemetry_from_environment",
    "telemetry_session",
]

#: Setting this environment variable to a directory enables telemetry
#: process-wide (pool children included — they re-read it on first use)
#: and directs every process's events file there.
TELEMETRY_DIR_ENV = "REPRO_TELEMETRY_DIR"

#: Quantiles every timer tracks.
_TIMER_QUANTILES = (0.5, 0.9, 0.99)

_instance_counter = itertools.count()


class TimerStats:
    """Streaming duration statistics: count/sum/min/max + P² quantiles."""

    __slots__ = ("count", "total", "min", "max", "_quantiles")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        from repro.telemetry.quantiles import P2Quantile

        self._quantiles = tuple(P2Quantile(q) for q in _TIMER_QUANTILES)

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        for quantile in self._quantiles:
            quantile.observe(seconds)

    def snapshot(self) -> dict:
        """JSON-ready statistics of everything observed so far."""
        payload = {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.total / self.count if self.count else 0.0,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
        }
        for quantile in self._quantiles:
            payload[f"p{int(round(quantile.q * 100))}_s"] = quantile.value()
        return payload


class Telemetry:
    """One process's counters, gauges, timers, and span events.

    Parameters
    ----------
    events_dir:
        Directory the events file is flushed into (created on first
        flush).  ``None`` keeps the registry in-memory only — metrics
        and events accumulate and can be inspected programmatically
        (the perf harness's phase breakdown), but nothing hits disk.
    """

    def __init__(self, events_dir: Path | str | None = None) -> None:
        self.pid = os.getpid()
        self.events_dir = Path(events_dir) if events_dir is not None else None
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.timers: dict[str, TimerStats] = {}
        self._events: list[dict] = []
        self._span_stack: list[int] = []
        self._next_span = itertools.count(1)
        token = next(_instance_counter)
        self._events_name = (
            f"events-{socket.gethostname()}-{self.pid}-{token}.jsonl"
        )

    # -- metrics ------------------------------------------------------

    def count(self, name: str, delta: float = 1) -> None:
        """Add ``delta`` to counter ``name`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        self.gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        """Feed one duration into streaming timer ``name``."""
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = TimerStats()
        timer.observe(seconds)

    # -- spans and events ---------------------------------------------

    def span_open(self, kind: str, name: str) -> int:
        """Open a span; returns its id.  Close with :meth:`span_close`.

        Spans nest LIFO: an event or span opened while this one is the
        innermost records it as parent.
        """
        span_id = next(self._next_span)
        self._span_stack.append(span_id)
        return span_id

    def span_close(
        self,
        span_id: int,
        kind: str,
        name: str,
        duration_s: float,
        attrs: dict | None = None,
    ) -> None:
        """Close a span, appending its event (parent = enclosing span)."""
        stack = self._span_stack
        if stack and stack[-1] == span_id:
            stack.pop()
        self._append(kind, name, duration_s, attrs, span_id=span_id)

    @contextmanager
    def span(self, kind: str, name: str, attrs: dict | None = None):
        """Context manager over :meth:`span_open`/:meth:`span_close`."""
        span_id = self.span_open(kind, name)
        started = time.perf_counter()
        try:
            yield span_id
        finally:
            self.span_close(
                span_id, kind, name, time.perf_counter() - started, attrs
            )

    def event(
        self,
        kind: str,
        name: str,
        attrs: dict | None = None,
        duration_s: float = 0.0,
    ) -> None:
        """Append one instantaneous (or pre-timed) event."""
        self._append(kind, name, duration_s, attrs, span_id=None)

    def _append(
        self,
        kind: str,
        name: str,
        duration_s: float,
        attrs: dict | None,
        span_id: int | None,
    ) -> None:
        parent = self._span_stack[-1] if self._span_stack else None
        # Correlation is attrs-only: when a trace scope is active, every
        # event minted under it carries the fleet-wide join key without
        # any envelope (schema) change.  An explicit attrs["trace"] from
        # the producer wins over the ambient scope.
        attrs = dict(attrs) if attrs else {}
        trace = current_trace_id()
        if trace is not None:
            attrs.setdefault("trace", trace)
        event = {
            "v": EVENT_SCHEMA_VERSION,
            "kind": kind,
            "name": name,
            "id": span_id if span_id is not None else next(self._next_span),
            "parent": parent,
            "pid": self.pid,
            "t_wall": time.time(),
            "dur_s": float(duration_s),
            "attrs": attrs,
        }
        self._events.append(event)

    @property
    def events(self) -> list[dict]:
        """The events collected so far (live list; treat as read-only)."""
        return self._events

    def phase_seconds(self) -> dict[str, float]:
        """Total seconds per engine phase across the collected events."""
        totals: dict[str, float] = {}
        for event in self._events:
            if event["kind"] == "phase":
                name = event["name"]
                totals[name] = totals.get(name, 0.0) + event["dur_s"]
        return totals

    # -- persistence --------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready registry state (counters, gauges, timer stats)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {
                name: timer.snapshot()
                for name, timer in sorted(self.timers.items())
            },
        }

    def flush(self) -> Path | None:
        """Atomically (re)write this process's events file.

        The file holds every event so far plus one trailing
        ``snapshot`` event with the current registry state, so readers
        always see a consistent prefix-complete view; repeated flushes
        replace the file wholesale (no append, no torn tails).
        Returns the path, or ``None`` in in-memory mode.
        """
        if self.events_dir is None:
            return None
        self.events_dir.mkdir(parents=True, exist_ok=True)
        path = self.events_dir / self._events_name
        snapshot_event = {
            "v": EVENT_SCHEMA_VERSION,
            "kind": "snapshot",
            "name": "registry",
            "id": 0,
            "parent": None,
            "pid": self.pid,
            "t_wall": time.time(),
            "dur_s": 0.0,
            "attrs": self.snapshot(),
        }
        lines = [
            encode_event(event)
            for event in (*self._events, snapshot_event)
        ]
        atomic_write_bytes(
            path, ("\n".join(lines) + "\n").encode("utf-8")
        )
        return path


# ---------------------------------------------------------------------
# process-wide active registry
# ---------------------------------------------------------------------

_active: Telemetry | None = None
_resolved = False


def telemetry_from_environment() -> Telemetry | None:
    """A registry per ``$REPRO_TELEMETRY_DIR`` (unset/empty → ``None``)."""
    events_dir = os.environ.get(TELEMETRY_DIR_ENV, "").strip()
    return Telemetry(events_dir) if events_dir else None


def get_telemetry() -> Telemetry | None:
    """The process's active registry, or ``None`` when disabled.

    Resolved lazily from the environment on first call; a forked pool
    child that inherited the parent's registry re-resolves so each
    process owns its events file and nothing is double-counted.
    """
    global _active, _resolved
    if not _resolved or (
        _active is not None and _active.pid != os.getpid()
    ):
        _active = telemetry_from_environment()
        _resolved = True
    return _active


def configure_telemetry(
    events_dir: Path | str | None = None, enabled: bool = True
) -> Telemetry | None:
    """Install (or clear) the process-wide registry explicitly.

    ``enabled=False`` disables telemetry regardless of the
    environment; otherwise a fresh registry is installed, flushing to
    ``events_dir`` (``None`` = in-memory only).
    """
    global _active, _resolved
    _active = Telemetry(events_dir) if enabled else None
    _resolved = True
    return _active


@contextmanager
def telemetry_session(events_dir: Path | str | None = None):
    """Scoped registry for tests and the perf harness.

    Installs a fresh registry, yields it, and restores whatever was
    active before — including the unresolved lazy state, so a session
    inside a disabled process leaves it disabled.
    """
    global _active, _resolved
    previous = (_active, _resolved)
    telemetry = Telemetry(events_dir)
    _active, _resolved = telemetry, True
    try:
        yield telemetry
    finally:
        _active, _resolved = previous
