"""Digest-stamped JSONL span events: one schema, atomic files.

Every telemetry event — run/cell/phase spans, queue protocol events,
registry snapshots — is one JSON object per line with a common envelope
(:data:`EVENT_SCHEMA_VERSION`, a per-process sequence id, an optional
parent span id, a kind, a name, wall-clock timestamp, duration, and a
free-form ``attrs`` dict).  Each line carries a ``digest`` stamp — the
truncated SHA-256 of the line's canonical JSON without the stamp — so
the read side can tell a complete, untampered event from a torn or
hand-edited one and refuse loudly instead of aggregating garbage.

Files are written whole via the result store's tempfile +
``os.replace`` idiom (re-implemented here rather than imported: the
store transitively imports the engine, and the engine imports this
package — telemetry stays stdlib-only and import-cycle-free), so a
reader never observes a partially-written file from a live writer;
a torn file therefore indicates real corruption, not a race.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "TelemetryReadError",
    "atomic_write_bytes",
    "encode_event",
    "read_events",
    "read_events_dir",
]

#: Bump when the event envelope changes incompatibly.  One schema for
#: every producer — engine, executor, store, queue — is an invariant:
#: the report surface parses exactly one shape.
EVENT_SCHEMA_VERSION = 1

#: Hex digits of the SHA-256 kept as the per-line stamp.
_DIGEST_LENGTH = 16


class TelemetryReadError(ValueError):
    """A telemetry events file is torn, tampered, or not this schema."""


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write-then-rename so readers never see a partial file.

    Same idiom (and dot-prefixed temp naming, so queue gc recognises
    orphans) as ``repro.experiments.store._atomic_write_bytes``.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _canonical(event: dict) -> str:
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def _stamp(event: dict) -> str:
    return hashlib.sha256(
        _canonical(event).encode("utf-8")
    ).hexdigest()[:_DIGEST_LENGTH]


def encode_event(event: dict) -> str:
    """One event as its stamped JSONL line (no trailing newline).

    The digest covers the canonical JSON of everything *except* the
    stamp itself, so verification is a recompute-and-compare.
    """
    body = {key: value for key, value in event.items() if key != "digest"}
    body["digest"] = _stamp(body)
    return _canonical(body)


def verify_event(event: dict) -> bool:
    """Whether ``event``'s digest stamp matches its content."""
    stamp = event.get("digest")
    if not isinstance(stamp, str):
        return False
    body = {key: value for key, value in event.items() if key != "digest"}
    return _stamp(body) == stamp


def read_events(path: Path | str) -> list[dict]:
    """Every event of one JSONL file, refusing torn or tampered lines.

    Raises :class:`TelemetryReadError` on the first undecodable or
    digest-mismatched line — a file written through
    :func:`atomic_write_bytes` is all-or-nothing, so a bad line means
    the file was truncated, concatenated, or edited and *none* of it
    should be trusted for aggregation.

    A zero-byte file is *not* torn: a worker killed between ``mkstemp``
    and its first flush leaves one behind legitimately, and it simply
    holds no events.  Queue gc/fsck age-gate such husks away like any
    other atomic-write litter.
    """
    path = Path(path)
    events: list[dict] = []
    text = path.read_text(encoding="utf-8")
    if not text:
        return events
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            raise TelemetryReadError(
                f"{path}:{number}: torn or non-JSON event line "
                f"({error.msg}); refusing the whole file"
            ) from None
        if not isinstance(event, dict) or not verify_event(event):
            raise TelemetryReadError(
                f"{path}:{number}: event digest mismatch — the file was "
                "tampered with or corrupted; refusing the whole file"
            )
        if event.get("v") != EVENT_SCHEMA_VERSION:
            raise TelemetryReadError(
                f"{path}:{number}: unsupported event schema "
                f"{event.get('v')!r} (this reader is "
                f"v{EVENT_SCHEMA_VERSION})"
            )
        events.append(event)
    return events


def read_events_dir(run_dir: Path | str) -> list[dict]:
    """All events under one telemetry run directory, file by file.

    Files are read in sorted-name order; dot-prefixed entries (atomic
    temp files of a live writer) are skipped, mirroring the queue's
    ``_live_entries`` convention.
    """
    run_dir = Path(run_dir)
    if not run_dir.is_dir():
        raise TelemetryReadError(f"no telemetry directory at {run_dir}")
    events: list[dict] = []
    for path in sorted(run_dir.glob("events-*.jsonl")):
        if path.name.startswith("."):
            continue
        events.extend(read_events(path))
    return events
