"""Read-side aggregation of a telemetry run directory.

A run directory holds one ``events-*.jsonl`` file per participating
process (serial runs: one file; pool or fleet drains: several).  The
report walks every verified event, totals the per-phase engine spans,
merges the trailing registry snapshots, and derives the cache-efficacy
table the ISSUE asks for — candidate-cache hit rate, result-store hit
rate, and the ring-log fast-path share.

Merging notes: counters and gauge/timer count/total/min/max merge
exactly across processes; P² quantile markers do not, so merged
quantiles are the observation-count-weighted average of the per-process
estimates — close enough for the few-percent band the human format
rounds to, and flagged nowhere else.
"""

from __future__ import annotations

from pathlib import Path

from repro.telemetry.events import read_events_dir

__all__ = [
    "aggregate_events",
    "format_telemetry_report",
    "telemetry_report",
]

#: Engine phases in hot-path order; the report lists them this way.
PHASE_ORDER = (
    "arrival",
    "candidate_lookup",
    "scoring",
    "ranking",
    "log_push",
)

_QUANTILE_KEYS = ("p50_s", "p90_s", "p99_s")


def _merge_timer(merged: dict, snapshot: dict) -> None:
    count = snapshot.get("count", 0)
    merged["count"] += count
    merged["total_s"] += snapshot.get("total_s", 0.0)
    merged["max_s"] = max(merged["max_s"], snapshot.get("max_s", 0.0))
    if count:
        if merged["_min_seen"]:
            merged["min_s"] = min(merged["min_s"], snapshot.get("min_s", 0.0))
        else:
            merged["min_s"] = snapshot.get("min_s", 0.0)
            merged["_min_seen"] = True
        for key in _QUANTILE_KEYS:
            value = snapshot.get(key)
            if isinstance(value, (int, float)) and value == value:
                merged["_q_sums"][key] += value * count
                merged["_q_counts"][key] += count


def _rate(hits: float, misses: float) -> float | None:
    total = hits + misses
    return hits / total if total else None


def telemetry_report(run_dir: Path | str) -> dict:
    """Aggregate one telemetry run directory into a JSON-ready report."""
    report = aggregate_events(read_events_dir(run_dir))
    report["run_dir"] = str(Path(run_dir))
    return report


def aggregate_events(events: list[dict]) -> dict:
    """Aggregate an event list (directory walk or merged stream).

    The ops bundle feeds a merged stream through the same aggregation
    the directory report uses, so both surfaces always agree.
    """
    phases: dict[str, float] = {}
    spans = {"run": 0, "cell": 0}
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    timers: dict[str, dict] = {}
    processes: set[int] = set()

    for event in events:
        kind = event["kind"]
        if kind == "merge":
            continue
        processes.add(event["pid"])
        if kind == "phase":
            name = event["name"]
            phases[name] = phases.get(name, 0.0) + event["dur_s"]
        elif kind in spans:
            spans[kind] += 1
        elif kind == "snapshot":
            attrs = event["attrs"]
            for name, value in attrs.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            # Gauges are last-value; across processes keep the max
            # (they record sizes, not instants, everywhere we set them).
            for name, value in attrs.get("gauges", {}).items():
                gauges[name] = max(gauges.get(name, value), value)
            for name, snapshot in attrs.get("timers", {}).items():
                merged = timers.get(name)
                if merged is None:
                    merged = timers[name] = {
                        "count": 0,
                        "total_s": 0.0,
                        "min_s": 0.0,
                        "max_s": 0.0,
                        "_min_seen": False,
                        "_q_sums": {key: 0.0 for key in _QUANTILE_KEYS},
                        "_q_counts": {key: 0 for key in _QUANTILE_KEYS},
                    }
                _merge_timer(merged, snapshot)

    for merged in timers.values():
        count = merged["count"]
        merged["mean_s"] = merged["total_s"] / count if count else 0.0
        for key in _QUANTILE_KEYS:
            weight = merged["_q_counts"][key]
            merged[key] = merged["_q_sums"][key] / weight if weight else None
        del merged["_min_seen"], merged["_q_sums"], merged["_q_counts"]

    phase_total = sum(phases.values())
    phase_rows = [
        {
            "phase": name,
            "total_s": phases[name],
            "share": phases[name] / phase_total if phase_total else 0.0,
        }
        for name in (
            *(p for p in PHASE_ORDER if p in phases),
            *sorted(p for p in phases if p not in PHASE_ORDER),
        )
    ]

    caches = {
        "candidate_cache": {
            "hits": counters.get("engine.candidate_cache_hits", 0),
            "misses": counters.get("engine.candidate_cache_misses", 0),
            "hit_rate": _rate(
                counters.get("engine.candidate_cache_hits", 0),
                counters.get("engine.candidate_cache_misses", 0),
            ),
        },
        "result_store": {
            "hits": counters.get("store.hits", 0),
            "misses": counters.get("store.misses", 0),
            "hit_rate": _rate(
                counters.get("store.hits", 0),
                counters.get("store.misses", 0),
            ),
        },
        "ring_push": {
            "uniform": counters.get("engine.ring_uniform_pushes", 0),
            "scattered": counters.get("engine.ring_scattered_pushes", 0),
            "scalar": counters.get("engine.ring_scalar_pushes", 0),
            "fast_path_share": _rate(
                counters.get("engine.ring_uniform_pushes", 0),
                counters.get("engine.ring_scattered_pushes", 0)
                + counters.get("engine.ring_scalar_pushes", 0),
            ),
        },
    }

    return {
        "events": sum(1 for e in events if e["kind"] != "merge"),
        "processes": len(processes),
        "runs": spans["run"],
        "cells": spans["cell"],
        "phases": phase_rows,
        "caches": caches,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "timers": dict(sorted(timers.items())),
    }


def _fmt_seconds(seconds: float | None) -> str:
    if seconds is None or seconds != seconds:
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}µs"


def _fmt_rate(rate: float | None) -> str:
    return "-" if rate is None else f"{rate * 100.0:5.1f}%"


def format_telemetry_report(report: dict) -> str:
    """Human-readable rendering of :func:`telemetry_report`."""
    lines = [
        f"telemetry: {report['run_dir']}",
        f"  events {report['events']}  processes {report['processes']}  "
        f"runs {report['runs']}  cells {report['cells']}",
    ]

    if report["phases"]:
        lines.append("  phase breakdown:")
        width = max(len(row["phase"]) for row in report["phases"])
        for row in report["phases"]:
            lines.append(
                f"    {row['phase']:<{width}}  "
                f"{_fmt_seconds(row['total_s']):>10}  "
                f"{row['share'] * 100.0:5.1f}%"
            )

    caches = report["caches"]
    lines.append("  cache efficacy:")
    candidate = caches["candidate_cache"]
    lines.append(
        f"    candidate cache  hit {_fmt_rate(candidate['hit_rate'])}  "
        f"({candidate['hits']:.0f} hit / {candidate['misses']:.0f} miss)"
    )
    store = caches["result_store"]
    lines.append(
        f"    result store     hit {_fmt_rate(store['hit_rate'])}  "
        f"({store['hits']:.0f} hit / {store['misses']:.0f} miss)"
    )
    ring = caches["ring_push"]
    lines.append(
        f"    ring push        fast {_fmt_rate(ring['fast_path_share'])}  "
        f"({ring['uniform']:.0f} uniform / {ring['scattered']:.0f} "
        f"scattered / {ring['scalar']:.0f} scalar)"
    )

    if report["timers"]:
        lines.append("  timers:")
        width = max(len(name) for name in report["timers"])
        for name, timer in report["timers"].items():
            lines.append(
                f"    {name:<{width}}  n={timer['count']:<8.0f}"
                f"mean {_fmt_seconds(timer['mean_s']):>10}  "
                f"p50 {_fmt_seconds(timer['p50_s']):>10}  "
                f"p99 {_fmt_seconds(timer['p99_s']):>10}  "
                f"max {_fmt_seconds(timer['max_s']):>10}"
            )

    interesting = [
        (name, value)
        for name, value in report["counters"].items()
        if not name.startswith(
            ("engine.candidate_cache", "engine.ring_", "store.hits",
             "store.misses")
        )
    ]
    if interesting:
        lines.append("  counters:")
        width = max(len(name) for name, _ in interesting)
        for name, value in interesting:
            lines.append(f"    {name:<{width}}  {value:.0f}")

    return "\n".join(lines)
