"""Opt-in per-job cProfile capture and fleet-wide hotspot aggregation.

Profiling is a third, fully independent observability switch: setting
``$REPRO_PROFILE_DIR`` (or ``repro queue work --profile DIR``) makes
the executor wrap each job in :class:`cProfile.Profile` and dump one
``profile-{host}-{pid}-{n}.pstats`` file per job into that directory.
Everything about it follows the telemetry package's rules:

* **off by default, zero hot-path cost when off** — the executor
  checks one pid-cached environment lookup and otherwise touches no
  profiler, file, or clock;
* **per-job flush** — stats are dumped as each job finishes (atomic
  dot-temp + rename), so process-pool children that are torn down with
  the pool never lose data;
* **stdlib only** — ``cProfile``/``pstats`` ship with CPython.

``repro telemetry hotspots`` then aggregates every dump under the
directory with :meth:`pstats.Stats.add` and reports a deterministic
top-N table by cumulative time — "where did the fleet's CPU go",
answered across processes, the profile-side complement of the
timeline's wall-clock answer.
"""

from __future__ import annotations

import cProfile
import itertools
import os
import socket
import tempfile
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "PROFILE_DIR_ENV",
    "active_profile_dir",
    "collect_hotspots",
    "format_hotspots",
    "profile_job",
]

#: Setting this environment variable to a directory enables per-job
#: profiling process-wide (fork-based pool children inherit it).
PROFILE_DIR_ENV = "REPRO_PROFILE_DIR"

_resolved_pid: int | None = None
_resolved_dir: Path | None = None
_dump_counter = itertools.count()


def active_profile_dir() -> Path | None:
    """The profile directory, or ``None`` when profiling is off.

    Cached per pid (same re-resolution contract as
    :func:`repro.telemetry.registry.get_telemetry`) so the disabled
    path costs one function call and an integer compare.
    """
    global _resolved_pid, _resolved_dir
    pid = os.getpid()
    if pid != _resolved_pid:
        value = os.environ.get(PROFILE_DIR_ENV, "").strip()
        _resolved_dir = Path(value) if value else None
        _resolved_pid = pid
    return _resolved_dir


@contextmanager
def profile_job(profile_dir: Path | None):
    """Profile the block and dump its stats, or do nothing when off.

    The dump goes through a dot-prefixed temporary and ``os.replace``
    like every other artifact, so readers never see a torn stats file
    and queue gc recognises crashed-writer litter.
    """
    if profile_dir is None:
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        profile_dir.mkdir(parents=True, exist_ok=True)
        name = (
            f"profile-{socket.gethostname()}-{os.getpid()}"
            f"-{next(_dump_counter)}.pstats"
        )
        path = profile_dir / name
        fd, tmp = tempfile.mkstemp(
            dir=profile_dir, prefix=f".{name}."
        )
        os.close(fd)
        try:
            profiler.dump_stats(tmp)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def collect_hotspots(profile_dir: Path | str, top: int = 15) -> dict:
    """Aggregate every per-job dump under ``profile_dir``.

    Returns ``{"jobs", "calls", "total_s", "rows"}`` where ``rows`` is
    the top-``top`` functions by cumulative time (ties broken by name,
    so the table is deterministic for a given set of dumps).
    """
    import pstats

    profile_dir = Path(profile_dir)
    paths = [
        path
        for path in sorted(profile_dir.glob("profile-*.pstats"))
        if not path.name.startswith(".")
    ]
    if not paths:
        raise FileNotFoundError(
            f"no profile-*.pstats files under {profile_dir}; run with "
            f"${PROFILE_DIR_ENV} or `queue work --profile` first"
        )
    stats = pstats.Stats(str(paths[0]))
    for path in paths[1:]:
        stats.add(str(path))
    rows = []
    for (filename, line, func), entry in stats.stats.items():
        cc, nc, tt, ct, _callers = entry
        where = os.path.basename(filename) if filename != "~" else "~"
        rows.append(
            {
                "function": f"{where}:{line}({func})",
                "ncalls": nc,
                "tottime_s": tt,
                "cumtime_s": ct,
            }
        )
    rows.sort(key=lambda row: (-row["cumtime_s"], row["function"]))
    return {
        "jobs": len(paths),
        "calls": int(stats.total_calls),
        "total_s": float(stats.total_tt),
        "rows": rows[:top],
    }


def format_hotspots(report: dict) -> str:
    """Human-readable top-N hotspot table."""
    lines = [
        "fleet hotspots (cumulative, all profiled jobs merged)",
        f"  jobs {report['jobs']}  calls {report['calls']}"
        f"  cpu {report['total_s']:.3f}s",
        "",
        "       ncalls  tottime  cumtime  function",
    ]
    for row in report["rows"]:
        lines.append(
            f"  {row['ncalls']:>11}"
            f" {row['tottime_s']:>8.3f}"
            f" {row['cumtime_s']:>8.3f}"
            f"  {row['function']}"
        )
    return "\n".join(lines)
