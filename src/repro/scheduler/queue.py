"""Durable, file-backed work queue for sweep jobs.

A queue directory turns a :class:`~repro.sweeps.spec.SweepSpec` into
per-job files that any number of worker daemons — on one machine or on
several sharing the directory over NFS/rsync — drain concurrently with
no coordinator process.  Everything is plain files and two primitives
the platform already makes atomic:

* **atomic write** (tempfile + ``os.replace``) for every record, so a
  crashed writer never leaves a half-written file; and
* **atomic rename** for state transitions, so exactly one worker wins a
  claim race and a loser simply moves on to the next ticket.

Layout under the queue root::

    queue.json            immutable queue description (spec, adaptive)
    jobs/<id>.json        immutable job records (scenario, method, seed)
    pending/<id>          claim tickets; present ⇔ job is up for grabs
    leases/<id>@<owner>   a claimed ticket, renamed here by the winner
    done/<id>.json        completion records written by ``ack``
    heartbeats/<owner>.json   per-worker liveness: an absolute deadline

The lease protocol:

1. ``claim(owner, ttl)`` first writes the owner's heartbeat (deadline =
   now + ttl), *then* renames ``pending/<id>`` →  ``leases/<id>@<owner>``.
   The rename is the commit point: exactly one rename on one source
   succeeds, and because the heartbeat already exists the new lease is
   never observed without a live deadline.
2. Workers renew the heartbeat periodically (one file per owner renews
   every lease that owner holds).
3. ``requeue_expired()`` — run opportunistically by every worker —
   renames leases whose owner's heartbeat deadline has passed (or whose
   heartbeat is missing) back into ``pending/``, bumping the ticket's
   ``attempts`` counter first.  A killed worker therefore loses
   nothing: its leases reappear for the survivors.
4. ``ack(lease, ...)`` writes ``done/<id>.json`` and then unlinks the
   lease.  If a worker dies between those two steps the scavenger sees
   the done record and discards the stale lease instead of requeueing.

Execution is therefore *at least once*: a job can run twice when a
worker is presumed dead but actually finished (or when a requeued
ticket races a slow owner).  That is safe by construction — results go
to the content-addressed :class:`~repro.experiments.store.ResultStore`,
where the second execution is a store hit (or an idempotent overwrite
of identical bytes), never a duplicate.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import tempfile
import time
from pathlib import Path

from repro.experiments.store import _atomic_write_bytes, cache_key
from repro.reliability.durability import (
    durable_writes_enabled,
    fsync_dir,
    fsync_fd,
)
from repro.reliability.failpoints import failpoint
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import ENGINE_VERSION
from repro.sweeps.spec import SweepJob, SweepSpec
from repro.telemetry.registry import get_telemetry
from repro.telemetry.tracing import mint_trace_id

__all__ = [
    "EXPIRY_CLOCKS",
    "GcReport",
    "Lease",
    "QueueCounts",
    "QueueJob",
    "RetryReport",
    "WorkQueue",
    "job_id",
    "sanitize_owner",
]

#: Bump when the on-disk queue layout changes incompatibly.
QUEUE_FORMAT = 1

#: How lease expiry derives "now" and the deadline.  ``wall`` compares
#: the heartbeat's recorded absolute deadline against the scavenger's
#: wall clock (multi-box queues need NTP).  ``mtime`` is skew-immune:
#: the deadline is the heartbeat *file's* mtime plus the recorded TTL,
#: and "now" is the shared filesystem's own clock (probed by writing a
#: scratch file) — one clock, the file server's, no matter how many
#: boxes share the queue.
EXPIRY_CLOCKS = ("wall", "mtime")

#: How many times a job may be attempted (claims after requeues and
#: failures) before it is parked as a ``done/`` error record instead of
#: being retried — a poison job must not crash-loop the fleet forever.
DEFAULT_MAX_ATTEMPTS = 3

#: Separates the job id from the owner id in lease file names; both
#: sides are sanitised so the partition is unambiguous.
_LEASE_SEPARATOR = "@"

_SAFE_COMPONENT = re.compile(r"[^A-Za-z0-9._-]+")


def _sanitize(component: str) -> str:
    """A filename- and separator-safe version of an id component."""
    safe = _SAFE_COMPONENT.sub("-", component)
    if not safe:
        raise ValueError(f"unusable id component {component!r}")
    return safe


#: Public alias: callers that record an owner id anywhere (manifests,
#: reports) must store the same sanitised form the queue files use.
sanitize_owner = _sanitize


def _telemetry_note(
    action: str, attrs: dict | None = None, event: bool = True
) -> None:
    """Mirror one queue protocol action into the active telemetry.

    No-op (one function call and a None check) when telemetry is
    disabled.  ``event=False`` counts without recording a structured
    event — heartbeats renew every ttl/3 seconds per worker and would
    drown the event stream.
    """
    telemetry = get_telemetry()
    if telemetry is None:
        return
    telemetry.count(f"queue.{action}")
    if event:
        telemetry.event("queue", action, attrs)


def _live_entries(directory: Path) -> list[Path]:
    """Directory entries that are real queue records.

    ``_atomic_write_bytes`` stages dot-prefixed temp files in the same
    directory before the ``os.replace``; a concurrent reader must never
    treat one as a ticket/lease (claiming a half-written ticket or
    "scavenging" an attempts-bump temp would corrupt the protocol).
    """
    if not directory.is_dir():
        return []
    return sorted(
        path
        for path in directory.iterdir()
        if not path.name.startswith(".")
    )


def job_id(scenario: str, method: str, seed: int) -> str:
    """Deterministic, filename-safe id of one sweep cell.

    Every controller replica derives the same id for the same cell, so
    concurrent enqueue attempts (two drained workers both extending a
    scenario) deduplicate on the job file instead of double-queueing.
    """
    return f"{_sanitize(scenario)}--{_sanitize(method)}--s{int(seed)}"


@dataclasses.dataclass(frozen=True)
class QueueJob:
    """One immutable queued unit of work.

    ``trace`` is the fleet-wide telemetry correlation id, minted
    deterministically at enqueue time (see
    :meth:`WorkQueue.trace_id`); queues written before tracing carry
    no ``trace`` key and claimers re-derive the identical id.
    """

    id: str
    scenario: str
    method: str
    seed: int
    key: str  # the result-store cache key this job will produce
    trace: str | None = None


@dataclasses.dataclass(frozen=True)
class Lease:
    """A claimed job: proof that ``owner`` won the ticket rename."""

    job: QueueJob
    owner: str
    path: Path


@dataclasses.dataclass(frozen=True)
class RetryReport:
    """What one :meth:`WorkQueue.retry_errors` pass did.

    ``requeued`` are error-parked jobs returned to ``pending/`` with a
    fresh attempts budget; ``reticketed`` are stranded jobs (a job
    record with no ticket, lease, or done record — the footprint of a
    crash between an enqueue's two writes or between a retry's two
    steps) whose tickets were recreated; ``skipped`` are ids that could
    not be retried, with reasons.
    """

    requeued: tuple[str, ...]
    reticketed: tuple[str, ...]
    skipped: tuple[tuple[str, str], ...]


@dataclasses.dataclass(frozen=True)
class GcReport:
    """What :meth:`WorkQueue.gc` found (and, with ``prune``, removed).

    ``temp_files`` are orphaned atomic-write temporaries (dot-prefixed
    stage files older than the age threshold — a crashed writer's
    litter, invisible to queue scans but disk-visible forever);
    ``stale_heartbeats`` are heartbeats of owners far past their
    deadline holding no leases; ``stranded_jobs`` are job ids with no
    live state (fix with ``retry``, not ``gc``).
    """

    temp_files: tuple[Path, ...]
    stale_heartbeats: tuple[str, ...]
    stranded_jobs: tuple[str, ...]
    pruned: bool

    @property
    def clean(self) -> bool:
        return not (
            self.temp_files or self.stale_heartbeats or self.stranded_jobs
        )


@dataclasses.dataclass(frozen=True)
class QueueCounts:
    """Point-in-time queue depth."""

    jobs: int
    pending: int
    leased: int
    done: int

    @property
    def drained(self) -> bool:
        """No work outstanding (pending and leased both empty)."""
        return self.pending == 0 and self.leased == 0


def _read_json(path: Path) -> dict | None:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _write_json(path: Path, payload: dict) -> None:
    _atomic_write_bytes(
        path, json.dumps(payload, sort_keys=True, indent=1).encode("utf-8")
    )


def _create_json_exclusive(path: Path, payload: dict) -> bool:
    """Atomically create ``path`` only if it does not exist yet.

    Write-to-temp + ``os.link`` gives both atomicity (the linked file
    is complete) and exclusivity (link fails if the name exists) —
    ``os.replace`` would clobber and ``O_EXCL`` alone is not atomic.
    Returns False when the path already existed.
    """
    data = json.dumps(payload, sort_keys=True, indent=1).encode("utf-8")
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if durable_writes_enabled():
                handle.flush()
                fsync_fd(handle.fileno())
        try:
            os.link(tmp, path)
        except FileExistsError:
            return False
        if durable_writes_enabled():
            fsync_dir(path.parent)
        return True
    finally:
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - already gone
            pass


class WorkQueue:
    """A durable queue of sweep jobs under one directory.

    Open an existing queue with ``WorkQueue(root)``; create one with
    :meth:`WorkQueue.init`.  All mutating operations are safe to run
    concurrently from any number of processes sharing the directory.
    """

    def __init__(
        self,
        root: Path | str,
        clock: str = "wall",
        _allow_unready: bool = False,
    ) -> None:
        if clock not in EXPIRY_CLOCKS:
            raise ValueError(
                f"unknown expiry clock {clock!r}; "
                f"available: {', '.join(EXPIRY_CLOCKS)}"
            )
        #: The clock this handle judges liveness with.  Everything that
        #: derives "now" or a heartbeat deadline without an explicit
        #: argument (heartbeat, claim, requeue_expired, status readers)
        #: consults this — a queue opened with ``--expiry-clock mtime``
        #: must never silently fall back to the local wall clock.
        self.clock = clock
        self.root = Path(root)
        payload = _read_json(self._queue_file)
        if payload is None:
            raise FileNotFoundError(
                f"no queue at {self.root} (run 'repro queue init' first)"
            )
        if payload.get("format") != QUEUE_FORMAT:
            raise ValueError(
                f"queue {self.root} has format {payload.get('format')!r}; "
                f"this build reads format {QUEUE_FORMAT}"
            )
        if not payload.get("ready", False) and not _allow_unready:
            # init marks the queue ready only after the full grid is
            # enqueued; without the gate a crash mid-init would leave a
            # partial grid indistinguishable from a drained sweep.
            raise ValueError(
                f"queue {self.root} was never fully initialised "
                "(init crashed mid-enqueue?); delete the directory and "
                "re-run 'repro queue init'"
            )
        self._payload = payload
        self._spec = SweepSpec(**payload["spec"])
        self._configs: dict[str, SimulationConfig] | None = None
        # (monotonic at probe, filesystem now at probe) — see
        # _filesystem_now_cached.
        self._clock_probe: tuple[float, float] | None = None

    # -- creation -----------------------------------------------------

    @classmethod
    def init(
        cls,
        root: Path | str,
        spec: SweepSpec,
        adaptive: dict | None = None,
    ) -> "WorkQueue":
        """Create a queue directory and enqueue the spec's full grid.

        ``adaptive`` is the optional payload of an
        :class:`~repro.scheduler.adaptive.AdaptiveConfig`; it is stored
        verbatim so every worker derives the same controller.
        """
        root = Path(root)
        queue_file = root / "queue.json"
        if queue_file.exists():
            raise FileExistsError(
                f"queue already initialised at {root}; "
                "point init at a fresh directory"
            )
        root.mkdir(parents=True, exist_ok=True)
        for name in ("jobs", "pending", "leases", "done", "heartbeats"):
            (root / name).mkdir(exist_ok=True)
        payload = {
            "format": QUEUE_FORMAT,
            "name": spec.name,
            "spec": spec.payload(),
            "spec_hash": spec.spec_hash(),
            "engine_version": ENGINE_VERSION,
            "adaptive": adaptive,
            "ready": False,
        }
        _write_json(queue_file, payload)
        queue = cls(root, _allow_unready=True)
        queue.enqueue(spec.expand())
        # The ready flip is the init commit point: workers refuse a
        # queue whose grid might be partial.
        payload["ready"] = True
        _write_json(queue_file, payload)
        queue._payload = payload
        return queue

    # -- paths --------------------------------------------------------

    @property
    def _queue_file(self) -> Path:
        return self.root / "queue.json"

    @property
    def jobs_dir(self) -> Path:
        return self.root / "jobs"

    @property
    def pending_dir(self) -> Path:
        return self.root / "pending"

    @property
    def leases_dir(self) -> Path:
        return self.root / "leases"

    @property
    def done_dir(self) -> Path:
        return self.root / "done"

    @property
    def heartbeats_dir(self) -> Path:
        return self.root / "heartbeats"

    @property
    def counters_dir(self) -> Path:
        """Per-worker telemetry counters, next to the heartbeats.

        Created lazily by the first :meth:`write_worker_counters` —
        pre-telemetry queues never grow it and the on-disk format tag
        (:data:`QUEUE_FORMAT`) is unchanged.
        """
        return self.root / "counters"

    # -- identity -----------------------------------------------------

    @property
    def name(self) -> str:
        return self._payload["name"]

    @property
    def spec(self) -> SweepSpec:
        return self._spec

    @property
    def spec_hash(self) -> str:
        return self._payload["spec_hash"]

    @property
    def adaptive_payload(self) -> dict | None:
        return self._payload.get("adaptive")

    def config_for(self, scenario: str) -> SimulationConfig:
        """The fully built config of one catalog scenario at the
        queue's scale (memoised; identical on every worker)."""
        if self._configs is None:
            from repro.sweeps.scenarios import scenario_catalog

            catalog = scenario_catalog(self._spec.scale)
            self._configs = {
                name: entry.config for name, entry in catalog.items()
            }
        return self._configs[scenario]

    def trace_id(self, identifier: str) -> str:
        """The fleet-wide trace id of job ``identifier`` in this queue.

        Deterministic over (spec hash, job id): re-enqueueing the same
        cell mints the same id (idempotent enqueue stays a
        byte-identical no-op) and pre-tracing queues can be joined by
        deriving the id after the fact.
        """
        return mint_trace_id("queue", self.spec_hash, identifier)

    # -- enqueue ------------------------------------------------------

    def enqueue(self, sweep_jobs: list[SweepJob]) -> int:
        """Add jobs, skipping ids with live state (ticket, lease, or
        done record); returns how many were actually added.

        Deduping on the *live* state rather than the job record makes
        enqueue both idempotent under replica races (controllers that
        derive the same extension add each job once) and self-repairing
        after a crash between the job-record write and the ticket write
        — the next replica recreates the missing ticket (the job-record
        rewrite is an identical-bytes no-op).  The residual race — two
        processes both passing the check — at worst re-creates a ticket
        for a job another worker is already running, which the
        at-least-once contract absorbs.
        """
        leased_ids = {
            path.name.partition(_LEASE_SEPARATOR)[0]
            for path in _live_entries(self.leases_dir)
        }
        added = 0
        for sweep_job in sweep_jobs:
            identifier = job_id(
                sweep_job.scenario, sweep_job.method, sweep_job.seed
            )
            if (
                (self.pending_dir / identifier).exists()
                or identifier in leased_ids
                or (self.done_dir / f"{identifier}.json").exists()
            ):
                continue
            record = QueueJob(
                id=identifier,
                scenario=sweep_job.scenario,
                method=sweep_job.method,
                seed=sweep_job.seed,
                key=cache_key(
                    self.config_for(sweep_job.scenario),
                    sweep_job.method,
                    sweep_job.seed,
                ),
                trace=self.trace_id(identifier),
            )
            # Job record first, then the ticket: a ticket never exists
            # without its (immutable) description.
            failpoint("queue.enqueue.record")
            _write_json(
                self.jobs_dir / f"{identifier}.json",
                dataclasses.asdict(record),
            )
            failpoint("queue.enqueue.ticket")
            _write_json(self.pending_dir / identifier, {"attempts": 0})
            added += 1
        return added

    # -- leasing ------------------------------------------------------

    def now(self) -> float:
        """"Now" under this queue's configured expiry clock.

        The filesystem's clock for ``mtime`` queues (cached probe), the
        local wall clock otherwise.
        """
        return (
            self._filesystem_now_cached()
            if self.clock == "mtime"
            else time.time()
        )

    def heartbeat(
        self, owner: str, ttl: float, now: float | None = None
    ) -> None:
        """Publish/renew ``owner``'s liveness deadline (now + ttl).

        ``now`` defaults to :meth:`now` — the configured expiry clock —
        so the recorded absolute deadline is consistent with how an
        ``mtime`` fleet's scavengers will judge it even if one of them
        falls back to the wall path.
        """
        now = self.now() if now is None else now
        # Record the sanitised owner: it's the form the lease filenames
        # carry, so liveness lookups join on one spelling.  The TTL is
        # recorded alongside the absolute deadline so mtime-clock
        # scavengers can derive a deadline from the file's own mtime.
        owner = _sanitize(owner)
        failpoint("queue.heartbeat")
        _write_json(
            self.heartbeats_dir / f"{owner}.json",
            {
                "owner": owner,
                "deadline": now + float(ttl),
                "ttl": float(ttl),
                "pid": os.getpid(),
            },
        )
        _telemetry_note("heartbeat", event=False)

    def retire(self, owner: str) -> None:
        """Remove ``owner``'s heartbeat — call on clean worker exit.

        Without this, status reports the exited worker as alive (and
        the ETA divides by it) until the stale deadline lapses.  Any
        lease the owner somehow still held simply expires immediately,
        which is exactly what a scavenger should see.
        """
        (
            self.heartbeats_dir / f"{_sanitize(owner)}.json"
        ).unlink(missing_ok=True)

    def claim(
        self,
        owner: str,
        ttl: float,
        now: float | None = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> Lease | None:
        """Try to lease one pending job; ``None`` when nothing pending.

        The heartbeat is written *before* the ticket rename so a fresh
        lease is never observable without a live deadline.
        """
        owner = _sanitize(owner)
        tickets = _live_entries(self.pending_dir)
        if not tickets:
            # Nothing to claim: skip the heartbeat write.  An idle
            # worker polls claim() twice a second, and the heartbeater
            # thread already renews at ttl/3 — the protocol only needs
            # a live deadline before a rename is attempted.
            return None
        self.heartbeat(owner, ttl, now)
        for ticket in tickets:
            target = self.leases_dir / (
                f"{ticket.name}{_LEASE_SEPARATOR}{owner}"
            )
            failpoint("queue.claim.before_rename")
            try:
                os.rename(ticket, target)
            except FileNotFoundError:
                continue  # another worker won this ticket
            failpoint("queue.claim.after_rename")
            record = _read_json(self.jobs_dir / f"{ticket.name}.json")
            if record is None:
                # Unreadable job record.  On a shared filesystem this
                # can be transient (NFS attribute caching, a momentary
                # EIO), so retry with the attempts budget rather than
                # condemning the cell outright.
                self._retry_or_park(
                    target,
                    ticket.name,
                    owner,
                    "unreadable job record",
                    max_attempts,
                )
                continue
            job = QueueJob(
                id=record["id"],
                scenario=record["scenario"],
                method=record["method"],
                seed=int(record["seed"]),
                key=record["key"],
                trace=record.get("trace") or self.trace_id(record["id"]),
            )
            # Re-publish the heartbeat now that the rename has landed:
            # an exiting same-owner session may have retired the
            # pre-rename heartbeat in the window before our rename, and
            # a lease must never sit without a live deadline.
            self.heartbeat(owner, ttl, now)
            _telemetry_note(
                "claim",
                {"id": job.id, "owner": owner, "trace": job.trace},
            )
            return Lease(job=job, owner=owner, path=target)
        return None

    def _retry_or_park(
        self,
        lease_path: Path,
        identifier: str,
        owner: str,
        error: str,
        max_attempts: int,
    ) -> str:
        """Requeue a failed lease, or park it as an error record once
        its attempts budget is spent.  Returns ``requeued`` / ``error``.
        """
        ticket = _read_json(lease_path)
        if ticket is None:
            if not lease_path.exists():
                # The lease is already gone — scavenged by
                # requeue_expired (our heartbeat lapsed mid-execution)
                # or acked elsewhere.  Recreating it here would inject
                # a phantom ticket and reset the attempts counter;
                # whoever took it owns it now.
                return "gone"
            # Present but transiently unreadable (NFS attribute cache,
            # momentary EIO): deciding now would reset the attempts
            # counter to 1 and un-bound the retry budget.  Leave the
            # lease alone; the next scavenger pass retries the read.
            return "skipped"
        if (self.done_dir / f"{identifier}.json").exists():
            # An ack landed between the caller's checks and our read:
            # done wins.  Requeueing now would resurrect a ticket for
            # finished work (and our rewrite would recreate the lease
            # file ack just unlinked).
            lease_path.unlink(missing_ok=True)
            return "gone"
        attempts = int(ticket.get("attempts", 0)) + 1
        if attempts >= max_attempts:
            # Exclusive create: a concurrent ack may have landed a real
            # completion between the caller's checks and here, and an
            # error verdict must never clobber a real result (ack's
            # overwrite in the other direction is intentional).
            failpoint("queue.park")
            created = _create_json_exclusive(
                self.done_dir / f"{identifier}.json",
                {
                    "id": identifier,
                    "state": "error",
                    "error": error,
                    "owner": owner,
                    "attempts": attempts,
                },
            )
            lease_path.unlink(missing_ok=True)
            if created:
                _telemetry_note(
                    "park",
                    {
                        "id": identifier,
                        "owner": owner,
                        "error": error,
                        "trace": self.trace_id(identifier),
                    },
                )
                return "error"
            return "gone"
        failpoint("queue.requeue")
        _write_json(lease_path, {"attempts": attempts})
        try:
            os.rename(lease_path, self.pending_dir / identifier)
        except FileNotFoundError:
            pass  # a concurrent scavenger already returned it
        _telemetry_note(
            "requeue",
            {
                "id": identifier,
                "owner": owner,
                "trace": self.trace_id(identifier),
            },
        )
        return "requeued"

    def fail(
        self,
        lease: Lease,
        error: str,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> str:
        """Record a failed execution: requeue within the attempts
        budget, park as a ``done/`` error record beyond it.

        Returns ``requeued`` or ``error``.  Either way the worker moves
        on — a poison job must never crash-loop the fleet.
        """
        return self._retry_or_park(
            lease.path, lease.job.id, lease.owner, error, max_attempts
        )

    def ack(
        self,
        lease: Lease,
        state: str,
        duration_s: float | None = None,
    ) -> None:
        """Record completion and release the lease.

        ``state`` is ``simulated`` or ``store_hit`` (the executor's
        ground truth), matching the sweep-manifest vocabulary.
        """
        failpoint("queue.ack.before_done")
        _write_json(
            self.done_dir / f"{lease.job.id}.json",
            {
                **dataclasses.asdict(lease.job),
                "owner": lease.owner,
                "state": state,
                "duration_s": duration_s,
            },
        )
        # Done record first, lease unlink second: a crash in between
        # leaves a stale lease the scavenger discards (done wins),
        # never a lost result.
        failpoint("queue.ack.after_done")
        lease.path.unlink(missing_ok=True)
        # The trace and duration ride the ack attrs so a store-hit job
        # (which emits no cell span anywhere) is still fully accounted
        # for in the merged timeline.
        _telemetry_note(
            "ack",
            {
                "id": lease.job.id,
                "owner": lease.owner,
                "state": state,
                "trace": lease.job.trace or self.trace_id(lease.job.id),
                "duration_s": duration_s,
            },
        )

    def filesystem_now(self) -> float:
        """The shared filesystem's idea of "now".

        Writes a scratch file under the queue root and reads back its
        mtime — on NFS that timestamp comes from the file *server*, so
        every scavenger probing it sees one clock regardless of local
        skew.  The scratch name is dot-prefixed, so queue scans ignore
        it even if a crash leaks one (``gc --prune`` sweeps those up).
        """
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".clockprobe.")
        try:
            os.fsync(fd)  # force the server-side timestamp (portable)
            return os.fstat(fd).st_mtime
        finally:
            os.close(fd)
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover - already gone
                pass

    #: How long a filesystem clock probe stays fresh.  Between probes
    #: the cached value is extrapolated with the local *monotonic*
    #: clock (skew-free by definition), so the only drift is rate
    #: drift over a few seconds — negligible against lease TTLs.
    _CLOCK_PROBE_REFRESH = 15.0

    def _filesystem_now_cached(self) -> float:
        """`filesystem_now`, amortised for tight scavenging loops.

        A waiting worker scavenges twice a second for a whole drain
        tail; probing the file server on every pass (create + fsync +
        unlink) would turn an idle fleet into real server load.
        """
        mono = time.monotonic()
        if (
            self._clock_probe is None
            or mono - self._clock_probe[0] > self._CLOCK_PROBE_REFRESH
        ):
            self._clock_probe = (mono, self.filesystem_now())
        probed_mono, probed_fs = self._clock_probe
        return probed_fs + (mono - probed_mono)

    def _heartbeat_deadline(self, owner: str, clock: str) -> float:
        """The instant ``owner``'s liveness lapses, under either clock.

        ``-inf`` (immediately expired) when the heartbeat is missing or
        unreadable.  Under ``mtime`` the deadline is the heartbeat
        file's mtime plus its recorded TTL; a pre-TTL-field heartbeat
        (none are written anymore) degrades to its wall deadline.
        """
        path = self.heartbeats_dir / f"{owner}.json"
        heartbeat = _read_json(path)
        if not heartbeat or "deadline" not in heartbeat:
            return float("-inf")
        if clock == "mtime" and "ttl" in heartbeat:
            try:
                return path.stat().st_mtime + float(heartbeat["ttl"])
            except OSError:
                return float("-inf")
        return float(heartbeat["deadline"])

    def heartbeat_deadline(
        self, owner: str, clock: str | None = None
    ) -> float:
        """Public form of the deadline rule status readers must share.

        Defaults to this queue's configured clock so monitoring judges
        liveness exactly as the scavengers do.
        """
        return self._heartbeat_deadline(
            _sanitize(owner), self.clock if clock is None else clock
        )

    def requeue_expired(
        self,
        now: float | None = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        clock: str | None = None,
    ) -> list[str]:
        """Return expired leases to ``pending/``; returns their ids.

        A lease is expired when its owner's heartbeat deadline has
        passed or the heartbeat file is missing/unreadable.  Leases
        whose job already has a done record are discarded instead.
        Expiry consumes the same attempts budget as execution failures
        — a job that kills its worker outright (OOM, power loss) parks
        as an error record after ``max_attempts`` rather than
        crash-looping the fleet forever.  (If the presumed-dead owner
        does finish, its ``ack`` overwrites the error record: a real
        result always wins.)

        ``clock`` picks how expiry is judged (see
        :data:`EXPIRY_CLOCKS`): ``wall`` uses recorded absolute
        deadlines against this process's clock; ``mtime`` derives both
        the deadline (heartbeat mtime + TTL) and "now"
        (:meth:`filesystem_now`, unless an explicit ``now`` is passed)
        from the shared filesystem, so multi-box queues need no NTP.
        ``None`` (default) uses the clock the queue was opened with.
        """
        if clock is None:
            clock = self.clock
        if clock not in EXPIRY_CLOCKS:
            raise ValueError(
                f"unknown expiry clock {clock!r}; "
                f"available: {', '.join(EXPIRY_CLOCKS)}"
            )
        leases = _live_entries(self.leases_dir)
        if not leases:
            # Nothing to judge: skip the clock probe.  Idle waiting
            # workers call this twice a second, and under the mtime
            # clock each probe is a create+sync+unlink round trip
            # against the shared file server.
            return []
        if now is None:
            now = (
                self._filesystem_now_cached()
                if clock == "mtime"
                else time.time()
            )
        requeued: list[str] = []
        for lease_path in leases:
            identifier, sep, owner = lease_path.name.partition(
                _LEASE_SEPARATOR
            )
            if not sep:
                continue  # not a lease file
            if (self.done_dir / f"{identifier}.json").exists():
                lease_path.unlink(missing_ok=True)
                continue
            deadline = self._heartbeat_deadline(owner, clock)
            if deadline >= now:
                continue
            _telemetry_note(
                "expiry",
                {
                    "id": identifier,
                    "owner": owner,
                    "trace": self.trace_id(identifier),
                },
            )
            outcome = self._retry_or_park(
                lease_path,
                identifier,
                owner,
                f"lease expired (worker {owner} presumed dead)",
                max_attempts,
            )
            if outcome == "requeued":
                requeued.append(identifier)
        return requeued

    # -- introspection ------------------------------------------------

    def jobs(self) -> list[QueueJob]:
        """Every job ever enqueued, sorted by id."""
        records = []
        for path in sorted(self.jobs_dir.glob("*.json")):
            record = _read_json(path)
            if record is None:
                continue
            records.append(
                QueueJob(
                    id=record["id"],
                    scenario=record["scenario"],
                    method=record["method"],
                    seed=int(record["seed"]),
                    key=record["key"],
                    trace=record.get("trace"),
                )
            )
        return records

    def done_records(self) -> list[dict]:
        """Every completion record, sorted by job id."""
        records = []
        for path in sorted(self.done_dir.glob("*.json")):
            record = _read_json(path)
            if record is not None:
                records.append(record)
        return records

    def error_records(self) -> list[dict]:
        """Done records that are error parks, sorted by job id."""
        return [
            record
            for record in self.done_records()
            if record.get("state") == "error"
        ]

    def _live_ids(self) -> set[str]:
        """Ids with any live state: ticket, lease, or done record."""
        return (
            {path.name for path in _live_entries(self.pending_dir)}
            | {
                path.name.partition(_LEASE_SEPARATOR)[0]
                for path in _live_entries(self.leases_dir)
            }
            | {path.stem for path in self.done_dir.glob("*.json")}
        )

    def stranded_jobs(self) -> list[str]:
        """Job ids with no live state at all.

        The footprint of a crash between an enqueue's job-record write
        and its ticket write (or between a retry's done-unlink and
        ticket write): the job exists but nothing will ever run it.
        The adaptive controller re-enqueues these itself; non-adaptive
        queues repair them through :meth:`retry_errors`.
        """
        live = self._live_ids()
        return sorted(
            path.stem
            for path in self.jobs_dir.glob("*.json")
            if path.stem not in live
        )

    def retry_errors(self, ids: list[str] | None = None) -> RetryReport:
        """Requeue error-parked jobs with a fresh attempts budget.

        ``ids`` restricts the pass to specific job ids (default: every
        error record).  For each, the error record is unlinked *first*
        and the fresh ticket written second — the opposite order would
        let a scavenger see (lease, done-error) and discard a freshly
        claimed lease under the "done wins" rule.  A crash in between
        leaves the job stranded, which the same pass repairs next time
        (stranded jobs are re-ticketed here too).

        Unknown ids and records that are not error parks are skipped
        with a reason, never touched.
        """
        wanted = None if ids is None else set(ids)
        errors = {record["id"]: record for record in self.error_records()}
        # One stranded listing for both the skip filter and the
        # re-ticket pass: requeueing an error park only *adds* live
        # state, so the set cannot grow in between, and a job must
        # never be reported skipped and re-ticketed at once.
        stranded = set(self.stranded_jobs())
        requeued: list[str] = []
        skipped: list[tuple[str, str]] = []
        if wanted is not None:
            for identifier in sorted(wanted - set(errors) - stranded):
                if (self.done_dir / f"{identifier}.json").exists():
                    skipped.append(
                        (identifier, "done record is not an error park")
                    )
                else:
                    skipped.append((identifier, "no error record"))
        for identifier in sorted(errors):
            if wanted is not None and identifier not in wanted:
                continue
            if _read_json(self.jobs_dir / f"{identifier}.json") is None:
                # Without a readable job record a recreated ticket
                # could never be claimed into a runnable job.
                skipped.append((identifier, "unreadable job record"))
                continue
            (self.done_dir / f"{identifier}.json").unlink(missing_ok=True)
            _write_json(self.pending_dir / identifier, {"attempts": 0})
            requeued.append(identifier)
        reticketed: list[str] = []
        for identifier in sorted(stranded):
            if wanted is not None and identifier not in wanted:
                continue
            _write_json(self.pending_dir / identifier, {"attempts": 0})
            reticketed.append(identifier)
        return RetryReport(
            requeued=tuple(requeued),
            reticketed=tuple(reticketed),
            skipped=tuple(skipped),
        )

    def gc(
        self,
        prune: bool = False,
        now: float | None = None,
        temp_age: float = 3600.0,
        extra_roots: tuple[Path | str, ...] = (),
        heartbeat_grace: float = 3600.0,
    ) -> GcReport:
        """Find (and with ``prune``, remove) queue-directory litter.

        Orphaned atomic-write temporaries are dot-prefixed files older
        than ``temp_age`` seconds (younger ones may belong to a live
        writer and are left alone) in the queue directories and any
        ``extra_roots`` (the CLI passes the result store, its manifest
        directory, and the telemetry and audit directories).  Zero-byte
        ``events-*.jsonl`` husks — a worker killed between ``mkstemp``
        and its first telemetry flush — are age-gated the same way:
        they hold no events and nothing will ever write to them again.
        So are the decision-audit flush's crash footprints:
        ``*.npz.tmp`` husks and manifest-less ``*.npz`` shards (the
        manifest is the commit marker, so an unpaired shard is
        unreadable litter).
        Heartbeats are stale once their *file*
        has not been touched for ``heartbeat_grace`` seconds past the
        recorded TTL *and* the owner holds no leases — a crashed
        worker's last sign of life that would otherwise sit in
        ``status`` output forever.  Stranded jobs are reported for
        ``retry`` but never pruned: deleting state is not how a queue
        repairs itself.

        All ages are judged against the shared filesystem's clock
        (:meth:`filesystem_now`) and file mtimes — both stamped by the
        file server — so a skewed gc box can neither prune a live
        writer's seconds-old temp nor overlook a long-dead worker's
        heartbeat.  ``now`` overrides the probe (tests).
        """
        now = self.filesystem_now() if now is None else now
        directories = [
            self.root,
            self.jobs_dir,
            self.pending_dir,
            self.leases_dir,
            self.done_dir,
            self.heartbeats_dir,
            self.counters_dir,
            *(Path(root) for root in extra_roots),
        ]
        temp_files: list[Path] = []
        for directory in directories:
            if not directory.is_dir():
                continue
            for path in sorted(directory.iterdir()):
                if not path.is_file():
                    continue
                if not path.name.startswith("."):
                    # Aged zero-byte events files count as litter too,
                    # as are the audit flush's two crash footprints: a
                    # ``*.npz.tmp`` husk (killed between mkstemp and
                    # replace) and a manifest-less ``*.npz`` shard
                    # (killed between the shard and its manifest — the
                    # manifest is the commit marker, so nothing will
                    # ever read the shard).  Anything else undotted is
                    # a real record.
                    if (
                        path.name.startswith("events-")
                        and path.name.endswith(".jsonl")
                    ):
                        try:
                            if path.stat().st_size > 0:
                                continue
                        except OSError:
                            continue
                    elif path.name.endswith(".npz.tmp"):
                        pass
                    elif (
                        path.suffix == ".npz"
                        and not path.with_suffix(".json").exists()
                    ):
                        pass
                    else:
                        continue
                try:
                    age = now - path.stat().st_mtime
                except OSError:
                    continue
                if age >= temp_age:
                    temp_files.append(path)
        lease_owners = self.lease_owners()
        stale_heartbeats: list[str] = []
        for heartbeat in self.heartbeats():
            owner = heartbeat.get("owner")
            if not owner or lease_owners.get(owner):
                continue
            path = self.heartbeats_dir / f"{owner}.json"
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue
            ttl = float(heartbeat.get("ttl", 0.0))
            if age > ttl + heartbeat_grace:
                stale_heartbeats.append(owner)
        if prune:
            for path in temp_files:
                path.unlink(missing_ok=True)
            for owner in stale_heartbeats:
                (
                    self.heartbeats_dir / f"{owner}.json"
                ).unlink(missing_ok=True)
                # The worker's counter snapshot dies with its heartbeat
                # — a long-gone owner should drop off the dashboard too.
                (
                    self.counters_dir / f"{owner}.json"
                ).unlink(missing_ok=True)
        return GcReport(
            temp_files=tuple(temp_files),
            stale_heartbeats=tuple(stale_heartbeats),
            stranded_jobs=tuple(self.stranded_jobs()),
            pruned=prune,
        )

    def write_worker_counters(self, owner: str, payload: dict) -> None:
        """Atomically publish one worker's counter snapshot.

        Written by workers after every job (cheap: one small JSON next
        to the heartbeats), read by ``queue status --json`` and the
        ``queue top`` dashboard.  The directory is created on first
        write so pre-telemetry queues are untouched.
        """
        self.counters_dir.mkdir(parents=True, exist_ok=True)
        _write_json(
            self.counters_dir / f"{_sanitize(owner)}.json", payload
        )

    def worker_counters(self) -> dict[str, dict]:
        """owner → latest published counter snapshot (may be empty)."""
        counters: dict[str, dict] = {}
        if not self.counters_dir.is_dir():
            return counters
        for path in sorted(self.counters_dir.glob("*.json")):
            record = _read_json(path)
            if record is not None:
                counters[path.stem] = record
        return counters

    def lease_ages(self, now: float | None = None) -> list[dict]:
        """Every live lease with its age in seconds, oldest first.

        Age is derived from the lease file's mtime — the moment the
        claim rename (or the last attempts rewrite) landed — against
        the queue's configured expiry clock, so it is meaningful on
        mtime-clock multi-box queues too.
        """
        if now is None:
            now = self.now()
        ages = []
        for lease_path in _live_entries(self.leases_dir):
            identifier, sep, owner = lease_path.name.partition(
                _LEASE_SEPARATOR
            )
            if not sep:
                continue
            try:
                mtime = lease_path.stat().st_mtime
            except OSError:
                continue  # acked or scavenged mid-scan
            ages.append(
                {
                    "id": identifier,
                    "owner": owner,
                    "age_s": max(0.0, now - mtime),
                }
            )
        ages.sort(key=lambda entry: -entry["age_s"])
        return ages

    def heartbeats(self) -> list[dict]:
        """Every worker heartbeat on record, sorted by owner."""
        records = []
        for path in sorted(self.heartbeats_dir.glob("*.json")):
            record = _read_json(path)
            if record is not None:
                records.append(record)
        return records

    def lease_owners(self) -> dict[str, int]:
        """owner → number of leases currently held."""
        owners: dict[str, int] = {}
        for lease_path in _live_entries(self.leases_dir):
            _, sep, owner = lease_path.name.partition(_LEASE_SEPARATOR)
            if sep:
                owners[owner] = owners.get(owner, 0) + 1
        return owners

    def counts(self) -> QueueCounts:
        return QueueCounts(
            jobs=sum(1 for _ in self.jobs_dir.glob("*.json")),
            pending=len(_live_entries(self.pending_dir)),
            leased=len(_live_entries(self.leases_dir)),
            done=sum(1 for _ in self.done_dir.glob("*.json")),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        counts = self.counts()
        return (
            f"WorkQueue(root={str(self.root)!r}, name={self.name!r}, "
            f"pending={counts.pending}, leased={counts.leased}, "
            f"done={counts.done})"
        )
