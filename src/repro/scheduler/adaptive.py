"""Scenario-level adaptive seeding.

The paper fixes ``nbRepeat = 10`` for every cell, but scenarios differ
wildly in across-seed variance: a captive fixed-load run is nearly
deterministic while a churn-stress run is noisy.  The adaptive
controller spends repetition budget where the data demands it — after
each *completed* seed batch it computes the 95 % confidence interval of
the headline metric (post-warmup response time) across seeds and
enqueues another batch of seeds only while any method's CI half-width
still exceeds a threshold, capped at ``max_seeds`` per scenario.

The controller is deliberately stateless and replicated: every drained
worker runs :meth:`AdaptiveController.step` against the same queue and
store, derives the same decision from the same done-records, and the
queue's id-deduplicating ``enqueue`` turns concurrent identical
extensions into one.  A scenario whose current batch is still running
is left alone (``waiting``) — extensions happen only on complete
information, which is what makes replica decisions agree.

Seed extension is a deterministic ladder (odd numbers from 1009,
skipping anything already issued) so replicas also agree on *which*
seeds come next, and so adaptively added seeds never collide with the
paper's seed set.
"""

from __future__ import annotations

import dataclasses
import math

from repro.analysis.metrics import available_metrics, get_metric
from repro.experiments.executor import SimulationJob
from repro.experiments.store import ResultStore
from repro.scheduler.queue import WorkQueue, job_id
from repro.sweeps.aggregate import ci_halfwidth
from repro.sweeps.spec import SweepJob

__all__ = [
    "AdaptiveConfig",
    "AdaptiveController",
    "AdaptiveDecision",
    "extension_seeds",
]

#: First rung of the deterministic seed-extension ladder.
_EXTENSION_START = 1009


def extension_seeds(
    issued: tuple[int, ...], count: int
) -> tuple[int, ...]:
    """The next ``count`` extension seeds given what is already issued.

    Walks odd numbers from 1009 upward, skipping seeds already issued —
    pure function of the issued set, so every controller replica
    derives the same extension.
    """
    taken = set(issued)
    seeds: list[int] = []
    candidate = _EXTENSION_START
    while len(seeds) < count:
        if candidate not in taken:
            seeds.append(candidate)
        candidate += 2
    return tuple(seeds)


@dataclasses.dataclass(frozen=True)
class AdaptiveConfig:
    """Adaptive-seeding policy, stored verbatim in ``queue.json``.

    ``ci_threshold`` is the absolute 95 % CI half-width (in the
    metric's own units) below which a scenario counts as converged;
    ``seed_batch`` seeds are added per extension; ``max_seeds`` caps
    the total seeds a scenario may ever issue.  ``metric`` is any name
    from the :mod:`~repro.analysis.metrics` registry (the CLI's
    ``--ci-metric``); the default — the paper's headline post-warmup
    response time — is unchanged from before the registry existed.
    """

    ci_threshold: float
    max_seeds: int
    seed_batch: int = 2
    metric: str = "response_time_post_warmup"

    def __post_init__(self) -> None:
        if self.ci_threshold < 0:
            raise ValueError(
                f"ci_threshold must be >= 0, got {self.ci_threshold}"
            )
        if self.max_seeds < 1:
            raise ValueError(f"max_seeds must be >= 1, got {self.max_seeds}")
        if self.seed_batch < 1:
            raise ValueError(
                f"seed_batch must be >= 1, got {self.seed_batch}"
            )
        if self.metric not in available_metrics():
            raise ValueError(
                f"unknown convergence metric {self.metric!r}; "
                f"available: {', '.join(available_metrics())}"
            )

    def payload(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "AdaptiveConfig":
        return cls(**payload)


@dataclasses.dataclass(frozen=True)
class AdaptiveDecision:
    """What one controller step concluded for one scenario.

    ``action`` is one of ``waiting`` (batch still running, or results
    not visible in the configured store), ``converged`` (CI tight
    enough, no more seeds), ``capped`` (``max_seeds`` reached while
    still wide), ``error`` (a cell was error-parked — terminal, no CI
    can ever be computed), or ``extended`` (``new_seeds`` enqueued).
    ``halfwidth`` is NaN while undefined (fewer than two usable
    seeds).
    """

    scenario: str
    action: str
    seeds_done: tuple[int, ...]
    halfwidth: float
    new_seeds: tuple[int, ...] = ()


class AdaptiveController:
    """Drives seed extension for one queue against its result store."""

    def __init__(self, queue: WorkQueue, store: ResultStore) -> None:
        payload = queue.adaptive_payload
        if payload is None:
            raise ValueError(
                f"queue {queue.root} was initialised without adaptive "
                "seeding"
            )
        self.queue = queue
        self.store = store
        self.config = AdaptiveConfig.from_payload(payload)
        self._metric = get_metric(self.config.metric)
        # Converged/capped are terminal: no replica will ever extend
        # such a scenario again, so cache the verdict and spare the
        # idle-poll loop the per-(method, seed) store reads.
        self._terminal: dict[str, AdaptiveDecision] = {}

    # -- state reads --------------------------------------------------

    def _issued_seeds(self) -> dict[str, tuple[int, ...]]:
        """Per-scenario issued seeds, from job *filenames* alone.

        ``job_id`` encodes ``scenario--method--s<seed>`` and catalog
        scenario/registered method names never contain ``--``, so two
        readdirs (here and the done-id set) replace opening and parsing
        every job record on every idle poll — this runs twice a second
        per waiting worker against a possibly-shared filesystem.
        """
        issued: dict[str, set[int]] = {
            scenario: set() for scenario in self.queue.spec.scenarios
        }
        for path in self.queue.jobs_dir.glob("*.json"):
            parts = path.stem.rsplit("--", 2)
            if len(parts) != 3 or not parts[2].startswith("s"):
                continue
            scenario, _method, seed_text = parts
            try:
                seed = int(seed_text[1:])
            except ValueError:
                continue
            if scenario in issued:
                issued[scenario].add(seed)
        return {
            scenario: tuple(sorted(seeds))
            for scenario, seeds in issued.items()
        }

    def _done_seeds(
        self, scenario: str, issued: tuple[int, ...], done_ids: set[str]
    ) -> tuple[int, ...]:
        """Seeds for which *every* method of the spec has a done record."""
        methods = self.queue.spec.methods
        return tuple(
            sorted(
                seed
                for seed in issued
                if all(
                    job_id(scenario, method, seed) in done_ids
                    for method in methods
                )
            )
        )

    def _halfwidth(self, scenario: str, seeds: tuple[int, ...]) -> float:
        """Worst (largest) per-method CI half-width across ``seeds``.

        The metric is the configured registry metric (post-warmup
        response time unless ``--ci-metric`` chose another).  NaN when
        any method has fewer than two readable results — an undefined
        CI always counts as "not yet converged".
        """
        config = self.queue.config_for(scenario)
        worst = float("-inf")
        for method in self.queue.spec.methods:
            values = []
            for seed in seeds:
                result = self.store.get(config, method, seed)
                if result is not None:
                    values.append(self._metric.extract(result))
            width = ci_halfwidth(values)
            if math.isnan(width):
                return float("nan")
            worst = max(worst, width)
        return worst if worst > float("-inf") else float("nan")

    # -- the control step ---------------------------------------------

    def step(self) -> list[AdaptiveDecision]:
        """One control pass over every scenario; enqueues extensions.

        Deterministic given the queue's done-state, so replicated calls
        from concurrently drained workers agree; the queue's enqueue
        dedupe collapses their identical extensions into one.
        """
        scenarios = self.queue.spec.scenarios
        if len(self._terminal) == len(scenarios):
            # Every scenario reached a terminal verdict: skip the
            # jobs/done directory scans entirely — a standing worker
            # polls this twice a second against a shared filesystem.
            return [self._terminal[scenario] for scenario in scenarios]
        issued_by_scenario = self._issued_seeds()
        done_ids = {
            path.stem for path in self.queue.done_dir.glob("*.json")
        }
        live_ids = done_ids | {
            path.name for path in self.queue.pending_dir.glob("*")
        } | {
            path.name.partition("@")[0]
            for path in self.queue.leases_dir.glob("*")
        }
        decisions: list[AdaptiveDecision] = []
        for scenario in self.queue.spec.scenarios:
            if scenario in self._terminal:
                decisions.append(self._terminal[scenario])
                continue
            issued = issued_by_scenario.get(scenario, ())
            done = self._done_seeds(scenario, issued, done_ids)
            if set(done) != set(issued):
                # Repair before waiting: a crash between an extension's
                # job-record write and its ticket write leaves a job
                # with no live state (no ticket, lease, or done record)
                # — without re-driving the idempotent enqueue for those
                # the scenario would report "waiting" forever while the
                # queue counts as drained.  The listing snapshots can
                # transiently mis-flag a job mid-transition; enqueue's
                # own fresh per-job checks filter those out.
                stranded = [
                    SweepJob(
                        scenario=scenario,
                        job=SimulationJob(
                            self.queue.config_for(scenario),
                            method,
                            seed,
                        ),
                    )
                    for method in self.queue.spec.methods
                    for seed in issued
                    if job_id(scenario, method, seed) not in live_ids
                ]
                if stranded:
                    self.queue.enqueue(stranded)
                decisions.append(
                    AdaptiveDecision(
                        scenario=scenario,
                        action="waiting",
                        seeds_done=done,
                        halfwidth=float("nan"),
                    )
                )
                continue
            config = self.queue.config_for(scenario)
            if any(
                not self.store.contains(config, method, seed)
                for method in self.queue.spec.methods
                for seed in done
            ):
                # Done records without store results: either a cell was
                # error-parked (attempts exhausted — terminal for the
                # scenario, no CI can ever be computed) or this
                # controller is pointed at the wrong store.  Reading
                # the done records to tell them apart is fine here —
                # this branch is off the hot path.  A missing result
                # must never read as "high variance": a typo'd
                # --cache-dir would drive every scenario to max_seeds
                # with real simulations (queue_report refuses the same
                # mistake loudly).
                error_ids = {
                    record["id"]
                    for record in self.queue.done_records()
                    if record.get("state") == "error"
                }
                has_error = any(
                    job_id(scenario, method, seed) in error_ids
                    for method in self.queue.spec.methods
                    for seed in done
                )
                decision = AdaptiveDecision(
                    scenario=scenario,
                    action="error" if has_error else "waiting",
                    seeds_done=done,
                    halfwidth=float("nan"),
                )
                if has_error:
                    self._terminal[scenario] = decision
                decisions.append(decision)
                continue
            halfwidth = self._halfwidth(scenario, done)
            converged = (
                not math.isnan(halfwidth)
                and halfwidth <= self.config.ci_threshold
            )
            if converged:
                action, new_seeds = "converged", ()
            elif len(issued) >= self.config.max_seeds:
                action, new_seeds = "capped", ()
            else:
                budget = self.config.max_seeds - len(issued)
                new_seeds = extension_seeds(
                    issued, min(self.config.seed_batch, budget)
                )
                action = "extended"
                self.queue.enqueue(
                    [
                        SweepJob(
                            scenario=scenario,
                            job=SimulationJob(
                                self.queue.config_for(scenario),
                                method,
                                seed,
                            ),
                        )
                        for method in self.queue.spec.methods
                        for seed in new_seeds
                    ]
                )
            decision = AdaptiveDecision(
                scenario=scenario,
                action=action,
                seeds_done=done,
                halfwidth=halfwidth,
                new_seeds=tuple(new_seeds),
            )
            if action in ("converged", "capped"):
                self._terminal[scenario] = decision
            decisions.append(decision)
        return decisions

    def enqueued(self, decisions: list[AdaptiveDecision]) -> int:
        """How many jobs a set of decisions added to the queue."""
        return sum(
            len(d.new_seeds) * len(self.queue.spec.methods)
            for d in decisions
            if d.action == "extended"
        )
