"""``repro queue fleet``: a self-healing supervisor for worker fleets.

One ``repro queue work`` process drains a queue until it crashes; the
queue's lease TTL guarantees nothing is *lost* when it does, but
somebody still has to notice and start a replacement.  On a dev box
that somebody was a human.  :class:`FleetSupervisor` is the automated
version: it spawns ``N`` worker children, watches them, and restarts
any that die — under an explicit restart budget so a *poison
environment* (store directory unwritable, queue on a dead mount, a bug
that kills every worker instantly) parks the fleet with a clear verdict
instead of fork-bombing the machine with doomed workers.

Supervision rules:

* a child exiting **0** finished its drain — it is *done*, not
  restarted (when every child is done the fleet exits 0);
* a child exiting non-zero (including
  :data:`~repro.reliability.failpoints.CRASH_EXIT_CODE` from an
  injected hard crash) is restarted after an exponential backoff of
  ``min(cap, base * 2**restarts_of_that_slot)`` seconds;
* each restart spends one point of the fleet-wide ``restart_budget``;
  when the budget is gone the fleet **parks**: SIGTERMs the survivors,
  waits for them to drain, and reports failure (exit 2 in the CLI);
* SIGTERM/SIGINT to the supervisor fans SIGTERM out to every child —
  each worker finishes its in-flight job, acks, writes its manifest,
  and exits — then the supervisor reaps them all and exits.

Children are ordinary ``python -m repro queue work`` processes with
predictable owner ids (``<prefix>-0`` … ``<prefix>-N-1``), so their
heartbeats, counter snapshots, and manifests appear in ``repro queue
status`` / ``top`` exactly like hand-started workers.  The supervisor's
only mark on the queue directory is one *advisory* state file
(:data:`FLEET_STATE_NAME`, when ``state_path`` is set): its
restart-budget ledger, refreshed through the run and finalised with
``running: false`` on exit, which ``repro queue top`` surfaces while a
fleet is live.  No protocol logic ever reads it.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import subprocess
import sys
import time
from collections.abc import Callable
from pathlib import Path

from repro.telemetry.events import atomic_write_bytes

__all__ = [
    "ChildOutcome",
    "FLEET_STATE_NAME",
    "FleetReport",
    "FleetSupervisor",
    "worker_command",
]

#: Conventional name of the supervisor's advisory state file inside the
#: queue directory (the CLI passes ``<queue>/fleet.json``).
FLEET_STATE_NAME = "fleet.json"

#: Minimum seconds between steady-state state-file refreshes; events
#: (spawn, crash, restart, park) publish immediately regardless.
_STATE_REFRESH = 2.0

#: Backoff before restarting a crashed slot: base * 2**restarts, capped.
DEFAULT_BACKOFF_BASE = 0.5
DEFAULT_BACKOFF_CAP = 30.0

#: Fleet-wide restart budget.  Deliberately generous per slot (the
#: default scales with the fleet) — the budget exists to stop a *poison
#: environment*, not to punish one flaky crash.
DEFAULT_RESTARTS_PER_CHILD = 3


@dataclasses.dataclass(frozen=True)
class ChildOutcome:
    """How one fleet slot ended.

    ``state`` is ``drained`` (exited 0), ``crashed`` (non-zero, budget
    left it dead only because the fleet ended first), or ``parked``
    (terminated by the supervisor when the fleet parked or was told to
    stop).  ``restarts`` counts how many times this slot was respawned.
    """

    index: int
    owner: str
    state: str
    exit_code: int | None
    restarts: int


@dataclasses.dataclass(frozen=True)
class FleetReport:
    """What one supervised fleet session did."""

    children: tuple[ChildOutcome, ...]
    restarts: int
    parked: bool
    stopped_by_signal: bool

    @property
    def drained(self) -> bool:
        """Every slot finished its drain voluntarily."""
        return not self.parked and all(
            child.state == "drained" for child in self.children
        )

    def payload(self) -> dict:
        return {
            "drained": self.drained,
            "parked": self.parked,
            "restarts": self.restarts,
            "stopped_by_signal": self.stopped_by_signal,
            "children": [
                dataclasses.asdict(child) for child in self.children
            ],
        }


def worker_command(
    queue_dir: Path | str,
    owner: str,
    cache_dir: Path | str,
    worker_args: tuple[str, ...] = (),
) -> list[str]:
    """The argv of one fleet child: a plain ``repro queue work``."""
    return [
        sys.executable,
        "-m",
        "repro",
        "queue",
        "work",
        "--queue-dir",
        str(queue_dir),
        "--cache-dir",
        str(cache_dir),
        "--owner",
        owner,
        *worker_args,
    ]


@dataclasses.dataclass
class _Slot:
    index: int
    owner: str
    process: subprocess.Popen | None = None
    restarts: int = 0
    restart_at: float | None = None  # monotonic; None = not scheduled
    state: str = "pending"
    exit_code: int | None = None


class FleetSupervisor:
    """Spawn, watch, restart, and drain ``count`` worker children.

    Parameters
    ----------
    spawn:
        ``spawn(index, owner, attempt) -> Popen``-like (needs ``poll``,
        ``terminate``, ``wait``, ``pid``).  The CLI passes a closure
        over :func:`worker_command`; tests inject cheap stand-ins.
    count:
        Number of concurrent worker slots.
    restart_budget:
        Fleet-wide restarts before parking.  ``None`` derives
        ``count * DEFAULT_RESTARTS_PER_CHILD``.
    backoff_base / backoff_cap:
        Per-slot exponential restart backoff, seconds.
    poll_interval:
        Supervisor wake-up period, seconds.
    owner_prefix:
        Children are named ``<prefix>-<index>``.
    state_path:
        Optional path of the advisory state file (the CLI passes
        ``<queue>/fleet.json``).  Refreshed on every supervision event
        and at least every :data:`_STATE_REFRESH` seconds while
        polling; the final write stamps ``running: false`` so readers
        can tell a live fleet from a finished one.  ``None`` (default)
        publishes nothing.
    """

    def __init__(
        self,
        spawn: Callable[[int, str, int], subprocess.Popen],
        count: int,
        restart_budget: int | None = None,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        poll_interval: float = 0.2,
        owner_prefix: str = "fleet",
        on_event: Callable[[str], None] | None = None,
        state_path: Path | str | None = None,
    ) -> None:
        if count < 1:
            raise ValueError(f"fleet size must be >= 1, got {count}")
        self._spawn = spawn
        self.count = int(count)
        self.restart_budget = (
            count * DEFAULT_RESTARTS_PER_CHILD
            if restart_budget is None
            else int(restart_budget)
        )
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.poll_interval = float(poll_interval)
        self.owner_prefix = owner_prefix
        self._on_event = on_event
        self._stop_requested = False
        self.restarts = 0
        self.state_path = (
            Path(state_path) if state_path is not None else None
        )
        self._slots: list[_Slot] = []
        self._parked = False
        self._state_written = 0.0

    def request_stop(self) -> None:
        """Ask the fleet to drain: SIGTERM fan-out on the next poll."""
        self._stop_requested = True

    def _event(self, message: str) -> None:
        if self._on_event is not None:
            self._on_event(message)
        self._publish_state(running=True)

    def _publish_state(
        self, running: bool, throttle: bool = False
    ) -> None:
        """Atomically (re)write the advisory state file, if configured.

        Best-effort by design: the protocol never depends on this
        file, so a full disk or vanished directory must not take the
        supervisor down with it.
        """
        if self.state_path is None:
            return
        now = time.monotonic()
        if throttle and now - self._state_written < _STATE_REFRESH:
            return
        payload = {
            "pid": os.getpid(),
            "owner_prefix": self.owner_prefix,
            "count": self.count,
            "running": running,
            "parked": self._parked,
            "restarts": self.restarts,
            "restart_budget": self.restart_budget,
            "restarts_remaining": max(
                0, self.restart_budget - self.restarts
            ),
            "updated": time.time(),
            "children": [
                {
                    "owner": slot.owner,
                    "state": slot.state,
                    "restarts": slot.restarts,
                    "pid": (
                        slot.process.pid
                        if slot.process is not None
                        else None
                    ),
                }
                for slot in self._slots
            ],
        }
        try:
            atomic_write_bytes(
                self.state_path,
                json.dumps(payload, sort_keys=True).encode("utf-8"),
            )
            self._state_written = now
        except OSError:  # pragma: no cover - disk trouble
            pass

    def _terminate(self, slot: _Slot, state: str) -> None:
        process = slot.process
        if process is None or process.poll() is not None:
            if slot.state in ("running", "backoff"):
                slot.state = state
                if process is not None:
                    slot.exit_code = process.poll()
            return
        try:
            process.terminate()
        except OSError:  # pragma: no cover - already gone
            pass
        try:
            slot.exit_code = process.wait(timeout=30.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - wedged
            process.kill()
            slot.exit_code = process.wait()
        slot.state = state

    def run(self, install_signal_handlers: bool = False) -> FleetReport:
        """Supervise until every slot drains, the budget parks the
        fleet, or a stop is requested; returns the session report."""
        previous_handlers: list[tuple[int, object]] = []
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                previous_handlers.append((signum, signal.getsignal(signum)))
                signal.signal(signum, lambda *_: self.request_stop())

        slots = [
            _Slot(index=index, owner=f"{self.owner_prefix}-{index}")
            for index in range(self.count)
        ]
        self._slots = slots
        parked = False
        try:
            for slot in slots:
                slot.process = self._spawn(slot.index, slot.owner, 0)
                slot.state = "running"
                self._event(f"started {slot.owner} (pid {slot.process.pid})")
            while True:
                if self._stop_requested:
                    for slot in slots:
                        self._terminate(slot, "parked")
                    break
                active = False
                for slot in slots:
                    if slot.state == "running":
                        returncode = slot.process.poll()
                        if returncode is None:
                            active = True
                            continue
                        slot.exit_code = returncode
                        if returncode == 0:
                            slot.state = "drained"
                            self._event(f"{slot.owner} drained")
                            continue
                        if self.restarts >= self.restart_budget:
                            # Budget spent: this environment is poison.
                            # Park everything rather than fork-bomb.
                            slot.state = "crashed"
                            self._event(
                                f"{slot.owner} crashed (exit {returncode}); "
                                "restart budget exhausted — parking fleet"
                            )
                            parked = True
                            break
                        delay = min(
                            self.backoff_cap,
                            self.backoff_base * (2.0 ** slot.restarts),
                        )
                        slot.state = "backoff"
                        slot.restart_at = time.monotonic() + delay
                        self._event(
                            f"{slot.owner} crashed (exit {returncode}); "
                            f"restarting in {delay:.1f}s"
                        )
                        active = True
                    elif slot.state == "backoff":
                        active = True
                        if time.monotonic() >= (slot.restart_at or 0.0):
                            if self.restarts >= self.restart_budget:
                                # The budget is fleet-wide: another
                                # slot may have spent the last point
                                # while this one waited out its
                                # backoff.  Park, don't overspawn.
                                slot.state = "crashed"
                                self._event(
                                    f"{slot.owner} not restarted; "
                                    "restart budget exhausted — "
                                    "parking fleet"
                                )
                                parked = True
                                break
                            slot.restarts += 1
                            self.restarts += 1
                            slot.process = self._spawn(
                                slot.index, slot.owner, slot.restarts
                            )
                            slot.state = "running"
                            slot.restart_at = None
                            self._event(
                                f"restarted {slot.owner} "
                                f"(attempt {slot.restarts + 1}, "
                                f"pid {slot.process.pid})"
                            )
                if parked:
                    self._parked = True
                    for other in slots:
                        if other.state in ("running", "backoff"):
                            self._terminate(other, "parked")
                    break
                if not active:
                    break
                self._publish_state(running=True, throttle=True)
                time.sleep(self.poll_interval)
        finally:
            # Never leak children, whatever ended the loop.
            for slot in slots:
                if slot.state in ("running", "backoff"):
                    self._terminate(slot, "parked")
            for signum, handler in previous_handlers:
                signal.signal(signum, handler)
            self._parked = parked
            self._publish_state(running=False)

        return FleetReport(
            children=tuple(
                ChildOutcome(
                    index=slot.index,
                    owner=slot.owner,
                    state=slot.state,
                    exit_code=slot.exit_code,
                    restarts=slot.restarts,
                )
                for slot in slots
            ),
            restarts=self.restarts,
            parked=parked,
            stopped_by_signal=self._stop_requested,
        )


def spawn_cli_worker(
    queue_dir: Path | str,
    cache_dir: Path | str,
    worker_args: tuple[str, ...] = (),
) -> Callable[[int, str, int], subprocess.Popen]:
    """A ``spawn`` callable launching real ``repro queue work`` children.

    Children inherit the supervisor's environment (so
    ``REPRO_FAILPOINTS`` / ``REPRO_DURABLE_WRITES`` / telemetry
    settings propagate into the fleet — that inheritance *is* the chaos
    harness's process-boundary story) and run in their own process
    group session-wise untouched: SIGTERM is delivered by the
    supervisor explicitly, never by terminal broadcast.
    """

    def spawn(index: int, owner: str, attempt: int) -> subprocess.Popen:
        return subprocess.Popen(
            worker_command(queue_dir, owner, cache_dir, worker_args),
            env=os.environ.copy(),
        )

    return spawn
