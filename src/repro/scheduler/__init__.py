"""Distributed sweep scheduling: queue, workers, adaptive seeding.

PR 2's sweep layer stops at static ``shard k of n`` — every machine
must be told up front which slice it owns, and a dead machine's slice
simply goes missing.  This package adds the dynamic half: a **durable,
file-backed work queue** that any number of worker daemons drain
concurrently, with nothing but a shared directory (local disk, NFS, or
rsync'd) as the coordination medium.

* :mod:`repro.scheduler.queue` — :class:`WorkQueue`: jobs as atomic
  per-job files, claims as atomic renames into ``leases/`` tagged with
  the owner id, TTL heartbeats, and a scavenger that requeues expired
  leases so a killed worker loses nothing.
* :mod:`repro.scheduler.worker` — :class:`QueueWorker`: the daemon
  loop (lease → run through the experiment executor/store → ack) with
  background heartbeat renewal, graceful SIGTERM drain, and a worker
  manifest in the sweep layer's format on exit.
* :mod:`repro.scheduler.adaptive` — :class:`AdaptiveController`:
  scenario-level adaptive seeding; after each completed seed batch it
  widens only the scenarios whose 95 % CI half-width of the headline
  metric still exceeds a threshold, capped at ``max_seeds``.
* :mod:`repro.scheduler.monitor` — queue depth, per-worker liveness,
  completion ETA, as JSON and a human table, plus the partial-progress
  report over whatever the queue has completed.
* :mod:`repro.scheduler.fsck` — ``repro queue fsck``: audits a queue
  directory (and optionally its result store) against the protocol's
  documented invariants; ``--repair`` applies only protocol-defined
  self-repairs.
* :mod:`repro.scheduler.fleet` — ``repro queue fleet``:
  :class:`FleetSupervisor`, which spawns N worker children, restarts
  crashed ones under an exponential-backoff restart budget, and parks
  the fleet (instead of fork-bombing) when the environment is poison.

Execution is *at least once*; that is safe because results land in the
content-addressed result store, where a repeat is a store hit rather
than duplicate work.  CLI surface:
``python -m repro queue init|work|status|report``.
"""

from repro.scheduler.adaptive import (
    AdaptiveConfig,
    AdaptiveController,
    AdaptiveDecision,
    extension_seeds,
)
from repro.scheduler.fleet import (
    FLEET_STATE_NAME,
    ChildOutcome,
    FleetReport,
    FleetSupervisor,
    spawn_cli_worker,
    worker_command,
)
from repro.scheduler.fsck import FsckReport, Violation, fsck_queue
from repro.scheduler.monitor import (
    fleet_state,
    format_queue_status,
    format_queue_top,
    queue_cells,
    queue_report,
    queue_status,
    queue_top,
)
from repro.scheduler.queue import (
    EXPIRY_CLOCKS,
    GcReport,
    Lease,
    QueueCounts,
    QueueJob,
    RetryReport,
    WorkQueue,
    job_id,
)
from repro.scheduler.worker import (
    QueueWorker,
    WorkerReport,
    default_owner_id,
    write_worker_manifest,
)

__all__ = [
    "AdaptiveConfig",
    "AdaptiveController",
    "AdaptiveDecision",
    "ChildOutcome",
    "EXPIRY_CLOCKS",
    "FLEET_STATE_NAME",
    "FleetReport",
    "FleetSupervisor",
    "FsckReport",
    "GcReport",
    "Lease",
    "QueueCounts",
    "QueueJob",
    "QueueWorker",
    "RetryReport",
    "Violation",
    "WorkQueue",
    "WorkerReport",
    "default_owner_id",
    "extension_seeds",
    "fleet_state",
    "format_queue_status",
    "format_queue_top",
    "fsck_queue",
    "job_id",
    "queue_cells",
    "queue_report",
    "queue_status",
    "queue_top",
    "spawn_cli_worker",
    "worker_command",
    "write_worker_manifest",
]
