"""``repro queue fsck``: audit a queue directory against its invariants.

The queue's documented protocol implies a small set of on-disk
invariants — every live lease is covered by a heartbeat, a done record
always wins over leases and tickets, a job is never simultaneously
pending and leased, a ticket never exists without its job record, and
every record parses.  Crashes at the wrong instant (which the failpoint
chaos harness injects on purpose) can violate any of them; the running
protocol *self-heals* most violations opportunistically, but nothing
before this module could check a quiescent queue end-to-end and say
"consistent" or list exactly what is wrong.

:func:`fsck_queue` is that checker.  With ``repair=True`` it applies
**only** repairs the protocol itself already defines — requeue an
uncovered lease through the attempts budget, discard state that lost to
a done record, re-ticket a stranded job, rewrite a torn ticket, prune
unservable store halves — never anything that invents new state or
deletes a result.  Violations it cannot repair stay in the report and
the CLI exits non-zero.

Severity model: a violation is *not* necessarily data loss.  An
uncovered lease, a stranded job, or an orphan store half are exactly
the footprints the protocol documents for specific crash windows; fsck
exists so they are found and repaired deliberately instead of lingering
until the next scavenger happens by (or forever, for store orphans).
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.experiments.store import ResultStore
from repro.scheduler.queue import (
    _LEASE_SEPARATOR,
    _create_json_exclusive,
    _live_entries,
    _read_json,
    _write_json,
    DEFAULT_MAX_ATTEMPTS,
    WorkQueue,
)

__all__ = ["FsckReport", "Violation", "fsck_queue"]

#: Dot-prefixed atomic-write temporaries younger than this (seconds)
#: may belong to a live writer and are never flagged — the same grace
#: :meth:`WorkQueue.gc` applies, so an fsck pass over an actively
#: draining (or actively chaos-injected) queue stays clean.
DEFAULT_TEMP_AGE = 3600.0


@dataclasses.dataclass(frozen=True)
class Violation:
    """One invariant breach found on disk.

    ``repair`` names the protocol-defined repair for this breach;
    ``repaired`` records whether this pass applied it.
    """

    kind: str
    subject: str
    detail: str
    repair: str
    repaired: bool = False

    def payload(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class FsckReport:
    """Everything one :func:`fsck_queue` pass found (and fixed)."""

    violations: tuple[Violation, ...]
    checked: dict[str, int]
    repair: bool

    @property
    def clean(self) -> bool:
        return not self.violations

    @property
    def unrepaired(self) -> tuple[Violation, ...]:
        return tuple(v for v in self.violations if not v.repaired)

    def payload(self) -> dict:
        return {
            "clean": self.clean,
            "repair": self.repair,
            "checked": dict(self.checked),
            "violations": [v.payload() for v in self.violations],
            "unrepaired": len(self.unrepaired),
        }


def _aged_temp_files(
    queue: WorkQueue,
    now: float,
    temp_age: float,
    extra_roots: tuple[Path, ...],
) -> list[Path]:
    directories = [
        queue.root,
        queue.jobs_dir,
        queue.pending_dir,
        queue.leases_dir,
        queue.done_dir,
        queue.heartbeats_dir,
        queue.counters_dir,
        *extra_roots,
    ]
    aged: list[Path] = []
    for directory in directories:
        if not directory.is_dir():
            continue
        for path in sorted(directory.iterdir()):
            if not path.is_file():
                continue
            if not path.name.startswith("."):
                # A zero-byte events-*.jsonl is a telemetry husk (a
                # worker killed before its first flush); a ``*.npz.tmp``
                # or a manifest-less ``*.npz`` is an audit-flush crash
                # footprint (the manifest is the commit marker, so a
                # shard without one can never be read).  All are
                # age-gated like any other atomic-write litter.  See
                # :meth:`WorkQueue.gc`.
                if (
                    path.name.startswith("events-")
                    and path.name.endswith(".jsonl")
                ):
                    try:
                        if path.stat().st_size > 0:
                            continue
                    except OSError:
                        continue
                elif path.name.endswith(".npz.tmp"):
                    pass
                elif (
                    path.suffix == ".npz"
                    and not path.with_suffix(".json").exists()
                ):
                    pass
                else:
                    continue
            try:
                if now - path.stat().st_mtime >= temp_age:
                    aged.append(path)
            except OSError:
                continue
    return aged


def fsck_queue(
    queue: WorkQueue,
    store: ResultStore | None = None,
    repair: bool = False,
    now: float | None = None,
    temp_age: float = DEFAULT_TEMP_AGE,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    audit_root: Path | str | None = None,
) -> FsckReport:
    """Check ``queue`` (and optionally ``store``) against the protocol
    invariants; with ``repair`` apply the protocol-defined self-repairs.

    ``now`` overrides the queue's clock (tests); ``temp_age`` gates how
    old an orphaned atomic-write temporary must be before it counts.

    Checks, in evaluation order (earlier repairs can obviate later
    findings — e.g. a lease discarded under done-wins is no longer an
    uncovered lease):

    1.  **torn heartbeat** — unreadable ``heartbeats/*.json``; prune
        (its owner's leases then fall under the uncovered-lease rule).
    2.  **torn job record** — ``jobs/<id>.json`` present but
        unreadable; park the job as a ``done/`` error record and
        discard its ticket/lease (without a readable description the
        cell can never run).
    3.  **done-wins** — a lease or ticket whose job already has a done
        record; discard it.
    4.  **pending-and-leased** — one job both pending and leased; the
        lease is the live claim, the ticket is phantom: discard ticket.
    5.  **orphan ticket / orphan lease** — live state whose job record
        file does not exist (torn enqueue, or litter from a foreign
        queue); discard.
    6.  **torn ticket** — unreadable ``pending/<id>``; rewrite with a
        fresh ``{"attempts": 0}`` (the budget restarts — conservative,
        but a torn counter cannot be trusted in either direction).
    7.  **bad attempts** — readable ticket whose ``attempts`` is not a
        non-negative integer; rewrite with ``{"attempts": 0}``.
    8.  **uncovered lease** — lease whose owner's heartbeat is missing
        or past its deadline; requeue through the normal attempts
        budget (parks as an error record once the budget is spent).
    9.  **torn done record** — unreadable ``done/<id>.json``; unlink
        it and re-ticket the job (the at-least-once contract makes the
        re-run safe; a store hit makes it cheap).
    10. **stranded job** — a job record with no ticket, lease, or done
        record; re-ticket.
    11. **stale temp** — dot-prefixed atomic-write temporaries,
        zero-byte telemetry husks, and audit-flush crash footprints
        (``*.npz.tmp`` husks, manifest-less ``*.npz`` shards) older
        than ``temp_age``; prune.  ``audit_root`` adds the audit shard
        directory to the sweep.
    12. **store orphans / unreadable entries** — via
        :meth:`ResultStore.verify`; prune (none can serve as a hit).
    """
    now = queue.now() if now is None else now
    violations: list[Violation] = []

    def note(
        kind: str, subject: str, detail: str, repair_name: str,
        repaired: bool,
    ) -> None:
        violations.append(
            Violation(
                kind=kind,
                subject=subject,
                detail=detail,
                repair=repair_name,
                repaired=repaired,
            )
        )

    # -- 1: heartbeats must parse -------------------------------------
    heartbeat_paths = sorted(queue.heartbeats_dir.glob("*.json"))
    for path in heartbeat_paths:
        record = _read_json(path)
        if record is not None and "deadline" in record:
            continue
        fixed = False
        if repair:
            path.unlink(missing_ok=True)
            fixed = True
        note(
            "torn-heartbeat",
            path.stem,
            "heartbeat file is unreadable or lacks a deadline",
            "prune",
            fixed,
        )

    # -- snapshot live state ------------------------------------------
    job_paths = sorted(queue.jobs_dir.glob("*.json"))
    tickets = {path.name: path for path in _live_entries(queue.pending_dir)}
    leases: dict[str, list[tuple[Path, str]]] = {}
    for path in _live_entries(queue.leases_dir):
        identifier, sep, owner = path.name.partition(_LEASE_SEPARATOR)
        if sep:
            leases.setdefault(identifier, []).append((path, owner))
    done_ids = {path.stem for path in queue.done_dir.glob("*.json")}

    # -- 2: job records must parse when live state depends on them ----
    torn_jobs: set[str] = set()
    for path in job_paths:
        if _read_json(path) is not None:
            continue
        identifier = path.stem
        torn_jobs.add(identifier)
        fixed = False
        if repair:
            _create_json_exclusive(
                queue.done_dir / f"{identifier}.json",
                {
                    "id": identifier,
                    "state": "error",
                    "error": "fsck: job record unreadable",
                    "owner": "fsck",
                    "attempts": 0,
                },
            )
            ticket = tickets.pop(identifier, None)
            if ticket is not None:
                ticket.unlink(missing_ok=True)
            for lease_path, _ in leases.pop(identifier, []):
                lease_path.unlink(missing_ok=True)
            done_ids.add(identifier)
            fixed = True
        note(
            "torn-job-record",
            identifier,
            "job record exists but cannot be parsed; the cell can "
            "never run",
            "park",
            fixed,
        )

    # -- 3: done wins over tickets and leases -------------------------
    for identifier in sorted(set(leases) & done_ids):
        for lease_path, owner in leases.pop(identifier):
            fixed = False
            if repair:
                lease_path.unlink(missing_ok=True)
                fixed = True
            note(
                "done-wins-lease",
                identifier,
                f"lease held by {owner} for a job that already has a "
                "done record",
                "discard-lease",
                fixed,
            )
    for identifier in sorted(set(tickets) & done_ids):
        fixed = False
        if repair:
            tickets[identifier].unlink(missing_ok=True)
            del tickets[identifier]
            fixed = True
        note(
            "done-wins-ticket",
            identifier,
            "pending ticket for a job that already has a done record",
            "discard-ticket",
            fixed,
        )

    # -- 4: a job is never pending and leased at once -----------------
    for identifier in sorted(set(tickets) & set(leases)):
        fixed = False
        if repair:
            tickets[identifier].unlink(missing_ok=True)
            del tickets[identifier]
            fixed = True
        note(
            "pending-and-leased",
            identifier,
            "job has both a pending ticket and a live lease; the "
            "lease is the real claim",
            "discard-ticket",
            fixed,
        )

    # -- 5: live state requires a job record --------------------------
    job_ids = {path.stem for path in job_paths}
    for identifier in sorted(set(tickets) - job_ids):
        fixed = False
        if repair:
            tickets[identifier].unlink(missing_ok=True)
            del tickets[identifier]
            fixed = True
        note(
            "orphan-ticket",
            identifier,
            "pending ticket with no job record",
            "discard-ticket",
            fixed,
        )
    for identifier in sorted(set(leases) - job_ids):
        for lease_path, owner in leases.pop(identifier):
            fixed = False
            if repair:
                lease_path.unlink(missing_ok=True)
                fixed = True
            note(
                "orphan-lease",
                identifier,
                f"lease held by {owner} with no job record",
                "discard-lease",
                fixed,
            )

    # -- 6/7: tickets must parse and carry a sane attempts budget -----
    for identifier in sorted(tickets):
        payload = _read_json(tickets[identifier])
        if payload is None:
            fixed = False
            if repair:
                _write_json(tickets[identifier], {"attempts": 0})
                fixed = True
            note(
                "torn-ticket",
                identifier,
                "pending ticket cannot be parsed",
                "rewrite-ticket",
                fixed,
            )
            continue
        attempts = payload.get("attempts")
        if not isinstance(attempts, int) or attempts < 0:
            fixed = False
            if repair:
                _write_json(tickets[identifier], {"attempts": 0})
                fixed = True
            note(
                "bad-attempts",
                identifier,
                f"ticket attempts counter is {attempts!r}, expected a "
                "non-negative integer",
                "rewrite-ticket",
                fixed,
            )

    # -- 8: every lease needs a live heartbeat ------------------------
    for identifier in sorted(leases):
        for lease_path, owner in leases[identifier]:
            deadline = queue.heartbeat_deadline(owner)
            if deadline >= now:
                continue
            fixed = False
            outcome = ""
            if repair:
                outcome = queue._retry_or_park(
                    lease_path,
                    identifier,
                    owner,
                    f"fsck: lease not covered by a live heartbeat "
                    f"(owner {owner})",
                    max_attempts,
                )
                fixed = outcome in ("requeued", "error", "gone")
            note(
                "uncovered-lease",
                identifier,
                f"lease held by {owner} whose heartbeat is missing or "
                "expired"
                + (f" (repair outcome: {outcome})" if outcome else ""),
                "requeue",
                fixed,
            )

    # -- 9: done records must parse -----------------------------------
    for path in sorted(queue.done_dir.glob("*.json")):
        if _read_json(path) is not None:
            continue
        identifier = path.stem
        fixed = False
        if repair:
            path.unlink(missing_ok=True)
            done_ids.discard(identifier)
            if (
                identifier in job_ids
                and identifier not in torn_jobs
                and identifier not in leases
            ):
                _write_json(queue.pending_dir / identifier, {"attempts": 0})
            fixed = True
        note(
            "torn-done-record",
            identifier,
            "done record cannot be parsed; the completion it claims "
            "is unverifiable",
            "reticket",
            fixed,
        )

    # -- 10: stranded jobs (recompute after the repairs above) --------
    live = (
        {p.name for p in _live_entries(queue.pending_dir)}
        | {
            p.name.partition(_LEASE_SEPARATOR)[0]
            for p in _live_entries(queue.leases_dir)
        }
        | {p.stem for p in queue.done_dir.glob("*.json")}
    )
    for identifier in sorted(job_ids - live - torn_jobs):
        fixed = False
        if repair:
            _write_json(queue.pending_dir / identifier, {"attempts": 0})
            fixed = True
        note(
            "stranded-job",
            identifier,
            "job record with no ticket, lease, or done record — "
            "nothing will ever run it",
            "reticket",
            fixed,
        )

    # -- 11: aged atomic-write temporaries ----------------------------
    extra_roots: tuple[Path, ...] = ()
    if store is not None:
        extra_roots += (store.root,)
    if audit_root is not None:
        extra_roots += (Path(audit_root),)
    for path in _aged_temp_files(queue, now, temp_age, extra_roots):
        fixed = False
        if repair:
            path.unlink(missing_ok=True)
            fixed = True
        note(
            "stale-temp",
            str(path),
            "orphaned atomic-write temporary (crashed writer litter)",
            "prune",
            fixed,
        )

    # -- 12: the store's halves must pair and parse -------------------
    store_entries = 0
    if store is not None:
        store_report = store.verify(deep=True)
        store_entries = store_report.entries
        store_fixed = False
        if repair and not store_report.clean:
            store.prune_invalid(store_report)
            store_fixed = True
        for key in store_report.orphan_npz:
            note(
                "store-orphan-npz",
                key,
                "payload half with no metadata half (interrupted put; "
                "never visible as a hit)",
                "prune",
                store_fixed,
            )
        for key in store_report.orphan_json:
            note(
                "store-orphan-json",
                key,
                "metadata half with no payload half (write order "
                "violated or payload deleted)",
                "prune",
                store_fixed,
            )
        for key in store_report.unreadable:
            note(
                "store-unreadable",
                key,
                "entry pair exists but cannot be read end-to-end",
                "prune",
                store_fixed,
            )

    checked = {
        "jobs": len(job_paths),
        "pending": len(_live_entries(queue.pending_dir)),
        "leases": len(_live_entries(queue.leases_dir)),
        "done": sum(1 for _ in queue.done_dir.glob("*.json")),
        "heartbeats": len(heartbeat_paths),
        "store_entries": store_entries,
    }
    return FsckReport(
        violations=tuple(violations), checked=checked, repair=repair
    )
