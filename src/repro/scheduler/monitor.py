"""Queue observability: depth, worker liveness, ETA, and reporting.

:func:`queue_status` distils a queue directory (and optionally the
result store next to it) into one JSON-ready dict — the same payload
``repro queue status --json`` prints and CI asserts on.  The
``manifests`` section reuses
:func:`repro.sweeps.runner.manifest_status`, so the sweep CLI, the
queue monitor, and CI all parse manifests through one function.

:func:`queue_report` renders the per-(scenario, method) summary table
for whatever the queue has *completed so far* — including adaptively
added seeds, which static ``sweep report`` (spec-shaped by definition)
would not know to ask for.  Formatting is shared with the sweep layer
(:func:`~repro.sweeps.aggregate.format_sweep_table`), so a fully
drained non-adaptive queue reports byte-identically to the equivalent
static sweep.
"""

from __future__ import annotations

import json
import time

from repro.analysis.series import CellRuns
from repro.experiments.executor import (
    ExperimentExecutor,
    SimulationJob,
    get_default_executor,
)
from repro.experiments.harness import MethodAverages
from repro.scheduler.queue import WorkQueue
from repro.simulation.engine import ENGINE_VERSION
from repro.sweeps.aggregate import (
    ScenarioMethodSummary,
    summarize_cell,
)
from repro.sweeps.runner import load_manifests, manifest_status

__all__ = [
    "fleet_state",
    "format_queue_status",
    "format_queue_top",
    "queue_cells",
    "queue_report",
    "queue_status",
    "queue_top",
]

#: A live fleet refreshes its state file every couple of seconds; a
#: file not updated for this long belongs to a supervisor that died
#: without its final write and is reported as stale.
FLEET_STATE_STALE_S = 30.0


def fleet_state(queue: WorkQueue, now: float | None = None) -> dict | None:
    """The fleet supervisor's advisory state for this queue, if any.

    Reads ``<queue>/fleet.json`` (written by
    :class:`repro.scheduler.fleet.FleetSupervisor` when launched via
    the CLI).  Returns ``None`` when no fleet ever ran here or the
    file is unreadable — the dashboard simply omits the section.  A
    ``running`` fleet whose file has gone quiet for
    :data:`FLEET_STATE_STALE_S` seconds gains ``"stale": True``:
    supervisors publish at least every couple of seconds, so silence
    means the supervisor itself is gone.
    """
    from repro.scheduler.fleet import FLEET_STATE_NAME

    path = queue.root / FLEET_STATE_NAME
    try:
        state = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(state, dict):
        return None
    # The supervisor stamps `updated` with the wall clock of its own
    # box; judge staleness against the same clock, not the queue's
    # expiry clock.
    now = time.time() if now is None else now
    state["stale"] = bool(
        state.get("running")
        and now - float(state.get("updated", 0.0)) > FLEET_STATE_STALE_S
    )
    return state


def queue_cells(
    queue: WorkQueue, done_records: list[dict] | None = None
) -> list[CellRuns]:
    """The *completed* cells of a queue, as analysis-layer cell runs.

    The figure catalog normally discovers cells through store
    manifests, but a live queue's manifests only appear when workers
    exit — the authoritative record of what is done *right now* is the
    queue's done directory.  This adapter lets ``queue report
    --figures`` render a partially drained (or adaptively extended)
    queue: one cell per (scenario, method) holding exactly the seeds
    with a successful completion record.
    """
    if done_records is None:
        done_records = queue.done_records()
    seeds_by_cell: dict[tuple[str, str], set[int]] = {}
    for record in done_records:
        if record.get("state") not in ("simulated", "store_hit"):
            continue
        seeds_by_cell.setdefault(
            (record["scenario"], record["method"]), set()
        ).add(int(record["seed"]))
    return [
        CellRuns(
            scenario=scenario,
            method=method,
            config=queue.config_for(scenario),
            seeds=tuple(sorted(seeds)),
        )
        for (scenario, method), seeds in sorted(seeds_by_cell.items())
    ]


def queue_status(
    queue: WorkQueue,
    store_root: str | None = None,
    now: float | None = None,
) -> dict:
    """One JSON-ready snapshot of a queue's health.

    ``workers`` lists every heartbeat on record with its liveness
    (deadline vs. ``now``), last-heartbeat age, current lease count,
    and — when the worker has published one — its latest telemetry
    counter snapshot (``counters/<owner>.json``).  A worker whose
    heartbeat deadline has lapsed is flagged ``stale`` and excluded
    from the ETA's live-worker count, never silently dropped from the
    listing.  ``eta_seconds`` extrapolates the mean completed-job
    duration over the outstanding work and the number of live workers
    (``None`` until at least one job has finished).  Pass
    ``store_root`` to append the store's manifest rows (shard and
    worker manifests alike).
    """
    now = queue.now() if now is None else now
    counts = queue.counts()
    lease_owners = queue.lease_owners()
    worker_counters = queue.worker_counters()
    workers = []
    live_workers = 0
    for heartbeat in queue.heartbeats():
        owner = heartbeat.get("owner", "?")
        # Judge liveness by the clock the queue handle was opened with:
        # an mtime queue measures heartbeat-file mtimes against the
        # shared filesystem's clock, so a skewed observer box doesn't
        # misreport a live fleet as dead (or vice versa).
        deadline = queue.heartbeat_deadline(owner)
        alive = deadline >= now
        if alive:
            live_workers += 1
        # The deadline is the last renewal plus the recorded TTL, so
        # the renewal's age falls straight out of it.
        ttl = float(heartbeat.get("ttl", 0.0))
        workers.append(
            {
                "owner": owner,
                "alive": alive,
                "stale": not alive,
                "deadline_in_s": round(deadline - now, 3),
                "heartbeat_age_s": round(now - (deadline - ttl), 3),
                "leases": lease_owners.get(owner, 0),
                "counters": worker_counters.get(owner),
            }
        )

    done_records = queue.done_records()
    durations = [
        float(record["duration_s"])
        for record in done_records
        if record.get("duration_s") is not None
    ]
    errors = sum(1 for r in done_records if r.get("state") == "error")
    outstanding = counts.pending + counts.leased
    eta_seconds: float | None = None
    if outstanding == 0:
        eta_seconds = 0.0
    elif durations and live_workers > 0:
        # No live workers ⇒ no ETA: extrapolating with a pretend
        # worker would show a dead fleet as converging.
        mean_duration = sum(durations) / len(durations)
        eta_seconds = round(
            mean_duration * outstanding / live_workers, 3
        )

    adaptive = queue.adaptive_payload
    status = {
        "queue": str(queue.root),
        "name": queue.name,
        "spec_hash": queue.spec_hash,
        "scale": queue.spec.scale,
        "engine_version": ENGINE_VERSION,
        "counts": {
            "jobs": counts.jobs,
            "pending": counts.pending,
            "leased": counts.leased,
            "done": counts.done,
            "errors": errors,
        },
        "drained": counts.drained,
        "workers": workers,
        "eta_seconds": eta_seconds,
        "adaptive": (
            {"enabled": True, **adaptive}
            if adaptive is not None
            else {"enabled": False}
        ),
    }
    if store_root is not None:
        status["manifests"] = manifest_status(load_manifests(store_root))
    return status


def format_queue_status(status: dict) -> str:
    """The human rendering of one :func:`queue_status` payload."""
    counts = status["counts"]
    lines = [
        f"queue: {status['name']}   spec: {status['spec_hash']}   "
        f"scale: {status['scale']}   engine: {status['engine_version']}",
        f"jobs: {counts['jobs']}   pending: {counts['pending']}   "
        f"leased: {counts['leased']}   done: {counts['done']}"
        + (
            f"   errors: {counts['errors']}"
            if counts.get("errors")
            else ""
        )
        + ("   [drained]" if status["drained"] else ""),
    ]
    if status["eta_seconds"] is not None and not status["drained"]:
        lines.append(f"eta: ~{status['eta_seconds']:.0f}s")
    adaptive = status["adaptive"]
    if adaptive["enabled"]:
        lines.append(
            "adaptive: ci_threshold="
            f"{adaptive['ci_threshold']}s   max_seeds="
            f"{adaptive['max_seeds']}   seed_batch="
            f"{adaptive['seed_batch']}"
        )
    if status["workers"]:
        lines.append(f"{'worker':<40} {'alive':>5} {'leases':>6} {'ttl':>8}")
        for worker in status["workers"]:
            lines.append(
                f"{worker['owner']:<40} "
                f"{'yes' if worker['alive'] else 'no':>5} "
                f"{worker['leases']:>6} "
                f"{worker['deadline_in_s']:>7.0f}s"
            )
    for row in status.get("manifests", []):
        source = (
            f"worker {row['worker']}"
            if row.get("worker")
            else f"shard {row['shard_index']}/{row['shard_count']}"
        )
        stale = " (stale)" if row["stale"] else ""
        lines.append(
            f"manifest [{source}]: {row['jobs']} jobs, "
            f"{row['simulated']} simulated, {row['store_hits']} "
            f"store hits{stale}"
        )
    return "\n".join(lines)


def queue_top(
    queue: WorkQueue,
    now: float | None = None,
    previous: dict | None = None,
) -> dict:
    """One frame of the live fleet dashboard (``repro queue top``).

    Builds on :func:`queue_status` — same worker rows, same counts —
    and adds what a *dashboard* needs over a status line: the live
    leases with their ages (a lease aging past the TTL is the first
    visible sign of a wedged worker), and per-worker throughput.  Pass
    the prior frame as ``previous`` and each worker additionally gets
    ``jobs_per_min`` from the counter delta between the two frames;
    single frames (``--once``, the CI smoke) fall back to the
    session-average rate derivable from the counters snapshot alone.

    Everything here is read-side only — safe to poll mid-drain from
    any box that can see the queue directory.
    """
    now = queue.now() if now is None else now
    status = queue_status(queue, store_root=None, now=now)
    # A worker that drained and exited cleanly removes its heartbeat
    # but leaves its counters file; surface those as *retired* rows so
    # a finished fleet still reads as "who did what", not as empty.
    present = {worker["owner"] for worker in status["workers"]}
    for owner, counters in sorted(queue.worker_counters().items()):
        if owner in present:
            continue
        status["workers"].append(
            {
                "owner": owner,
                "alive": False,
                "stale": True,
                "retired": True,
                "deadline_in_s": None,
                "heartbeat_age_s": None,
                "leases": 0,
                "counters": counters,
            }
        )
    # PR 8's heartbeater stamps `heartbeat_lost` into the counters
    # snapshot when a worker's renewal thread missed too many beats;
    # surface it as a first-class flag so the dashboard can shout.
    for worker in status["workers"]:
        counters = worker.get("counters") or {}
        worker["heartbeat_lost"] = bool(counters.get("heartbeat_lost"))
    frame = {
        "time": now,
        "status": status,
        "lease_ages": queue.lease_ages(now),
        "fleet": fleet_state(queue),
    }
    previous_workers = {}
    elapsed = 0.0
    if previous is not None:
        elapsed = now - float(previous.get("time", now))
        previous_workers = {
            worker["owner"]: worker
            for worker in previous.get("status", {}).get("workers", [])
        }
    for worker in status["workers"]:
        counters = worker.get("counters") or {}
        rate: float | None = None
        restarted = False
        before = previous_workers.get(worker["owner"])
        if before is not None and elapsed > 0:
            done_before = (before.get("counters") or {}).get("processed", 0)
            delta = counters.get("processed", 0) - done_before
            if delta < 0:
                # A fleet restart reused this owner name, so its counter
                # file started over from zero and the previous frame's
                # baseline belongs to a dead process.  A negative rate
                # is nonsense; recompute from zero (the fresh session's
                # average) and flag the row so the dashboard says why.
                restarted = True
                if counters.get("busy_s"):
                    rate = (
                        counters.get("processed", 0)
                        / counters["busy_s"]
                        * 60.0
                    )
            else:
                rate = delta / elapsed * 60.0
        elif counters.get("busy_s"):
            # No prior frame: the session average stands in.
            rate = counters.get("processed", 0) / counters["busy_s"] * 60.0
        worker["jobs_per_min"] = rate
        worker["restarted"] = restarted
    return frame


def format_queue_top(frame: dict) -> str:
    """The human rendering of one :func:`queue_top` frame."""
    status = frame["status"]
    counts = status["counts"]
    header = (
        f"queue: {status['name']}   pending: {counts['pending']}   "
        f"leased: {counts['leased']}   done: {counts['done']}"
    )
    if counts.get("errors"):
        header += f"   errors: {counts['errors']}"
    if status["drained"]:
        header += "   [drained]"
    elif status["eta_seconds"] is not None:
        header += f"   eta: ~{status['eta_seconds']:.0f}s"
    lines = [header]

    fleet = frame.get("fleet")
    if fleet and (fleet.get("running") or fleet.get("parked")):
        fleet_line = (
            f"fleet: pid {fleet.get('pid')}   "
            f"slots {fleet.get('count')}   restarts "
            f"{fleet.get('restarts', 0)}/{fleet.get('restart_budget', 0)}"
            f" ({fleet.get('restarts_remaining', 0)} left)"
        )
        if fleet.get("parked"):
            fleet_line += "   [PARKED]"
        elif fleet.get("stale"):
            fleet_line += "   [stale — supervisor silent]"
        lines.append(fleet_line)

    if status["workers"]:
        lines.append(
            f"{'worker':<36} {'alive':>5} {'leases':>6} {'hb-age':>7} "
            f"{'done':>5} {'sim':>5} {'hit':>5} {'fail':>5} "
            f"{'last':>7} {'jobs/m':>7}"
        )
        for worker in status["workers"]:
            counters = worker.get("counters") or {}
            last_job = counters.get("last_job_s")
            rate = worker.get("jobs_per_min")
            heartbeat_age = worker.get("heartbeat_age_s")
            if worker.get("heartbeat_lost"):
                # The worker's own renewal thread reported itself dead
                # — louder than a merely lapsed deadline.
                alive_cell = "LOST"
            elif worker.get("retired"):
                alive_cell = "gone"
            elif worker["alive"]:
                alive_cell = "yes"
            else:
                alive_cell = "NO"
            lines.append(
                f"{worker['owner']:<36} "
                f"{alive_cell:>5} "
                f"{worker['leases']:>6} "
                + (
                    f"{heartbeat_age:>6.0f}s "
                    if heartbeat_age is not None
                    else f"{'-':>7} "
                )
                + f"{counters.get('processed', 0):>5} "
                + f"{counters.get('simulated', 0):>5} "
                + f"{counters.get('store_hits', 0):>5} "
                + f"{counters.get('failed', 0):>5} "
                + (
                    f"{last_job:>6.1f}s "
                    if last_job is not None
                    else f"{'-':>7} "
                )
                + (
                    f"{rate:>6.1f}{'*' if worker.get('restarted') else ' '}"
                    if rate is not None
                    else f"{'-*' if worker.get('restarted') else '-':>7}"
                )
            )
        if any(w.get("restarted") for w in status["workers"]):
            lines.append(
                "* counter file restarted (owner name reused after a "
                "fleet restart); rate is the fresh session's average"
            )
    else:
        lines.append("no workers on record")

    if frame["lease_ages"]:
        lines.append("oldest leases:")
        for lease in frame["lease_ages"][:5]:
            lines.append(
                f"  {lease['id']}  {lease['owner']}  "
                f"{lease['age_s']:.0f}s"
            )
    return "\n".join(lines)


def queue_report(
    queue: WorkQueue,
    executor: ExperimentExecutor | None = None,
    done_records: list[dict] | None = None,
) -> list[ScenarioMethodSummary]:
    """Summaries over every *completed* cell of the queue.

    Groups the done records by (scenario, method) — whatever seed set
    each scenario ended up with, fixed or adaptively extended — and
    reads the results back through the executor, so a drained queue
    reports without a single new simulation.  Pass ``done_records`` if
    the caller already read them (the CLI shares one scan between the
    header counts and the report).
    """
    executor = executor if executor is not None else get_default_executor()
    if executor.store is None:
        raise ValueError(
            "queue_report needs an executor with a result store — the "
            "report reads completed results back, it must not simulate"
        )
    spec = queue.spec
    # One grouping of done records for the summary table and the
    # figure path alike (queue_cells is the single owner of "which
    # cells count as completed").
    cells = {
        (cell.scenario, cell.method): cell
        for cell in queue_cells(queue, done_records)
    }

    # Refuse a store that doesn't hold the done work: silently
    # re-simulating a completed grid inside a *report* command (a
    # typo'd --cache-dir) would be minutes-to-hours of surprise work.
    missing = sum(
        1
        for cell in cells.values()
        for seed in cell.seeds
        if not executor.store.contains(cell.config, cell.method, seed)
    )
    if missing:
        raise ValueError(
            f"{missing} completed jobs are absent from the store at "
            f"{executor.store.root}; point --cache-dir at the store the "
            "workers actually wrote to"
        )

    summaries: list[ScenarioMethodSummary] = []
    for scenario in spec.scenarios:
        for method in spec.methods:
            cell = cells.get((scenario, method))
            if cell is None:
                continue
            results = executor.run(
                [
                    SimulationJob(cell.config, method, seed)
                    for seed in cell.seeds
                ]
            )
            summaries.append(
                summarize_cell(
                    scenario,
                    MethodAverages(method=method, results=tuple(results)),
                )
            )
    return summaries
