"""The worker daemon: lease → simulate → ack, until drained or told to
stop.

``QueueWorker.run`` is the whole daemon: it scavenges expired leases,
claims one job at a time, routes it through the configured
:class:`~repro.experiments.executor.ExperimentExecutor` (so a job whose
result already sits in the shared :class:`ResultStore` is a store hit,
not a re-simulation), acks it, and repeats.  A background thread renews
the worker's heartbeat for the whole session, so a lease never expires
under a live worker no matter how long one simulation takes.

When the queue looks empty the worker first gives the adaptive
controller (if the queue was initialised with one) a chance to extend
scenarios whose confidence intervals are still wide; only when the
queue is drained *and* the controller declines does the worker exit —
unless ``wait=True`` keeps it polling as a standing daemon.

On exit the worker writes a *worker manifest* into the store's
``manifests/`` directory — same format, vocabulary, and identity
scheme as the static-shard manifests of
:class:`~repro.sweeps.runner.SweepRunner`, with worker identity in
place of shard coordinates — so ``repro sweep status`` and the
aggregation layer treat queue-produced stores exactly like shard
produced ones.

SIGTERM/SIGINT (when handlers are installed, as the CLI does) request a
graceful drain: the in-flight job finishes and is acked, the manifest
is written, and the loop exits.  A worker killed harder than that loses
only its leases, which the TTL scavenger returns to the queue.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import socket
import threading
import time
import uuid
from pathlib import Path

from repro.experiments.executor import (
    ExperimentExecutor,
    SimulationJob,
    get_default_executor,
)
from repro.reliability.failpoints import failpoint
from repro.reliability.retry import retry_io
from repro.scheduler.adaptive import AdaptiveController
from repro.scheduler.queue import (
    DEFAULT_MAX_ATTEMPTS,
    EXPIRY_CLOCKS,
    WorkQueue,
    sanitize_owner,
)
from repro.simulation.engine import ENGINE_VERSION
from repro.sweeps.runner import environment_hash, write_manifest
from repro.telemetry.registry import get_telemetry

__all__ = ["QueueWorker", "WorkerReport", "default_owner_id"]

#: Default lease TTL in seconds.  Generous relative to the heartbeat
#: interval (ttl / 3), so only a genuinely dead worker expires.
DEFAULT_TTL = 60.0


def default_owner_id() -> str:
    """A process-unique worker id: host, pid, and a random tail."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


@dataclasses.dataclass(frozen=True)
class WorkerReport:
    """What one worker session did.

    ``failed`` counts executions that raised; each such job was either
    requeued for another attempt or — once its attempts budget ran out
    — parked as a ``done/`` error record, never crash-looped.
    """

    owner: str
    processed: int
    simulated: int
    store_hits: int
    failed: int
    requeued: int
    manifest_path: Path | None
    stopped_by_signal: bool


class _Heartbeater(threading.Thread):
    """Renews one owner's heartbeat every ``ttl / 3`` seconds.

    Each renewal retries transient ``OSError`` s through
    :func:`~repro.reliability.retry.retry_io`; a renewal that fails its
    whole retry budget counts as one *miss*.  After
    :data:`MAX_CONSECUTIVE_MISSES` misses in a row the thread gives up
    and invokes ``on_failure`` (the worker drains itself): a worker
    that cannot publish liveness is, to every scavenger, already dead —
    its leases *will* expire and be re-run — so continuing to simulate
    only doubles work and races the fleet.  The old behaviour
    (swallow every ``OSError`` forever) made that zombie state
    permanent and invisible.
    """

    #: Renewal failures in a row (each already retried with backoff)
    #: before the thread declares the heartbeat lost.  At ttl/3 per
    #: renewal this tolerates well over a lease TTL of flakiness before
    #: giving up.
    MAX_CONSECUTIVE_MISSES = 5

    def __init__(
        self,
        queue: WorkQueue,
        owner: str,
        ttl: float,
        on_failure=None,
    ) -> None:
        super().__init__(daemon=True, name=f"heartbeat-{owner}")
        self._queue = queue
        self._owner = owner
        self._ttl = ttl
        self._on_failure = on_failure
        self.consecutive_misses = 0
        # NB: not "_stop" — threading.Thread uses that name internally.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self._ttl / 3.0):
            try:
                retry_io(
                    lambda: self._queue.heartbeat(self._owner, self._ttl),
                    "heartbeat",
                )
            except OSError:
                self.consecutive_misses += 1
                if self.consecutive_misses >= self.MAX_CONSECUTIVE_MISSES:
                    telemetry = get_telemetry()
                    if telemetry is not None:
                        telemetry.count("worker.heartbeat_lost")
                    if self._on_failure is not None:
                        self._on_failure()
                    return
            else:
                self.consecutive_misses = 0

    def stop(self) -> None:
        self._halt.set()


class QueueWorker:
    """Drains a :class:`WorkQueue` through an experiment executor.

    Parameters
    ----------
    queue:
        The queue to drain.
    executor:
        Executor to run jobs through; ``None`` uses the process-wide
        default.  Must have a store — the queue's dedupe and resume
        guarantees live there.
    owner:
        Worker id recorded in leases, heartbeats, and the manifest;
        defaults to :func:`default_owner_id`.
    ttl:
        Lease time-to-live in seconds; the heartbeat renews at
        ``ttl / 3``.
    poll_interval:
        Sleep between queue checks while other workers still hold
        leases (their completion may unlock adaptive extensions).
    max_jobs:
        Stop after processing this many jobs (``None`` = unbounded).
    wait:
        Keep polling after the queue drains instead of exiting —
        standing-daemon mode for long-lived shared queues.
    max_attempts:
        Attempts budget per job (claims after requeues/failures)
        before it is parked as an error record instead of retried.
    expiry_clock:
        How this worker's scavenging passes judge lease expiry:
        ``wall`` (recorded deadlines vs. this box's clock — needs NTP
        across a multi-box fleet) or ``mtime`` (heartbeat-file mtimes
        vs. the shared filesystem's clock — skew-immune; see
        :data:`~repro.scheduler.queue.EXPIRY_CLOCKS`).  ``None``
        (default) adopts the clock the queue handle was opened with;
        an explicit value is pushed onto the handle so heartbeats and
        scavenging always judge time the same way.
    """

    def __init__(
        self,
        queue: WorkQueue,
        executor: ExperimentExecutor | None = None,
        owner: str | None = None,
        ttl: float = DEFAULT_TTL,
        poll_interval: float = 0.5,
        max_jobs: int | None = None,
        wait: bool = False,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        expiry_clock: str | None = None,
    ) -> None:
        self.queue = queue
        self._executor = executor
        # One owner spelling everywhere: leases, heartbeats, done
        # records, and the manifest filename all use the sanitised id.
        self.owner = sanitize_owner(
            owner if owner is not None else default_owner_id()
        )
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self.ttl = float(ttl)
        self.poll_interval = float(poll_interval)
        self.max_jobs = max_jobs
        self.wait = wait
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.max_attempts = int(max_attempts)
        if expiry_clock is None:
            expiry_clock = queue.clock
        elif expiry_clock not in EXPIRY_CLOCKS:
            raise ValueError(
                f"unknown expiry clock {expiry_clock!r}; "
                f"available: {', '.join(EXPIRY_CLOCKS)}"
            )
        else:
            # Align the handle: the heartbeater thread renews through
            # queue.heartbeat(), which derives "now" from queue.clock —
            # a worker scavenging by mtime while heartbeating by wall
            # would mix clocks within one protocol.
            queue.clock = expiry_clock
        self.expiry_clock = expiry_clock
        self._stop_requested = False
        self._last_counters: dict = {}

    @property
    def executor(self) -> ExperimentExecutor:
        return (
            self._executor
            if self._executor is not None
            else get_default_executor()
        )

    def request_stop(self) -> None:
        """Ask the loop to drain gracefully after the in-flight job."""
        self._stop_requested = True

    def _publish_counters(
        self,
        entries: list[dict],
        failed: int,
        requeued: int,
        busy_s: float,
        last_job_s: float | None,
        last_job_id: str | None,
    ) -> None:
        """Publish this session's running counters after each job.

        The snapshot lands next to the heartbeats
        (``counters/<owner>.json``), where ``queue status --json`` and
        the ``queue top`` dashboard read it.  Best-effort: a transient
        filesystem error over a monitoring artefact must not kill the
        drain loop.  When telemetry is active, the job wall time also
        feeds the ``worker.job_s`` timer and the registry's events are
        flushed so dashboards see mid-drain state.
        """
        payload = {
            "owner": self.owner,
            "pid": os.getpid(),
            "updated": self.queue.now(),
            "processed": len(entries),
            "simulated": sum(
                1 for e in entries if e["state"] == "simulated"
            ),
            "store_hits": sum(
                1 for e in entries if e["state"] == "store_hit"
            ),
            "failed": failed,
            "requeued": requeued,
            "busy_s": busy_s,
            "last_job_s": last_job_s,
            "last_job_id": last_job_id,
        }
        self._last_counters = payload
        try:
            retry_io(
                lambda: self.queue.write_worker_counters(
                    self.owner, payload
                ),
                "counters",
            )
        except OSError:
            # Still best-effort once the retry budget is spent: a
            # monitoring artefact must not kill the drain loop.
            pass
        telemetry = get_telemetry()
        if telemetry is not None:
            if last_job_s is not None:
                telemetry.observe("worker.job_s", last_job_s)
            telemetry.flush()

    def _heartbeat_lost(self) -> None:
        """The heartbeater spent its whole failure budget: drain.

        Stamps ``heartbeat_lost`` into this worker's counters snapshot
        (so ``queue top``/``status`` show *why* the worker drained) and
        requests a graceful stop — the in-flight job finishes and acks;
        by then scavengers may already be re-running our leases, which
        the content-addressed store absorbs.
        """
        try:
            self.queue.write_worker_counters(
                self.owner,
                {
                    "owner": self.owner,
                    "pid": os.getpid(),
                    **self._last_counters,
                    "heartbeat_lost": True,
                },
            )
        except OSError:
            # The same broken filesystem that lost the heartbeat —
            # the local WorkerReport still records the stop.
            pass
        self.request_stop()

    # -- the daemon loop ----------------------------------------------

    def run(self, install_signal_handlers: bool = False) -> WorkerReport:
        """Drain the queue; returns a report of this session's work."""
        executor = self.executor
        if executor.store is None:
            raise ValueError(
                "queue workers need an executor with a result store "
                "(pass --cache-dir or set $REPRO_CACHE_DIR): the store "
                "is what makes at-least-once execution safe"
            )
        controller: AdaptiveController | None = None
        if self.queue.adaptive_payload is not None:
            controller = AdaptiveController(self.queue, executor.store)

        previous_handlers: list[tuple[int, object]] = []
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                previous_handlers.append(
                    (signum, signal.getsignal(signum))
                )
                signal.signal(
                    signum, lambda *_: self.request_stop()
                )

        heartbeater = _Heartbeater(
            self.queue,
            self.owner,
            self.ttl,
            on_failure=self._heartbeat_lost,
        )
        self.queue.heartbeat(self.owner, self.ttl)
        heartbeater.start()
        entries: list[dict] = []
        requeued = 0
        failed = 0
        busy_s = 0.0
        try:
            while not self._stop_requested:
                failpoint("worker.loop")
                if (
                    self.max_jobs is not None
                    and len(entries) + failed >= self.max_jobs
                ):
                    # Failed attempts count against the session budget
                    # too: a cron-bounded session must not turn one
                    # poison job into max_attempts extra simulations.
                    break
                requeued += len(
                    retry_io(
                        lambda: self.queue.requeue_expired(
                            max_attempts=self.max_attempts,
                            clock=self.expiry_clock,
                        ),
                        "scavenge",
                    )
                )
                lease = self.queue.claim(
                    self.owner, self.ttl, max_attempts=self.max_attempts
                )
                if lease is None:
                    if controller is not None:
                        decisions = controller.step()
                        if controller.enqueued(decisions):
                            continue
                    if self.queue.counts().drained and not self.wait:
                        break
                    # Someone else's leases (or wait mode): their
                    # completion may unlock adaptive extensions, so
                    # poll rather than exit.
                    time.sleep(self.poll_interval)
                    continue
                job = lease.job
                started = time.monotonic()
                try:
                    [(_, store_hit)] = executor.run_detailed(
                        [
                            SimulationJob(
                                self.queue.config_for(job.scenario),
                                job.method,
                                job.seed,
                                trace=job.trace,
                            )
                        ]
                    )
                except Exception as error:  # noqa: BLE001 - poison job
                    # A job whose execution raises (corrupt store read,
                    # engine assertion, dead pool child) must not kill
                    # the worker: requeue it within its attempts budget
                    # or park it as an error record, then move on.
                    failed += 1
                    self.queue.fail(
                        lease,
                        f"{type(error).__name__}: {error}",
                        max_attempts=self.max_attempts,
                    )
                    duration = time.monotonic() - started
                    busy_s += duration
                    self._publish_counters(
                        entries, failed, requeued, busy_s, duration, job.id
                    )
                    continue
                state = "store_hit" if store_hit else "simulated"
                duration = time.monotonic() - started
                self.queue.ack(lease, state, duration_s=duration)
                entries.append(
                    {
                        "scenario": job.scenario,
                        "method": job.method,
                        "seed": job.seed,
                        "key": job.key,
                        "state": state,
                    }
                )
                busy_s += duration
                self._publish_counters(
                    entries, failed, requeued, busy_s, duration, job.id
                )
        finally:
            heartbeater.stop()
            heartbeater.join(timeout=5.0)
            # Retire the heartbeat so status stops counting this
            # worker as alive the moment the session ends.  A
            # concurrent session sharing our --owner may be
            # mid-simulation; if one holds a lease after the unlink we
            # lost that race — restore the liveness immediately (its
            # own heartbeater keeps renewing from there).  A claim that
            # lands after this re-check writes its own fresh heartbeat,
            # so no interleaving leaves a live lease uncovered.
            self.queue.retire(self.owner)
            if self.queue.lease_owners().get(self.owner):
                self.queue.heartbeat(self.owner, self.ttl)
            for signum, handler in previous_handlers:
                signal.signal(signum, handler)

        manifest_path = (
            write_worker_manifest(
                executor.store.root,
                self.queue,
                self.owner,
                entries,
                session=uuid.uuid4().hex[:8],
            )
            if entries
            else None
        )
        return WorkerReport(
            owner=self.owner,
            processed=len(entries),
            simulated=sum(
                1 for e in entries if e["state"] == "simulated"
            ),
            store_hits=sum(
                1 for e in entries if e["state"] == "store_hit"
            ),
            failed=failed,
            requeued=requeued,
            manifest_path=manifest_path,
            stopped_by_signal=self._stop_requested,
        )


def write_worker_manifest(
    store_root: Path,
    queue: WorkQueue,
    owner: str,
    entries: list[dict],
    session: str = "0",
) -> Path:
    """Record one worker session in the store's manifest directory.

    Routed through the sweep layer's single manifest writer, with
    ``worker``/``queue`` fields in place of shard coordinates —
    ``repro sweep status`` reads both kinds with one parser.
    ``session`` keeps the filename unique per worker *session*: a cron
    job re-running ``queue work`` under a fixed ``--owner`` must append
    a new manifest, not overwrite the last one.
    """
    owner = sanitize_owner(owner)
    spec = queue.spec
    return write_manifest(
        store_root,
        spec,
        environment_hash(spec),
        {"worker": owner, "queue": str(queue.root)},
        f"worker-{owner}.{sanitize_owner(session)}",
        entries,
    )
