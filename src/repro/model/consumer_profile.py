"""Consumer characterisation (Section 3.1 of the paper).

A consumer judges the system along three axes, all computed over its
``k`` last issued queries (the set ``IQ_k_c``):

* **Adequation** ``δa(c)`` — "how well do my expectations correspond to
  the providers that were able to deal with my last queries?"
  (Equation 1 / Definition 1).
* **Satisfaction** ``δs(c)`` — "how far do the providers that have dealt
  with my last queries meet my expectations?" (Equation 2 /
  Definition 2).
* **Allocation satisfaction** ``δas(c) = δs(c) / δa(c)`` — "am I
  satisfied with the job done by the query-allocation process?"
  (Definition 3).  Above 1 the mediator works *for* the consumer, below 1
  it punishes them, exactly 1 is neutral.

The paper develops the definitions for *intentions* (public); the same
maths applies verbatim to private *preferences* (Section 3 notes there is
no technical difference).  :class:`ConsumerProfile` therefore accepts any
value vector in ``[-1, 1]``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.model.memory import InteractionMemory

__all__ = [
    "ConsumerProfile",
    "query_adequation",
    "query_satisfaction",
]


def query_adequation(intentions_to_candidates: Sequence[float]) -> float:
    """Per-query adequation ``δa(c, q)`` (Equation 1).

    The average of the consumer's shown intentions towards the *whole*
    candidate set ``P_q``, rescaled from ``[-1, 1]`` to ``[0, 1]``.

    Parameters
    ----------
    intentions_to_candidates:
        ``CI_q[p]`` for every ``p ∈ P_q``; must be non-empty.
    """
    values = np.asarray(intentions_to_candidates, dtype=float)
    if values.size == 0:
        raise ValueError("P_q must contain at least one provider")
    return (float(values.mean()) + 1.0) / 2.0


def query_satisfaction(
    intentions_to_selected: Sequence[float], n_desired: int
) -> float:
    """Per-query satisfaction ``δs(c, q)`` (Equation 2).

    The consumer's intentions towards the providers that actually got the
    query, summed and divided by ``q.n`` — the number of results the
    consumer *desired* — then rescaled to ``[0, 1]``.  Dividing by
    ``q.n`` rather than by the number of selected providers is the
    paper's way of accounting for consumers that wanted more results than
    they got.

    Parameters
    ----------
    intentions_to_selected:
        ``CI_q[p]`` for every ``p ∈ P̂_q`` (the selected providers).  May
        be empty (no provider selected → satisfaction 0.5, i.e. the
        neutral rescaling of a zero sum).
    n_desired:
        ``q.n ≥ 1``.
    """
    if n_desired < 1:
        raise ValueError(f"q.n must be at least 1, got {n_desired}")
    values = np.asarray(intentions_to_selected, dtype=float)
    if values.size > n_desired:
        raise ValueError(
            f"{values.size} providers selected but only {n_desired} desired"
        )
    total = float(values.sum()) if values.size else 0.0
    return (total / n_desired + 1.0) / 2.0


class ConsumerProfile:
    """Sliding-window characterisation of one consumer.

    Records, for each issued query, the per-query adequation and
    satisfaction, and exposes the long-run Definitions 1-3 over the last
    ``k`` queries.

    Parameters
    ----------
    k:
        Window size (``conSatSize`` in Table 2; 200 in the paper's
        simulations).
    initial_satisfaction:
        The value reported while the memory is still empty
        (``iniSatisfaction`` in Table 2; 0.5 in the paper).  The paper
        initialises participants at 0.5 and lets the value evolve.
    """

    __slots__ = ("_adequations", "_initial", "_satisfactions")

    def __init__(self, k: int, initial_satisfaction: float = 0.5) -> None:
        if not 0.0 <= initial_satisfaction <= 1.0:
            raise ValueError(
                f"initial satisfaction must be in [0, 1], got {initial_satisfaction}"
            )
        self._adequations = InteractionMemory(k)
        self._satisfactions = InteractionMemory(k)
        self._initial = float(initial_satisfaction)

    @property
    def k(self) -> int:
        """The window size."""
        return self._adequations.capacity

    @property
    def queries_remembered(self) -> int:
        """How many issued queries are currently in the window."""
        return len(self._adequations)

    def record_query(
        self,
        intentions_to_candidates: Sequence[float],
        intentions_to_selected: Sequence[float],
        n_desired: int,
    ) -> tuple[float, float]:
        """Record the allocation of one issued query.

        Returns the per-query ``(δa(c, q), δs(c, q))`` pair that entered
        the window, which callers may log.
        """
        adequation = query_adequation(intentions_to_candidates)
        satisfaction = query_satisfaction(intentions_to_selected, n_desired)
        self._adequations.push(adequation)
        self._satisfactions.push(satisfaction)
        return adequation, satisfaction

    def adequation(self) -> float:
        """``δa(c)`` (Definition 1) over the window; initial value if empty."""
        return self._adequations.mean(default=self._initial)

    def satisfaction(self) -> float:
        """``δs(c)`` (Definition 2) over the window; initial value if empty."""
        return self._satisfactions.mean(default=self._initial)

    def allocation_satisfaction(self) -> float:
        """``δas(c) = δs(c) / δa(c)`` (Definition 3).

        When adequation is exactly zero the ratio is undefined in the
        paper; we return ``inf`` if the consumer nevertheless obtained
        positive satisfaction (the method over-delivered against an
        impossible baseline) and the neutral ``1.0`` otherwise.
        """
        adequation = self.adequation()
        satisfaction = self.satisfaction()
        if adequation == 0.0:
            return float("inf") if satisfaction > 0.0 else 1.0
        return satisfaction / adequation

    def is_punished(self) -> bool:
        """Whether the allocation method currently punishes this consumer.

        Section 6.3.2 uses exactly this predicate as the consumer
        departure rule: a consumer leaves, by dissatisfaction, when its
        satisfaction is smaller than its adequation.
        """
        return self.satisfaction() < self.adequation()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ConsumerProfile(k={self.k}, δa={self.adequation():.3f}, "
            f"δs={self.satisfaction():.3f})"
        )
