"""Bounded interaction memories (the paper's "k last interactions").

Section 3 of the paper defines every participant characteristic
(adequation, satisfaction, allocation satisfaction) as an average over the
participant's *k last interactions* with the system: the k last issued
queries for a consumer, the k last proposed queries for a provider.

This module provides the storage for those sliding windows:

* :class:`InteractionMemory` — a scalar ring buffer with O(1) running
  mean, used by the object-level profiles in
  :mod:`repro.model.consumer_profile` and
  :mod:`repro.model.provider_profile`.
* :class:`RowRingLog` — a vectorised bank of per-entity ring buffers with
  several value channels and per-channel running sums, used on the
  simulator hot path where one query touches hundreds of providers at
  once.

Running sums accumulate floating-point drift, so both classes refresh
their sums from the raw buffer after a fixed number of pushes; tests
assert the running mean never diverges from a recomputed one.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

__all__ = ["InteractionMemory", "RowRingLog"]

#: Refresh running sums from the raw buffer every this many pushes.
_RESYNC_INTERVAL = 4096


class InteractionMemory:
    """A fixed-capacity ring buffer of floats with an O(1) running mean.

    Models the memory a single participant keeps of its ``k`` last
    interactions (footnote 3 of the paper: ``k`` may differ per
    participant).  Once more than ``capacity`` values have been pushed,
    the oldest value silently falls out of the window, exactly as the
    paper's sliding assessment requires.

    Parameters
    ----------
    capacity:
        The ``k`` of the paper — how many interactions are remembered.
        Must be a positive integer.

    Examples
    --------
    >>> mem = InteractionMemory(capacity=2)
    >>> mem.push(1.0)
    >>> mem.push(0.0)
    >>> mem.push(0.5)      # evicts the 1.0
    >>> mem.mean()
    0.25
    """

    __slots__ = ("_buffer", "_capacity", "_count", "_pos", "_pushes", "_sum")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = int(capacity)
        self._buffer = np.zeros(self._capacity, dtype=float)
        self._pos = 0
        self._count = 0
        self._sum = 0.0
        self._pushes = 0

    @property
    def capacity(self) -> int:
        """The window size ``k``."""
        return self._capacity

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        # An empty memory is falsy, mirroring standard containers.
        return self._count > 0

    def __iter__(self) -> Iterator[float]:
        return iter(self.values())

    def push(self, value: float) -> None:
        """Record one interaction, evicting the oldest if at capacity."""
        if self._count == self._capacity:
            self._sum -= self._buffer[self._pos]
        else:
            self._count += 1
        self._buffer[self._pos] = value
        self._sum += value
        self._pos = (self._pos + 1) % self._capacity
        self._pushes += 1
        if self._pushes % _RESYNC_INTERVAL == 0:
            self._resync()

    def extend(self, values: Sequence[float]) -> None:
        """Push several interactions in chronological order."""
        for value in values:
            self.push(value)

    def mean(self, default: float = 0.0) -> float:
        """Average of the remembered window, or ``default`` when empty."""
        if self._count == 0:
            return default
        return self._sum / self._count

    def values(self) -> np.ndarray:
        """The remembered values, oldest first (a copy)."""
        if self._count < self._capacity:
            return self._buffer[: self._count].copy()
        return np.concatenate(
            (self._buffer[self._pos :], self._buffer[: self._pos])
        )

    def clear(self) -> None:
        """Forget every interaction."""
        self._buffer[:] = 0.0
        self._pos = 0
        self._count = 0
        self._sum = 0.0

    def _resync(self) -> None:
        if self._count < self._capacity:
            self._sum = float(self._buffer[: self._count].sum())
        else:
            self._sum = float(self._buffer.sum())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"InteractionMemory(capacity={self._capacity}, "
            f"len={self._count}, mean={self.mean():.4f})"
        )


class RowRingLog:
    """A bank of per-row ring buffers with named channels and masked sums.

    One row per entity (e.g. one per provider), each row a sliding window
    of the entity's last ``capacity`` interactions.  Every interaction
    carries one float per *channel* (e.g. the shown intention and the
    private preference) plus a boolean *performed* flag.  The class keeps,
    per row and channel, a running sum over the whole window and a running
    sum restricted to performed entries, which is exactly what
    Definitions 4 and 5 of the paper need (adequation averages over all
    proposed queries, satisfaction only over the performed subset).

    All mutating operations accept arrays of row indices so that a single
    query that is proposed to hundreds of providers costs one vectorised
    call.

    Parameters
    ----------
    rows:
        Number of entities.
    capacity:
        Window size ``k`` shared by all rows.
    channels:
        Names of the float channels stored per interaction.
    """

    def __init__(self, rows: int, capacity: int, channels: Sequence[str]) -> None:
        if rows <= 0:
            raise ValueError(f"rows must be positive, got {rows}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not channels:
            raise ValueError("at least one channel is required")
        if len(set(channels)) != len(channels):
            raise ValueError(f"duplicate channel names in {channels!r}")
        self._rows = int(rows)
        self._capacity = int(capacity)
        self._channels = tuple(channels)
        self._data = {
            name: np.zeros((self._rows, self._capacity), dtype=float)
            for name in self._channels
        }
        self._performed = np.zeros((self._rows, self._capacity), dtype=bool)
        self._pos = np.zeros(self._rows, dtype=np.int64)
        self._count = np.zeros(self._rows, dtype=np.int64)
        self._sum_all = {
            name: np.zeros(self._rows, dtype=float) for name in self._channels
        }
        self._sum_performed = {
            name: np.zeros(self._rows, dtype=float) for name in self._channels
        }
        self._count_performed = np.zeros(self._rows, dtype=np.int64)
        self._pushes = 0

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def channels(self) -> tuple[str, ...]:
        return self._channels

    def counts(self) -> np.ndarray:
        """Per-row number of remembered interactions (copy)."""
        return self._count.copy()

    def performed_counts(self) -> np.ndarray:
        """Per-row number of remembered *performed* interactions (copy)."""
        return self._count_performed.copy()

    def push(
        self,
        row_indices: np.ndarray,
        values: dict[str, np.ndarray],
        performed: np.ndarray,
    ) -> None:
        """Record one interaction for each row in ``row_indices``.

        Parameters
        ----------
        row_indices:
            Integer array of distinct rows that observed this interaction.
        values:
            Mapping from channel name to a float array aligned with
            ``row_indices``.
        performed:
            Boolean array aligned with ``row_indices``; ``True`` where the
            row actually performed the interaction (for providers: the
            query was allocated to them).
        """
        rows = np.asarray(row_indices, dtype=np.int64)
        if rows.size == 0:
            return
        performed = np.asarray(performed, dtype=bool)
        if performed.shape != rows.shape:
            raise ValueError("performed must align with row_indices")
        if set(values) != set(self._channels):
            missing = set(self._channels) ^ set(values)
            raise ValueError(f"channel mismatch: {sorted(missing)}")

        pos = self._pos[rows]
        full = self._count[rows] == self._capacity
        old_performed = self._performed[rows, pos] & full

        for name in self._channels:
            new = np.asarray(values[name], dtype=float)
            if new.shape != rows.shape:
                raise ValueError(f"channel {name!r} must align with row_indices")
            old = self._data[name][rows, pos]
            # Evict the outgoing entry from both running sums, then add
            # the incoming one.
            np.subtract.at(self._sum_all[name], rows, np.where(full, old, 0.0))
            np.subtract.at(
                self._sum_performed[name],
                rows,
                np.where(old_performed, old, 0.0),
            )
            self._data[name][rows, pos] = new
            np.add.at(self._sum_all[name], rows, new)
            np.add.at(
                self._sum_performed[name], rows, np.where(performed, new, 0.0)
            )

        np.subtract.at(
            self._count_performed, rows, old_performed.astype(np.int64)
        )
        np.add.at(self._count_performed, rows, performed.astype(np.int64))
        self._performed[rows, pos] = performed
        self._count[rows] = np.minimum(self._count[rows] + 1, self._capacity)
        self._pos[rows] = (pos + 1) % self._capacity

        self._pushes += 1
        if self._pushes % _RESYNC_INTERVAL == 0:
            self._resync()

    def push_all_rows(
        self, values: dict[str, np.ndarray], performed: np.ndarray
    ) -> None:
        """Record one interaction observed by *every* row.

        This is the common case in the paper's evaluation, where every
        provider is able to treat every query and therefore every query is
        proposed to all of them.
        """
        self.push(np.arange(self._rows), values, performed)

    def mean_all(self, channel: str, default: float = 0.0) -> np.ndarray:
        """Per-row mean of ``channel`` over the whole window."""
        sums = self._sum_all[channel]
        out = np.full(self._rows, default, dtype=float)
        nonempty = self._count > 0
        out[nonempty] = sums[nonempty] / self._count[nonempty]
        return out

    def mean_performed(self, channel: str, default: float = 0.0) -> np.ndarray:
        """Per-row mean of ``channel`` over performed entries only."""
        sums = self._sum_performed[channel]
        out = np.full(self._rows, default, dtype=float)
        nonempty = self._count_performed > 0
        out[nonempty] = sums[nonempty] / self._count_performed[nonempty]
        return out

    def row_values(self, row: int, channel: str) -> np.ndarray:
        """The remembered values of one row/channel, oldest first."""
        count = int(self._count[row])
        pos = int(self._pos[row])
        data = self._data[channel][row]
        if count < self._capacity:
            return data[:count].copy()
        return np.concatenate((data[pos:], data[:pos]))

    def _resync(self) -> None:
        # Rebuild running sums from the raw buffers to cancel FP drift.
        valid = (
            np.arange(self._capacity)[None, :] < self._count[:, None]
        )
        performed = self._performed & valid
        for name in self._channels:
            data = self._data[name]
            self._sum_all[name] = np.where(valid, data, 0.0).sum(axis=1)
            self._sum_performed[name] = np.where(performed, data, 0.0).sum(
                axis=1
            )
        self._count_performed = performed.sum(axis=1)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"RowRingLog(rows={self._rows}, capacity={self._capacity}, "
            f"channels={self._channels!r})"
        )
