"""Bounded interaction memories (the paper's "k last interactions").

Section 3 of the paper defines every participant characteristic
(adequation, satisfaction, allocation satisfaction) as an average over the
participant's *k last interactions* with the system: the k last issued
queries for a consumer, the k last proposed queries for a provider.

This module provides the storage for those sliding windows:

* :class:`InteractionMemory` — a scalar ring buffer with O(1) running
  mean, used by the object-level profiles in
  :mod:`repro.model.consumer_profile` and
  :mod:`repro.model.provider_profile`.
* :class:`RowRingLog` — a vectorised bank of per-entity ring buffers with
  several value channels and per-channel running sums, used on the
  simulator hot path where one query touches hundreds of providers at
  once.  The channels share one stacked storage block so a push updates
  every channel's running sums with single (channels × rows) array
  operations instead of one set of operations per channel.

Running sums accumulate floating-point drift, so both classes refresh
their sums from the raw buffer after a fixed number of pushes; tests
assert the running mean never diverges from a recomputed one.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

__all__ = ["InteractionMemory", "RowRingLog"]

#: Refresh running sums from the raw buffer every this many pushes.
_RESYNC_INTERVAL = 4096


class InteractionMemory:
    """A fixed-capacity ring buffer of floats with an O(1) running mean.

    Models the memory a single participant keeps of its ``k`` last
    interactions (footnote 3 of the paper: ``k`` may differ per
    participant).  Once more than ``capacity`` values have been pushed,
    the oldest value silently falls out of the window, exactly as the
    paper's sliding assessment requires.

    Parameters
    ----------
    capacity:
        The ``k`` of the paper — how many interactions are remembered.
        Must be a positive integer.

    Examples
    --------
    >>> mem = InteractionMemory(capacity=2)
    >>> mem.push(1.0)
    >>> mem.push(0.0)
    >>> mem.push(0.5)      # evicts the 1.0
    >>> mem.mean()
    0.25
    """

    __slots__ = ("_buffer", "_capacity", "_count", "_pos", "_pushes", "_sum")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = int(capacity)
        self._buffer = np.zeros(self._capacity, dtype=float)
        self._pos = 0
        self._count = 0
        self._sum = 0.0
        self._pushes = 0

    @property
    def capacity(self) -> int:
        """The window size ``k``."""
        return self._capacity

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        # An empty memory is falsy, mirroring standard containers.
        return self._count > 0

    def __iter__(self) -> Iterator[float]:
        return iter(self.values())

    def push(self, value: float) -> None:
        """Record one interaction, evicting the oldest if at capacity."""
        if self._count == self._capacity:
            self._sum -= self._buffer[self._pos]
        else:
            self._count += 1
        self._buffer[self._pos] = value
        self._sum += value
        self._pos = (self._pos + 1) % self._capacity
        self._pushes += 1
        if self._pushes % _RESYNC_INTERVAL == 0:
            self._resync()

    def extend(self, values: Sequence[float]) -> None:
        """Push several interactions in chronological order.

        Bulk path: instead of ``len(values)`` scalar pushes, the ring
        slots the new values land in are computed once and written with
        a single vectorised assignment (only the last ``capacity``
        values can survive, so older ones are never written at all).
        The running sum is refreshed from the raw buffer afterwards, so
        it is at least as accurate as the scalar path's incremental sum;
        the remembered window is bit-identical.
        """
        arr = np.asarray(values, dtype=float).reshape(-1)
        if arr.size == 0:
            return
        capacity = self._capacity
        tail = arr[-capacity:]
        slots = (self._pos + np.arange(arr.size - tail.size, arr.size)) % capacity
        self._buffer[slots] = tail
        self._pos = (self._pos + arr.size) % capacity
        self._count = min(self._count + arr.size, capacity)
        self._pushes += arr.size
        self._resync()

    def mean(self, default: float = 0.0) -> float:
        """Average of the remembered window, or ``default`` when empty."""
        if self._count == 0:
            return default
        return self._sum / self._count

    def values(self) -> np.ndarray:
        """The remembered values, oldest first (a copy)."""
        if self._count < self._capacity:
            return self._buffer[: self._count].copy()
        return np.concatenate(
            (self._buffer[self._pos :], self._buffer[: self._pos])
        )

    def clear(self) -> None:
        """Forget every interaction."""
        self._buffer[:] = 0.0
        self._pos = 0
        self._count = 0
        self._sum = 0.0

    def _resync(self) -> None:
        if self._count < self._capacity:
            self._sum = float(self._buffer[: self._count].sum())
        else:
            self._sum = float(self._buffer.sum())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"InteractionMemory(capacity={self._capacity}, "
            f"len={self._count}, mean={self.mean():.4f})"
        )


class RowRingLog:
    """A bank of per-row ring buffers with named channels and masked sums.

    One row per entity (e.g. one per provider), each row a sliding window
    of the entity's last ``capacity`` interactions.  Every interaction
    carries one float per *channel* (e.g. the shown intention and the
    private preference) plus a boolean *performed* flag.  The class keeps,
    per row and channel, a running sum over the whole window and a running
    sum restricted to performed entries, which is exactly what
    Definitions 4 and 5 of the paper need (adequation averages over all
    proposed queries, satisfaction only over the performed subset).

    All mutating operations accept arrays of row indices so that a single
    query that is proposed to hundreds of providers costs one vectorised
    call.

    Parameters
    ----------
    rows:
        Number of entities.
    capacity:
        Window size ``k`` shared by all rows.
    channels:
        Names of the float channels stored per interaction.
    """

    def __init__(self, rows: int, capacity: int, channels: Sequence[str]) -> None:
        if rows <= 0:
            raise ValueError(f"rows must be positive, got {rows}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not channels:
            raise ValueError("at least one channel is required")
        if len(set(channels)) != len(channels):
            raise ValueError(f"duplicate channel names in {channels!r}")
        self._rows = int(rows)
        self._capacity = int(capacity)
        self._channels = tuple(channels)
        self._channel_set = frozenset(self._channels)
        self._channel_index = {
            name: index for index, name in enumerate(self._channels)
        }
        n_channels = len(self._channels)
        # Slot-major, channel-last storage: ``_data[slot]`` is the
        # contiguous (rows x channels) plane every row writes its
        # ``slot``-th interaction into.  Rows that are always pushed
        # together stay in ring lockstep, so the common full-population
        # push touches exactly one contiguous plane (see _push_many);
        # the channel axis rides along in the same operations.
        self._data = np.zeros(
            (self._capacity, self._rows, n_channels), dtype=float
        )
        self._performed = np.zeros((self._capacity, self._rows), dtype=bool)
        self._pos = np.zeros(self._rows, dtype=np.int64)
        self._count = np.zeros(self._rows, dtype=np.int64)
        self._sum_all = np.zeros((self._rows, n_channels), dtype=float)
        self._sum_performed = np.zeros((self._rows, n_channels), dtype=float)
        self._count_performed = np.zeros(self._rows, dtype=np.int64)
        self._pushes = 0
        self._generation = 0
        self._empty_rows = np.empty(0, dtype=np.int64)
        self._arange = np.arange(self._rows)
        # Identity cache: the last rows array verified to be arange(rows)
        # (callers like the engine reuse one cached candidates array, so
        # an `is` check replaces an elementwise comparison per push).
        self._known_full_rows: np.ndarray | None = None
        # Lockstep bookkeeping.  _uniform_slot is the ring slot every
        # row currently sits at while the whole bank advances together
        # (None once any partial push breaks global lockstep); _all_full
        # latches once every window has filled — counts never decrease,
        # so from then on eviction bookkeeping needs no masks.
        self._uniform_slot: int | None = 0
        self._all_full = False
        self._dirty_mask: np.ndarray | None = None
        # Push-path tallies (telemetry reads these; plain ints, always
        # maintained — they never feed back into the simulation).
        self.uniform_pushes = 0
        self.scattered_pushes = 0
        self.scalar_pushes = 0

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def channels(self) -> tuple[str, ...]:
        return self._channels

    @property
    def generation(self) -> int:
        """Bumped whenever the running sums are rebuilt wholesale.

        A drift-cancelling :meth:`_resync` rewrites the sums of *every*
        row, so any caller maintaining derived per-row caches (the
        participant pools) must discard them when this changes; between
        generations only the rows reported by :meth:`push` are dirtied.
        """
        return self._generation

    def push_stats(self) -> dict[str, int]:
        """How often each push path ran (uniform fast path vs rest)."""
        return {
            "uniform": self.uniform_pushes,
            "scattered": self.scattered_pushes,
            "scalar": self.scalar_pushes,
        }

    def counts(self) -> np.ndarray:
        """Per-row number of remembered interactions (copy)."""
        return self._count.copy()

    def performed_counts(self) -> np.ndarray:
        """Per-row number of remembered *performed* interactions (copy)."""
        return self._count_performed.copy()

    def push(
        self,
        row_indices: np.ndarray,
        values: dict[str, np.ndarray],
        performed: np.ndarray,
    ) -> np.ndarray:
        """Record one interaction for each row in ``row_indices``.

        Parameters
        ----------
        row_indices:
            Integer array of **distinct** rows that observed this
            interaction.  Distinctness is a hard requirement, not a
            hint: the running sums accumulate with fancy indexing,
            which silently drops duplicate contributions (no error is
            raised), corrupting every mean until the next resync.
        values:
            Mapping from channel name to a float array aligned with
            ``row_indices``.
        performed:
            Boolean array aligned with ``row_indices``; ``True`` where the
            row actually performed the interaction (for providers: the
            query was allocated to them).

        Returns
        -------
        numpy.ndarray
            The subset of ``row_indices`` whose *performed* running sums
            changed — rows that performed this interaction or evicted a
            performed one.  (Every pushed row's whole-window sums change,
            so there is no point reporting those.)  Callers maintaining
            performed-mean caches only need to refresh these rows.
        """
        rows = np.asarray(row_indices, dtype=np.int64)
        if rows.size == 0:
            return self._empty_rows
        performed = np.asarray(performed, dtype=bool)
        if performed.shape != rows.shape:
            raise ValueError("performed must align with row_indices")
        if values.keys() != self._channel_set:
            missing = set(self._channels) ^ set(values)
            raise ValueError(f"channel mismatch: {sorted(missing)}")

        if rows.size == 1:
            dirty = self._push_one(int(rows[0]), values, bool(performed[0]))
            dirty_rows = rows if dirty else self._empty_rows
        else:
            dirty_rows = self._push_many(rows, values, performed)

        self._pushes += 1
        if self._pushes % _RESYNC_INTERVAL == 0:
            self._resync()
        return dirty_rows

    def _stack_values(
        self, values: dict[str, np.ndarray], shape: tuple[int, ...]
    ) -> np.ndarray:
        stacked = np.empty(shape + (len(self._channels),), dtype=float)
        for name, index in self._channel_index.items():
            new = np.asarray(values[name], dtype=float)
            if new.shape != shape:
                raise ValueError(f"channel {name!r} must align with row_indices")
            stacked[..., index] = new
        return stacked

    def _is_all_rows(self, rows: np.ndarray) -> bool:
        if rows.size != self._rows:
            return False
        if rows is self._arange or rows is self._known_full_rows:
            return True
        if np.array_equal(rows, self._arange):
            self._known_full_rows = rows
            return True
        return False

    def _push_many(
        self,
        rows: np.ndarray,
        values: dict[str, np.ndarray],
        performed: np.ndarray,
    ) -> np.ndarray:
        new = self._stack_values(values, rows.shape)
        all_rows = self._is_all_rows(rows)
        if all_rows and self._uniform_slot is not None:
            # Global lockstep: the slot is known without touching _pos.
            self._push_uniform_slot(
                rows, self._uniform_slot, new, performed, all_rows=True
            )
            return rows[self._dirty_mask]
        pos = self._pos if all_rows else self._pos[rows]
        slot = pos[0]
        if (pos == slot).all():
            self._push_uniform_slot(
                rows, int(slot), new, performed, all_rows=all_rows
            )
            return rows[self._dirty_mask]
        self._uniform_slot = None
        return self._push_scattered(rows, pos, new, performed)

    def _push_uniform_slot(
        self,
        rows: np.ndarray,
        slot: int,
        new: np.ndarray,
        performed: np.ndarray,
        all_rows: bool,
    ) -> None:
        # All pushed rows share one ring slot (they have been pushed in
        # lockstep since construction — the universal-matchmaker hot
        # path, including after departures shrink the set).  One
        # contiguous plane holds every outgoing and incoming value, so
        # the update is a handful of dense (rows x channels) operations
        # with no scatter machinery at all.  Once every window is full
        # the eviction masks collapse (full ≡ True) and the whole update
        # shrinks further.  The order of the sum updates (evict old,
        # then add new) matches the scattered path, so the running sums
        # stay bit-identical whichever path a push takes.
        self.uniform_pushes += 1
        plane = self._data[slot]
        performed_plane = self._performed[slot]
        capacity = self._capacity
        if all_rows:
            old = plane  # live view: consumed before the overwrite below
            if self._all_full:
                old_performed = performed_plane  # live view, same caveat
                self._sum_all -= old
            else:
                full = self._count == capacity
                old_performed = performed_plane & full
                self._sum_all -= np.where(full[:, None], old, 0.0)
            self._sum_performed -= np.where(
                old_performed[:, None], old, 0.0
            )
            self._dirty_mask = performed | old_performed
            self._count_performed += performed.astype(
                np.int64
            ) - old_performed.astype(np.int64)
            plane[...] = new
            self._sum_all += new
            self._sum_performed += np.where(performed[:, None], new, 0.0)
            performed_plane[...] = performed
            if not self._all_full:
                np.minimum(self._count + 1, capacity, out=self._count)
                if bool((self._count == capacity).all()):
                    self._all_full = True
            self._pos[...] = (slot + 1) % capacity
            self._uniform_slot = (slot + 1) % capacity
        else:
            old = plane[rows]
            if self._all_full:
                old_performed = performed_plane[rows]
                self._sum_all[rows] -= old
            else:
                full = self._count[rows] == capacity
                old_performed = performed_plane[rows] & full
                self._sum_all[rows] -= np.where(full[:, None], old, 0.0)
            self._sum_performed[rows] -= np.where(
                old_performed[:, None], old, 0.0
            )
            self._dirty_mask = performed | old_performed
            self._count_performed[rows] += performed.astype(
                np.int64
            ) - old_performed.astype(np.int64)
            plane[rows] = new
            self._sum_all[rows] += new
            self._sum_performed[rows] += np.where(
                performed[:, None], new, 0.0
            )
            performed_plane[rows] = performed
            if not self._all_full:
                self._count[rows] = np.minimum(
                    self._count[rows] + 1, capacity
                )
                if bool((self._count == capacity).all()):
                    self._all_full = True
            self._pos[rows] = (slot + 1) % capacity
            self._uniform_slot = None

    def _push_scattered(
        self,
        rows: np.ndarray,
        pos: np.ndarray,
        new: np.ndarray,
        performed: np.ndarray,
    ) -> np.ndarray:
        # General path: rows sit at different ring positions.  Rows are
        # distinct (see the push docstring), so plain fancy indexing
        # accumulates exactly like a duplicate-safe ufunc.at scatter
        # would, without its overhead.
        self.scattered_pushes += 1
        full = self._count[rows] == self._capacity
        old_performed = self._performed[pos, rows] & full

        old = self._data[pos, rows]
        # Evict the outgoing entry from both running sums, then add the
        # incoming one; the channel axis rides along contiguously.
        self._sum_all[rows] -= np.where(full[:, None], old, 0.0)
        self._sum_performed[rows] -= np.where(old_performed[:, None], old, 0.0)
        self._data[pos, rows] = new
        self._sum_all[rows] += new
        self._sum_performed[rows] += np.where(performed[:, None], new, 0.0)

        self._count_performed[rows] += performed.astype(
            np.int64
        ) - old_performed.astype(np.int64)
        self._performed[pos, rows] = performed
        if not self._all_full:
            self._count[rows] = np.minimum(
                self._count[rows] + 1, self._capacity
            )
        self._pos[rows] = (pos + 1) % self._capacity
        return rows[performed | old_performed]

    def push_scalar(
        self, row: int, values: Sequence[float], performed: bool
    ) -> bool:
        """Scalar push of one row, values given in channel order.

        The cheapest way to record a single participant's interaction
        (every consumer query): no index arrays, no per-channel dict of
        singleton arrays.  Arithmetic and resync cadence are identical
        to :meth:`push` with one row.  Returns whether the performed
        running sums moved (the row performed or evicted a performed
        entry).
        """
        if len(values) != len(self._channels):
            raise ValueError(
                f"expected {len(self._channels)} channel values, "
                f"got {len(values)}"
            )
        dirty = self._apply_scalar_push(row, values, performed)
        self._pushes += 1
        if self._pushes % _RESYNC_INTERVAL == 0:
            self._resync()
        return dirty

    def _push_one(
        self, row: int, values: dict[str, np.ndarray], performed: bool
    ) -> bool:
        # push() with a single row: validate the per-channel singleton
        # arrays, then run the same scalar core as push_scalar (the
        # push() wrapper owns the pushes/resync bookkeeping here).
        scalars = []
        for name in self._channels:
            new_arr = np.asarray(values[name], dtype=float)
            if new_arr.shape != (1,):
                raise ValueError(f"channel {name!r} must align with row_indices")
            scalars.append(new_arr[0])
        return self._apply_scalar_push(row, scalars, performed)

    def _apply_scalar_push(
        self, row: int, values: Sequence[float], performed: bool
    ) -> bool:
        # Scalar core shared by push_scalar and single-row push(): plain
        # float arithmetic in the same evict-old-then-add-new order as
        # the vector paths, so the sums stay bit-identical while
        # skipping all the fancy indexing machinery.  Returns whether
        # the performed sums moved.
        self.scalar_pushes += 1
        pos = int(self._pos[row])
        full = int(self._count[row]) == self._capacity
        old_performed = full and bool(self._performed[pos, row])

        data = self._data
        sum_all = self._sum_all
        sum_performed = self._sum_performed
        for index, value in enumerate(values):
            new = float(value)
            old = float(data[pos, row, index])
            if full:
                sum_all[row, index] -= old
            if old_performed:
                sum_performed[row, index] -= old
            data[pos, row, index] = new
            sum_all[row, index] += new
            if performed:
                sum_performed[row, index] += new

        self._count_performed[row] += int(performed) - int(old_performed)
        self._performed[pos, row] = performed
        if not full:
            self._count[row] += 1
        self._pos[row] = (pos + 1) % self._capacity
        if self._rows > 1:
            self._uniform_slot = None
        else:
            self._uniform_slot = (pos + 1) % self._capacity
        return performed or old_performed

    def push_all_rows(
        self, values: dict[str, np.ndarray], performed: np.ndarray
    ) -> np.ndarray:
        """Record one interaction observed by *every* row.

        This is the common case in the paper's evaluation, where every
        provider is able to treat every query and therefore every query is
        proposed to all of them.
        """
        return self.push(self._arange, values, performed)

    def mean_all(self, channel: str, default: float = 0.0) -> np.ndarray:
        """Per-row mean of ``channel`` over the whole window."""
        sums = self._sum_all[:, self._channel_index[channel]]
        out = np.full(self._rows, default, dtype=float)
        nonempty = self._count > 0
        out[nonempty] = sums[nonempty] / self._count[nonempty]
        return out

    def mean_performed(self, channel: str, default: float = 0.0) -> np.ndarray:
        """Per-row mean of ``channel`` over performed entries only."""
        sums = self._sum_performed[:, self._channel_index[channel]]
        out = np.full(self._rows, default, dtype=float)
        nonempty = self._count_performed > 0
        out[nonempty] = sums[nonempty] / self._count_performed[nonempty]
        return out

    def mean_all_rows(
        self, channel: str, rows: np.ndarray, default: float = 0.0
    ) -> np.ndarray:
        """:meth:`mean_all` restricted to ``rows`` (bit-identical there).

        The per-row arithmetic is the same elementwise sum/count divide
        as the full-population method, so a cache refreshed row-by-row
        through this never drifts from a wholesale recompute.
        """
        sums = self._sum_all[rows, self._channel_index[channel]]
        counts = self._count[rows]
        out = np.full(rows.shape, default, dtype=float)
        nonempty = counts > 0
        out[nonempty] = sums[nonempty] / counts[nonempty]
        return out

    def mean_performed_rows(
        self, channel: str, rows: np.ndarray, default: float = 0.0
    ) -> np.ndarray:
        """:meth:`mean_performed` restricted to ``rows``."""
        sums = self._sum_performed[rows, self._channel_index[channel]]
        counts = self._count_performed[rows]
        out = np.full(rows.shape, default, dtype=float)
        nonempty = counts > 0
        out[nonempty] = sums[nonempty] / counts[nonempty]
        return out

    def mean_all_one(
        self, channel: str, row: int, default: float = 0.0
    ) -> float:
        """:meth:`mean_all` of a single row, as a scalar."""
        count = self._count[row]
        if count == 0:
            return default
        return float(self._sum_all[row, self._channel_index[channel]] / count)

    def mean_performed_one(
        self, channel: str, row: int, default: float = 0.0
    ) -> float:
        """:meth:`mean_performed` of a single row, as a scalar."""
        count = self._count_performed[row]
        if count == 0:
            return default
        return float(
            self._sum_performed[row, self._channel_index[channel]] / count
        )

    def row_values(self, row: int, channel: str) -> np.ndarray:
        """The remembered values of one row/channel, oldest first."""
        count = int(self._count[row])
        pos = int(self._pos[row])
        data = self._data[:, row, self._channel_index[channel]]
        if count < self._capacity:
            return data[:count].copy()
        return np.concatenate((data[pos:], data[:pos]))

    def _resync(self) -> None:
        # Rebuild running sums from the raw buffers to cancel FP drift.
        self._generation += 1
        # valid[slot, row]: slot holds a live interaction of row.
        valid = (
            np.arange(self._capacity)[:, None] < self._count[None, :]
        )
        performed = self._performed & valid
        self._sum_all = np.where(valid[:, :, None], self._data, 0.0).sum(axis=0)
        self._sum_performed = np.where(
            performed[:, :, None], self._data, 0.0
        ).sum(axis=0)
        self._count_performed = performed.sum(axis=0)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"RowRingLog(rows={self._rows}, capacity={self._capacity}, "
            f"channels={self._channels!r})"
        )
