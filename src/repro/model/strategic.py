"""Strategic providers: misreporting preferences to game allocation.

The paper assumes providers report their preferences truthfully; SQLB's
intention mechanism then balances those reports against utilization.
This module models the adversarial case — a fixed subset of providers
systematically distorts the preferences they *report* while their
*private* satisfaction is still judged against the truth:

* ``exaggerate`` — strategic providers push reported preferences toward
  +1 (claiming eagerness to attract allocations, e.g. to farm
  interactions or starve competitors).
* ``understate`` — strategic providers push reports toward -1 (feigning
  reluctance so the mediator "compensates" them, gaming intention-aware
  methods that favour unwilling providers).

The distortion is a deterministic transform of the truthful draw:
``p + gain * (1 - p)`` toward +1, ``p - gain * (p + 1)`` toward -1.
Which providers are strategic is drawn once, at simulation setup, from
a dedicated RNG stream (requested only when a spec is configured), and
:meth:`StrategicReporting.report` itself consumes no randomness — so a
config with ``strategic=None`` is bit-identical to the baseline.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["StrategicReporting", "StrategicSpec"]

_MODES = ("exaggerate", "understate")


@dataclasses.dataclass(frozen=True)
class StrategicSpec:
    """Which fraction of providers misreports, and how hard.

    ``gain`` is the step toward the extreme: 0 < gain <= 1, where 1
    reports exactly the extreme regardless of the truthful value.
    """

    fraction: float = 0.25
    mode: str = "exaggerate"
    gain: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(
                f"strategic fraction must be in (0, 1], got {self.fraction}"
            )
        if self.mode not in _MODES:
            raise ValueError(
                f"strategic mode must be one of {_MODES}, got {self.mode!r}"
            )
        if not 0.0 < self.gain <= 1.0:
            raise ValueError(
                f"strategic gain must be in (0, 1], got {self.gain}"
            )


class StrategicReporting:
    """Applies one :class:`StrategicSpec` to truthful preference draws.

    The strategic membership mask is fixed for the whole run; ``report``
    maps a truthful per-candidate preference vector to the reported one
    without mutating the input and without consuming RNG.
    """

    __slots__ = ("mode", "gain", "strategic_mask", "_cached_providers",
                 "_cached_member")

    def __init__(
        self,
        spec: StrategicSpec,
        n_providers: int,
        rng: np.random.Generator,
    ) -> None:
        size = max(1, round(spec.fraction * n_providers))
        chosen = rng.choice(n_providers, size=size, replace=False)
        mask = np.zeros(n_providers, dtype=bool)
        mask[chosen] = True
        self.mode = spec.mode
        self.gain = spec.gain
        self.strategic_mask = mask
        # Identity-keyed cache of the per-candidate membership gather —
        # the engine reuses one candidates array object between
        # departures (see ProviderPreferences.draw for the same idiom).
        self._cached_providers: np.ndarray | None = None
        self._cached_member: np.ndarray | None = None

    def report(
        self, providers: np.ndarray, preferences: np.ndarray
    ) -> np.ndarray:
        """Reported preferences of a candidate subset.

        ``providers`` indexes the pool; ``preferences`` is the truthful
        draw for exactly those candidates.  Non-strategic entries pass
        through unchanged.
        """
        if providers is not self._cached_providers:
            self._cached_member = self.strategic_mask[providers]
            self._cached_providers = providers
        member = self._cached_member
        if not member.any():
            return preferences
        reported = preferences.copy()
        truthful = reported[member]
        if self.mode == "exaggerate":
            reported[member] = truthful + self.gain * (1.0 - truthful)
        else:
            reported[member] = truthful - self.gain * (truthful + 1.0)
        return reported
