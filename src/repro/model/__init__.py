"""The satisfaction model of the paper (Sections 3 and 4).

Exports the participant characterisations (adequation, satisfaction,
allocation satisfaction over the k last interactions) and the three
system metrics (mean, Jain fairness, Min-Max balance).
"""

from repro.model.consumer_profile import (
    ConsumerProfile,
    query_adequation,
    query_satisfaction,
)
from repro.model.memory import InteractionMemory, RowRingLog
from repro.model.metrics import (
    DEFAULT_MIN_MAX_C0,
    fairness,
    fairness_of,
    mean,
    mean_of,
    min_max_ratio,
    min_max_ratio_of,
    summarize,
)
from repro.model.provider_profile import ProviderProfile
from repro.model.strategic import StrategicReporting, StrategicSpec

__all__ = [
    "DEFAULT_MIN_MAX_C0",
    "ConsumerProfile",
    "InteractionMemory",
    "ProviderProfile",
    "RowRingLog",
    "StrategicReporting",
    "StrategicSpec",
    "fairness",
    "fairness_of",
    "mean",
    "mean_of",
    "min_max_ratio",
    "min_max_ratio_of",
    "query_adequation",
    "query_satisfaction",
    "summarize",
]
