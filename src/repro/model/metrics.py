"""System-level quality metrics (Section 4 of the paper).

The paper evaluates query-allocation methods with three complementary
metrics applied over a set ``S`` of participants and a characteristic
``g`` (adequation, satisfaction, allocation satisfaction, or utilisation):

* :func:`mean` — the arithmetic mean ``µ(g, S)`` (Equation 3), reflecting
  the *efficiency* of the method.
* :func:`fairness` — Jain's fairness index ``f(g, S)`` (Equation 4,
  citing Jain et al., DEC-TR-301), reflecting the *sensitivity* of the
  method to individual participants.
* :func:`min_max_ratio` — the Min-Max balance ``σ(g, S)`` (Equation 5),
  reflecting how far the worst-off participant is from the best-off.

Each metric has a value-based form (takes an array of ``g`` values) and
an entity-based convenience form (takes ``g`` as a callable plus the set
``S``), matching the paper's ``g, S`` notation.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import TypeVar

import numpy as np

__all__ = [
    "DEFAULT_MIN_MAX_C0",
    "fairness",
    "fairness_of",
    "mean",
    "mean_of",
    "min_max_ratio",
    "min_max_ratio_of",
    "summarize",
]

T = TypeVar("T")

#: Default for the paper's pre-fixed constant ``c0 > 0`` in Equation 5.
DEFAULT_MIN_MAX_C0 = 0.1


def _as_values(values: Iterable[float]) -> np.ndarray:
    array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                       dtype=float)
    if array.ndim != 1:
        raise ValueError(f"expected a 1-D collection of values, got shape {array.shape}")
    if array.size == 0:
        raise ValueError("metrics are undefined over an empty set of participants")
    if not np.all(np.isfinite(array)):
        raise ValueError("metrics require finite values")
    return array


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean ``µ`` of a set of characteristic values (Eq. 3).

    The paper uses the arithmetic mean because participant
    characteristics are additive and may legitimately be zero (which
    rules out the geometric/harmonic means).

    Raises
    ------
    ValueError
        If ``values`` is empty or contains non-finite entries.
    """
    return float(_as_values(values).mean())


def fairness(values: Iterable[float]) -> float:
    """Jain's fairness index ``f`` of a set of values (Eq. 4).

    ``f(g, S) = (Σ g(s))² / (|S| · Σ g(s)²)``, in ``[0, 1]``; the greater
    the value, the fairer the allocation across ``S``.

    An all-zero set is treated as perfectly fair (``1.0``): every
    participant gets exactly the same (null) outcome, and the paper's
    formula is otherwise undefined there.
    """
    array = _as_values(values)
    denom = float(np.square(array).sum())
    if denom == 0.0:
        return 1.0
    total = float(array.sum())
    return (total * total) / (array.size * denom)


def min_max_ratio(
    values: Iterable[float], c0: float = DEFAULT_MIN_MAX_C0
) -> float:
    """Min-Max balance ``σ`` of a set of values (Eq. 5).

    ``σ(g, S) = (min g(s) + c0) / (max g(s) + c0)`` with a pre-fixed
    constant ``c0 > 0`` that keeps the ratio defined when the maximum is
    zero.  Values lie in ``(0, 1]`` for non-negative inputs; the greater,
    the better balanced.  A low value flags a *punished* participant.
    """
    if c0 <= 0:
        raise ValueError(f"c0 must be positive, got {c0}")
    array = _as_values(values)
    return (float(array.min()) + c0) / (float(array.max()) + c0)


def mean_of(g: Callable[[T], float], entities: Iterable[T]) -> float:
    """``µ(g, S)`` in the paper's notation: mean of ``g`` over ``S``."""
    return mean([g(entity) for entity in entities])


def fairness_of(g: Callable[[T], float], entities: Iterable[T]) -> float:
    """``f(g, S)`` in the paper's notation: fairness of ``g`` over ``S``."""
    return fairness([g(entity) for entity in entities])


def min_max_ratio_of(
    g: Callable[[T], float],
    entities: Iterable[T],
    c0: float = DEFAULT_MIN_MAX_C0,
) -> float:
    """``σ(g, S)`` in the paper's notation: balance of ``g`` over ``S``."""
    return min_max_ratio([g(entity) for entity in entities], c0=c0)


def summarize(
    values: Iterable[float], c0: float = DEFAULT_MIN_MAX_C0
) -> dict[str, float]:
    """All three Section 4 metrics of one value set, as a dict.

    The paper stresses the metrics are *complementary* — using only one
    loses information — so reports should usually carry all three.
    """
    array = _as_values(values)
    return {
        "mean": mean(array),
        "fairness": fairness(array),
        "min_max_ratio": min_max_ratio(array, c0=c0),
    }
