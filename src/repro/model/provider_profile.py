"""Provider characterisation (Section 3.2 of the paper).

A provider judges the system along three axes, all computed over its
``k`` last *proposed* queries (the set ``PQ_k_p``, whether or not the
query was eventually allocated to it):

* **Adequation** ``δa(p)`` — "how well do my expectations correspond to
  the last queries that have been proposed to me?" (Definition 4): the
  rescaled average of the provider's shown intentions over every proposed
  query.
* **Satisfaction** ``δs(p)`` — "how well do the last queries I have
  treated meet my expectations?" (Definition 5): the same average
  restricted to the *performed* subset ``SQ_k_p ⊆ PQ_k_p``.
* **Allocation satisfaction** ``δas(p) = δs(p) / δa(p)``
  (Definition 6), read exactly like the consumer version.

Both adequation and satisfaction are 0 by definition while the relevant
set is empty.

The profile tracks two value channels per proposed query: the public
**intention** the provider showed to the mediator and its private
**preference**.  The intention-based satisfaction is what the mediator
can observe (used in Equation 6); the preference-based satisfaction is
what the provider privately feels and is the one Definition 8 requires
for computing its next intention (Section 5.2), and the one Figures
4(b)/4(c) plot.
"""

from __future__ import annotations

from repro.model.memory import InteractionMemory

__all__ = ["ProviderProfile"]

#: The two bases a provider characteristic can be computed from.
_BASES = ("intention", "preference")


class ProviderProfile:
    """Sliding-window characterisation of one provider.

    Parameters
    ----------
    k:
        Window size over proposed queries (``proSatSize`` in Table 2;
        500 in the paper's simulations).
    initial_satisfaction:
        Reported while no query has been proposed/performed yet
        (``iniSatisfaction`` in Table 2; 0.5 in the paper).

    Notes
    -----
    Definition 5 averages over ``SQ_k_p``, the performed queries *among
    the k last proposed* — the satisfaction window is coupled to the
    proposed window, it is not an independent buffer of the last k
    performed queries.  We implement that coupling faithfully: each entry
    of the proposed window carries a ``performed`` flag, and satisfaction
    averages the flagged entries only, so a performed query stops
    counting as soon as it ages out of the proposed window.
    """

    __slots__ = (
        "_initial",
        "_intention_all",
        "_intention_performed",
        "_k",
        "_performed_flags",
        "_preference_all",
        "_preference_performed",
    )

    def __init__(self, k: int, initial_satisfaction: float = 0.5) -> None:
        if not 0.0 <= initial_satisfaction <= 1.0:
            raise ValueError(
                f"initial satisfaction must be in [0, 1], got {initial_satisfaction}"
            )
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self._k = int(k)
        self._initial = float(initial_satisfaction)
        # Whole-window running views (adequation numerators).
        self._intention_all = InteractionMemory(k)
        self._preference_all = InteractionMemory(k)
        # Performed-subset bookkeeping: flags aligned with the window plus
        # running sums maintained by replaying evictions.
        self._performed_flags = InteractionMemory(k)
        self._intention_performed = _MaskedRunningMean(k)
        self._preference_performed = _MaskedRunningMean(k)

    @property
    def k(self) -> int:
        """The window size."""
        return self._k

    @property
    def queries_proposed(self) -> int:
        """How many proposed queries are currently in the window."""
        return len(self._intention_all)

    @property
    def queries_performed(self) -> int:
        """How many *performed* queries are currently in the window."""
        return self._intention_performed.count

    def record_proposal(
        self, intention: float, preference: float, performed: bool
    ) -> None:
        """Record one proposed query and whether this provider got it."""
        self._intention_all.push(intention)
        self._preference_all.push(preference)
        self._performed_flags.push(1.0 if performed else 0.0)
        self._intention_performed.push(intention, performed)
        self._preference_performed.push(preference, performed)

    def adequation(self, basis: str = "intention") -> float:
        """``δa(p)`` (Definition 4); 0 when nothing was proposed yet."""
        memory = self._select_all(basis)
        if not memory:
            return 0.0
        return (memory.mean() + 1.0) / 2.0

    def satisfaction(self, basis: str = "intention") -> float:
        """``δs(p)`` (Definition 5); 0 when nothing was performed yet.

        Use ``basis="preference"`` for the private satisfaction that
        Definition 8 (provider intention) and Figure 4(b) require.
        """
        tracker = self._select_performed(basis)
        if tracker.count == 0:
            return 0.0
        return (tracker.mean() + 1.0) / 2.0

    def satisfaction_or_initial(self, basis: str = "intention") -> float:
        """Like :meth:`satisfaction` but the paper's initial value pre-warmup.

        Table 2 initialises every participant's satisfaction at 0.5 and
        lets it *evolve* with interactions; Definition 5's hard zero only
        applies to a provider that genuinely never performed anything.
        Intention computation (Definition 8) uses this variant so a brand
        new provider is not treated as maximally dissatisfied.
        """
        if self.queries_performed == 0:
            return self._initial
        return self.satisfaction(basis)

    def adequation_or_initial(self, basis: str = "intention") -> float:
        """Like :meth:`adequation` but the paper's initial value pre-warmup."""
        if self.queries_proposed == 0:
            return self._initial
        return self.adequation(basis)

    def allocation_satisfaction(self, basis: str = "intention") -> float:
        """``δas(p) = δs(p) / δa(p)`` (Definition 6).

        When adequation is exactly zero we return ``inf`` if satisfaction
        is positive and the neutral ``1.0`` otherwise (same convention as
        the consumer profile).
        """
        adequation = self.adequation(basis)
        satisfaction = self.satisfaction(basis)
        if adequation == 0.0:
            return float("inf") if satisfaction > 0.0 else 1.0
        return satisfaction / adequation

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ProviderProfile(k={self._k}, proposed={self.queries_proposed}, "
            f"performed={self.queries_performed})"
        )

    def _select_all(self, basis: str) -> InteractionMemory:
        if basis == "intention":
            return self._intention_all
        if basis == "preference":
            return self._preference_all
        raise ValueError(f"basis must be one of {_BASES}, got {basis!r}")

    def _select_performed(self, basis: str) -> "_MaskedRunningMean":
        if basis == "intention":
            return self._intention_performed
        if basis == "preference":
            return self._preference_performed
        raise ValueError(f"basis must be one of {_BASES}, got {basis!r}")


class _MaskedRunningMean:
    """Running mean over the flagged subset of a sliding window.

    Keeps its own copy of (value, flag) pairs in a ring so the eviction
    of an old flagged entry correctly shrinks the subset — the behaviour
    Definition 5's ``SQ_k_p ⊆ PQ_k_p`` coupling requires.
    """

    __slots__ = ("_capacity", "_count", "_flags", "_pos", "_size", "_sum", "_values")

    def __init__(self, capacity: int) -> None:
        self._capacity = capacity
        self._values = [0.0] * capacity
        self._flags = [False] * capacity
        self._pos = 0
        self._size = 0
        self._sum = 0.0
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def push(self, value: float, flagged: bool) -> None:
        if self._size == self._capacity and self._flags[self._pos]:
            self._sum -= self._values[self._pos]
            self._count -= 1
        if self._size < self._capacity:
            self._size += 1
        self._values[self._pos] = value
        self._flags[self._pos] = flagged
        if flagged:
            self._sum += value
            self._count += 1
        self._pos = (self._pos + 1) % self._capacity

    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("no flagged entries in the window")
        return self._sum / self._count
