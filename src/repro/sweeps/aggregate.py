"""Cross-shard aggregation: store merging and summary tables.

Two halves:

* :func:`merge_stores` — pull the result entries (and manifests) of any
  number of source store directories into one destination.  Entries are
  content-addressed (SHA-256 over config + method + seed + engine
  version), so merging is a plain union: same key ⇒ same bytes, and
  whichever copy arrives first wins.  This is how a sweep sharded over
  several machines becomes one local store to report from.
* :func:`sweep_summary` / :func:`format_sweep_table` — the per
  (scenario, method) summary of a sweep: *means and quantiles* across
  the repetition seeds, not just means (a method that is fast on
  average but terrible at p90 is exactly what distributional reporting
  exists to catch).  Built on the same
  :class:`~repro.experiments.harness.MethodAverages` the figure
  experiments use, reading results incrementally from the store — a
  fully warm store yields a report with zero new simulations.
"""

from __future__ import annotations

import dataclasses
import math
import shutil
import warnings
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro.experiments.executor import ExperimentExecutor
from repro.experiments.harness import MethodAverages
from repro.simulation.config import SimulationConfig
from repro.sweeps.runner import SweepRunner, manifest_directory
from repro.sweeps.spec import SweepSpec

__all__ = [
    "CI_Z",
    "MergeReport",
    "ScenarioMethodSummary",
    "SUMMARY_QUANTILES",
    "ci_halfwidth",
    "format_sweep_table",
    "merge_stores",
    "summarize_cell",
    "sweep_summary",
]

#: The quantiles summary rows report across the repetition seeds.
#: Shared with the analysis layer's per-sample series bands, so a
#: band's p50/p90 and a summary row's p50/p90 always mean the same
#: thing.
SUMMARY_QUANTILES = (0.5, 0.9)

#: Normal-approximation z for the 95 % confidence intervals the
#: summary, the adaptive seeding controller, and the analysis layer's
#: series bands all report.  One constant, one definition of "CI".
CI_Z = 1.96

# Backwards-compatible private alias (pre-analysis-subsystem name).
_CI_Z = CI_Z


def ci_halfwidth(values: Sequence[float]) -> float:
    """95 % confidence-interval half-width of a mean across seeds.

    Normal approximation: ``z * s / sqrt(n)`` with the sample standard
    deviation (``ddof=1``).  NaN inputs are dropped; with fewer than
    two usable values the half-width is *undefined* and NaN is
    returned — callers must treat that as "no statement", not as zero
    (a single seed is never evidence of convergence).
    """
    usable = np.asarray(
        [v for v in values if not math.isnan(v)], dtype=float
    )
    if usable.size < 2:
        return float("nan")
    return float(
        CI_Z * usable.std(ddof=1) / math.sqrt(usable.size)
    )


@dataclasses.dataclass(frozen=True)
class MergeReport:
    """What one merge did, per destination."""

    destination: Path
    entries_copied: int
    entries_skipped: int
    manifests_copied: int
    manifests_skipped: int


def _merge_pairs(source: Path, destination: Path) -> tuple[int, int]:
    """Copy complete ``<key>.json`` + ``<key>.npz`` pairs; returns
    (copied, skipped).  Incomplete pairs (a crashed writer) are ignored."""
    copied = skipped = 0
    if not source.is_dir():
        return copied, skipped
    for meta in sorted(source.glob("*.json")):
        npz = meta.with_suffix(".npz")
        if not npz.is_file():
            continue
        target_meta = destination / meta.name
        target_npz = destination / npz.name
        if target_meta.is_file() and target_npz.is_file():
            skipped += 1
            continue
        destination.mkdir(parents=True, exist_ok=True)
        # npz first: a reader treats a json without its npz as a miss,
        # never the other way around.
        shutil.copy2(npz, target_npz)
        shutil.copy2(meta, target_meta)
        copied += 1
    return copied, skipped


def merge_stores(
    sources: Sequence[Path | str], destination: Path | str
) -> MergeReport:
    """Union the entries and manifests of ``sources`` into ``destination``.

    Entries are content-addressed, so identical keys hold identical
    payloads and existing destination entries are simply kept.  A source
    equal to the destination is skipped (merging a store into itself is
    a no-op, not an error).
    """
    destination = Path(destination)
    missing = [str(s) for s in sources if not Path(s).is_dir()]
    if missing:
        # A typo'd machine path must fail loudly, not merge an "empty
        # store" and leave the report to quietly re-simulate the gap.
        raise FileNotFoundError(
            f"merge sources do not exist: {', '.join(missing)}"
        )
    entries_copied = entries_skipped = 0
    manifests_copied = manifests_skipped = 0
    for source in sources:
        source = Path(source)
        if source.resolve() == destination.resolve():
            continue
        copied, skipped = _merge_pairs(source, destination)
        entries_copied += copied
        entries_skipped += skipped

        source_manifests = manifest_directory(source)
        if source_manifests.is_dir():
            target_dir = manifest_directory(destination)
            for manifest in sorted(source_manifests.glob("*.json")):
                target = target_dir / manifest.name
                if target.is_file():
                    manifests_skipped += 1
                    continue
                target_dir.mkdir(parents=True, exist_ok=True)
                shutil.copy2(manifest, target)
                manifests_copied += 1
    return MergeReport(
        destination=destination,
        entries_copied=entries_copied,
        entries_skipped=entries_skipped,
        manifests_copied=manifests_copied,
        manifests_skipped=manifests_skipped,
    )


@dataclasses.dataclass(frozen=True)
class ScenarioMethodSummary:
    """Across-seed distributional summary of one sweep cell.

    Response-time quantiles are over the per-seed post-warmup means;
    departure fractions are across-seed means (in [0, 1]); satisfaction
    is the across-seed mean of the final provider intention-based
    satisfaction sample.  ``response_time_ci_halfwidth`` is the 95 % CI
    half-width across seeds — NaN (rendered ``--``) when fewer than two
    seeds make it undefined.
    """

    scenario: str
    method: str
    seeds: int
    response_time_mean: float
    response_time_quantiles: dict[float, float]
    response_time_ci_halfwidth: float
    provider_departure_fraction: float
    consumer_departure_fraction: float
    provider_satisfaction: float


def summarize_cell(
    scenario: str, averages: MethodAverages
) -> ScenarioMethodSummary:
    """Distributional summary of one (scenario, method) cell.

    Single-seed cells are first-class: quantiles degenerate to the one
    value, the CI half-width is NaN (undefined, not zero), and no
    runtime warnings escape — an all-NaN metric (e.g. a run with no
    post-warmup queries) is an expected outcome, not an accident.
    """
    per_seed = np.asarray(
        [r.response_time_post_warmup for r in averages.results]
    )
    with np.errstate(invalid="ignore"), warnings.catch_warnings():
        warnings.filterwarnings(
            "ignore", "All-NaN slice encountered", RuntimeWarning
        )
        warnings.filterwarnings(
            "ignore", "Mean of empty slice", RuntimeWarning
        )
        quantiles = {
            q: float(np.nanquantile(per_seed, q)) for q in SUMMARY_QUANTILES
        }
        final_satisfaction = float(
            np.nanmean(
                [
                    r.series("provider_intention_satisfaction_mean")[-1]
                    for r in averages.results
                ]
            )
        )
        response_time_mean = averages.response_time()
    return ScenarioMethodSummary(
        scenario=scenario,
        method=averages.method,
        seeds=len(averages.results),
        response_time_mean=response_time_mean,
        response_time_quantiles=quantiles,
        response_time_ci_halfwidth=ci_halfwidth(per_seed.tolist()),
        provider_departure_fraction=averages.provider_departure_fraction(),
        consumer_departure_fraction=averages.consumer_departure_fraction(),
        provider_satisfaction=final_satisfaction,
    )


def sweep_summary(
    spec: SweepSpec,
    executor: ExperimentExecutor | None = None,
    base: SimulationConfig | None = None,
) -> list[ScenarioMethodSummary]:
    """Per (scenario, method) summaries for a whole sweep.

    Results come through the executor, so a store populated by earlier
    shard runs — local or merged from other machines — satisfies the
    whole report without a single new simulation; missing cells are
    simulated transparently (run ``sweep status`` first to see whether
    the store is complete).
    """
    runner = SweepRunner(executor)
    run_executor = runner.executor
    jobs = spec.expand(base)
    results = run_executor.run([sj.job for sj in jobs])
    by_cell: dict[tuple[str, str], list] = {}
    for sweep_job, result in zip(jobs, results):
        by_cell.setdefault((sweep_job.scenario, sweep_job.method), []).append(
            result
        )
    summaries = []
    for scenario in spec.scenarios:
        for method in spec.methods:
            averages = MethodAverages(
                method=method,
                results=tuple(by_cell[(scenario, method)]),
            )
            summaries.append(summarize_cell(scenario, averages))
    return summaries


def format_sweep_table(summaries: Sequence[ScenarioMethodSummary]) -> str:
    """Fixed-width table: one row per (scenario, method).

    The CI column prints ``--`` when the half-width is undefined (a
    single-seed cell), never ``nan``.
    """
    quantile_headers = [
        f"rt_p{int(round(q * 100)):02d}(s)" for q in SUMMARY_QUANTILES
    ]
    header = (
        f"{'scenario':<30} {'method':<10} {'seeds':>5} {'rt_mean(s)':>10} "
        + " ".join(f"{h:>10}" for h in quantile_headers)
        + f" {'rt_ci95(s)':>10}"
        + f" {'prov_dep%':>9} {'cons_dep%':>9} {'prov_sat':>8}"
    )
    lines = ["# sweep summary (means and quantiles across seeds)", header]
    for row in summaries:
        quantile_cells = " ".join(
            f"{row.response_time_quantiles[q]:>10.2f}"
            for q in SUMMARY_QUANTILES
        )
        ci = row.response_time_ci_halfwidth
        ci_cell = f"{'--':>10}" if math.isnan(ci) else f"{ci:>10.2f}"
        lines.append(
            f"{row.scenario:<30} {row.method:<10} {row.seeds:>5} "
            f"{row.response_time_mean:>10.2f} {quantile_cells} "
            f"{ci_cell} "
            f"{100.0 * row.provider_departure_fraction:>9.1f} "
            f"{100.0 * row.consumer_departure_fraction:>9.1f} "
            f"{row.provider_satisfaction:>8.3f}"
        )
    return "\n".join(lines)
