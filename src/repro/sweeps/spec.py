"""Declarative sweep specifications.

A :class:`SweepSpec` names a grid — scenarios × methods × seeds at one
scale — and expands it to a *deterministic, ordered* list of simulation
jobs.  Determinism is the load-bearing property: every machine that
holds the same spec derives the same job list, so ``shard k of n`` can
be computed independently everywhere with no coordination, and the
union of all shards is exactly the unsharded list.

``spec_hash`` fingerprints the grid (spec fields only — *not* the
engine version, which the shard manifests record separately), so
manifests from different machines can be matched up by content.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

from repro.allocation.registry import PAPER_METHODS, available_methods
from repro.experiments.executor import SimulationJob
from repro.simulation.config import SimulationConfig
from repro.sweeps.scenarios import (
    SCALES,
    available_scenarios,
    scenario_catalog,
)

__all__ = ["SweepJob", "SweepSpec"]


@dataclasses.dataclass(frozen=True)
class SweepJob:
    """One sweep cell: the owning scenario plus the executable job."""

    scenario: str
    job: SimulationJob

    @property
    def method(self) -> str:
        return self.job.method

    @property
    def seed(self) -> int:
        return self.job.seed


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """A named scenarios × methods × seeds grid at one scale.

    ``expand()`` orders jobs scenario-major, then method, then seed —
    the same nesting the per-figure experiment families use — and
    ``shard(k, n)`` takes every ``n``-th job starting at ``k``
    (round-robin), which balances scenarios of different cost across
    shards better than contiguous blocks would.
    """

    name: str
    scenarios: tuple[str, ...]
    methods: tuple[str, ...] = PAPER_METHODS
    seeds: tuple[int, ...] = (11,)
    scale: str = "scaled"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a sweep needs a name")
        if not self.scenarios or not self.methods or not self.seeds:
            raise ValueError(
                "a sweep needs at least one scenario, method, and seed"
            )
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "methods", tuple(self.methods))
        object.__setattr__(
            self, "seeds", tuple(int(seed) for seed in self.seeds)
        )
        for pool, label in (
            (self.scenarios, "scenario"),
            (self.methods, "method"),
            (self.seeds, "seed"),
        ):
            if len(set(pool)) != len(pool):
                raise ValueError(f"duplicate {label} in sweep spec: {pool}")
        unknown = set(self.scenarios) - set(available_scenarios())
        if unknown:
            raise ValueError(
                f"unknown scenarios {sorted(unknown)}; "
                f"available: {sorted(available_scenarios())}"
            )
        unknown = set(self.methods) - set(available_methods())
        if unknown:
            raise ValueError(
                f"unknown methods {sorted(unknown)}; "
                f"available: {sorted(available_methods())}"
            )
        if self.scale not in SCALES:
            raise ValueError(
                f"unknown scale {self.scale!r}; available: {sorted(SCALES)}"
            )

    # -- identity -----------------------------------------------------

    def payload(self) -> dict:
        """The canonical JSON-ready description of this spec."""
        return {
            "name": self.name,
            "scenarios": list(self.scenarios),
            "methods": list(self.methods),
            "seeds": list(self.seeds),
            "scale": self.scale,
        }

    def spec_hash(self) -> str:
        """SHA-256 fingerprint of the grid (short-form, 16 hex chars)."""
        canonical = json.dumps(
            self.payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # -- expansion ----------------------------------------------------

    def configs(
        self, base: SimulationConfig | None = None
    ) -> dict[str, SimulationConfig]:
        """scenario name → fully built config, in spec order."""
        catalog = scenario_catalog(
            base if base is not None else self.scale, names=self.scenarios
        )
        return {name: catalog[name].config for name in self.scenarios}

    def expand(self, base: SimulationConfig | None = None) -> list[SweepJob]:
        """The full ordered job list (scenario-major, method, seed)."""
        configs = self.configs(base)
        return [
            SweepJob(
                scenario=scenario,
                job=SimulationJob(configs[scenario], method, seed),
            )
            for scenario in self.scenarios
            for method in self.methods
            for seed in self.seeds
        ]

    def shard(
        self,
        shard_index: int,
        shard_count: int,
        base: SimulationConfig | None = None,
    ) -> list[SweepJob]:
        """Deterministic round-robin shard ``shard_index`` of ``shard_count``.

        The shards partition :meth:`expand`: disjoint, order-preserving
        within each shard, and their union (over all indices) is the
        full list.
        """
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        if not 0 <= shard_index < shard_count:
            raise ValueError(
                f"shard_index must be in [0, {shard_count}), got {shard_index}"
            )
        return self.expand(base)[shard_index::shard_count]
