"""Shard execution and manifests.

``SweepRunner`` routes one shard of a sweep through the configured
:class:`~repro.experiments.executor.ExperimentExecutor` — so shards get
the process pool and the persistent result store for free — and records
a JSON *manifest* next to the store describing exactly what the shard
ran: the spec payload and hash, the engine version, and one entry per
job with its store key and whether it was simulated or served from the
store.

Manifests make sweeps resumable and auditable with zero coordination:

* Re-running an interrupted shard re-simulates only the jobs whose
  results never reached the store; the fresh manifest shows everything
  else as a ``store_hit``.
* ``status`` (CLI) reads the manifests under a cache directory and
  reports per-shard completion without touching a single result file.
* The aggregation layer (:mod:`repro.sweeps.aggregate`) merges
  manifests from different machines' store directories by spec hash.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

from repro.experiments.executor import (
    ExperimentExecutor,
    get_default_executor,
)
from repro.experiments.store import _atomic_write_bytes, cache_key
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import ENGINE_VERSION
from repro.sweeps.spec import SweepSpec
from repro.telemetry.tracing import mint_trace_id

__all__ = [
    "MANIFEST_DIR_NAME",
    "MANIFEST_FORMAT",
    "ShardReport",
    "SweepRunner",
    "environment_hash",
    "load_manifests",
    "manifest_cells",
    "manifest_directory",
    "manifest_status",
    "write_manifest",
]


def environment_hash(
    spec: SweepSpec, base: SimulationConfig | None = None
) -> str:
    """Fingerprint of the *effective* scenario environments (8 hex chars).

    ``run_shard`` accepts a ``base`` config override, which changes
    every job while leaving the spec payload untouched; folding this
    hash into the manifest identity keeps a spec-only run and an
    overridden run from overwriting each other's manifests.  Derived
    from the fully built scenario configs, so it is identical across
    machines whenever the effective environments are.
    """
    configs = {
        name: dataclasses.asdict(config)
        for name, config in spec.configs(base).items()
    }
    canonical = json.dumps(configs, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:8]

#: Subdirectory of a result-store root where manifests live.  The store
#: only globs top-level files, so manifests never collide with entries.
MANIFEST_DIR_NAME = "manifests"

#: Bump when the manifest JSON schema changes incompatibly.  Shared
#: with the scheduler's worker manifests, which use the same format.
MANIFEST_FORMAT = 1


def manifest_directory(store_root: Path | str) -> Path:
    """Where a store directory keeps its sweep manifests."""
    return Path(store_root) / MANIFEST_DIR_NAME


@dataclasses.dataclass(frozen=True)
class ShardReport:
    """What one shard execution did."""

    spec: SweepSpec
    shard_index: int
    shard_count: int
    jobs: int
    simulated: int
    store_hits: int
    manifest_path: Path | None

    @property
    def all_store_hits(self) -> bool:
        """True when the shard re-simulated nothing (fully warm)."""
        return self.simulated == 0 and self.jobs > 0


class SweepRunner:
    """Executes sweep shards through an experiment executor.

    Parameters
    ----------
    executor:
        The executor to route jobs through; ``None`` (default) uses the
        process-wide default executor, which the CLI and benchmarks
        configure with ``--workers`` / ``--cache-dir``.
    """

    def __init__(self, executor: ExperimentExecutor | None = None) -> None:
        self._executor = executor

    @property
    def executor(self) -> ExperimentExecutor:
        return (
            self._executor
            if self._executor is not None
            else get_default_executor()
        )

    def run_shard(
        self,
        spec: SweepSpec,
        shard_index: int = 0,
        shard_count: int = 1,
        base: SimulationConfig | None = None,
    ) -> ShardReport:
        """Run one shard; returns counts and the manifest path.

        Jobs already present in the executor's store are recorded as
        ``store_hit`` and cost one disk read; the rest are simulated
        (fanning out over the executor's pool) and persisted.  With a
        store-less executor the shard still runs, but no manifest can be
        written — resumability needs the store.
        """
        executor = self.executor
        store = executor.store
        sweep_jobs = spec.shard(shard_index, shard_count, base)

        # run_detailed reports the executor's own ground truth per job
        # (an unreadable store entry is a miss and gets re-simulated),
        # so the manifest states always match what actually happened.
        # Each job carries a trace id minted from the sweep identity —
        # trace is compare=False, so store keys and results are
        # untouched; it only correlates this shard's telemetry.
        detailed = executor.run_detailed(
            [
                dataclasses.replace(
                    sj.job,
                    trace=mint_trace_id(
                        "sweep",
                        spec.spec_hash(),
                        sj.scenario,
                        sj.job.method,
                        sj.job.seed,
                    ),
                )
                for sj in sweep_jobs
            ]
        )
        warm = [hit for _, hit in detailed]

        entries = [
            {
                "scenario": sj.scenario,
                "method": sj.job.method,
                "seed": sj.job.seed,
                "key": cache_key(sj.job.config, sj.job.method, sj.job.seed),
                "state": "store_hit" if hit else "simulated",
            }
            for sj, hit in zip(sweep_jobs, warm)
        ]

        manifest_path: Path | None = None
        if store is not None:
            manifest_path = self._write_manifest(
                store.root,
                spec,
                environment_hash(spec, base),
                shard_index,
                shard_count,
                entries,
            )

        store_hits = sum(warm)
        return ShardReport(
            spec=spec,
            shard_index=shard_index,
            shard_count=shard_count,
            jobs=len(sweep_jobs),
            simulated=len(sweep_jobs) - store_hits,
            store_hits=store_hits,
            manifest_path=manifest_path,
        )

    @staticmethod
    def _write_manifest(
        store_root: Path,
        spec: SweepSpec,
        env_hash: str,
        shard_index: int,
        shard_count: int,
        entries: list[dict],
    ) -> Path:
        return write_manifest(
            store_root,
            spec,
            env_hash,
            {"shard_index": shard_index, "shard_count": shard_count},
            f"shard{shard_index:04d}of{shard_count:04d}",
            entries,
        )


def write_manifest(
    store_root: Path,
    spec: SweepSpec,
    env_hash: str,
    identity: dict,
    name_suffix: str,
    entries: list[dict],
) -> Path:
    """The one manifest writer: schema, filename scheme, atomic write.

    Shard manifests pass shard coordinates in ``identity``; the
    scheduler's worker manifests pass ``worker``/``queue`` fields.
    Sharing the writer is what keeps the two manifest kinds one format
    — a schema change lands in both or neither.
    """
    directory = manifest_directory(store_root)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {
        "format": MANIFEST_FORMAT,
        "sweep": spec.name,
        "spec": spec.payload(),
        "spec_hash": spec.spec_hash(),
        "environment_hash": env_hash,
        "engine_version": ENGINE_VERSION,
        "completed": True,
        "jobs": entries,
        **identity,
    }
    path = directory / f"{spec.spec_hash()}.{env_hash}.{name_suffix}.json"
    _atomic_write_bytes(
        path, json.dumps(manifest, sort_keys=True, indent=1).encode("utf-8")
    )
    return path


def load_manifests(store_root: Path | str) -> list[dict]:
    """Every readable manifest under a store directory, sorted by name.

    Unreadable or schema-mismatched files are skipped (a crashed writer
    never blocks status reporting).
    """
    directory = manifest_directory(store_root)
    manifests = []
    if not directory.is_dir():
        return manifests
    for path in sorted(directory.glob("*.json")):
        try:
            manifest = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(manifest, dict) or "jobs" not in manifest:
            continue
        if manifest.get("format") != MANIFEST_FORMAT:
            continue
        manifest["path"] = str(path)
        manifests.append(manifest)
    return manifests


def manifest_cells(
    manifests: list[dict],
) -> tuple[list[dict], int]:
    """The sweep cells a set of manifests declares: the read contract.

    Manifests — shard and worker manifests alike — are the *only*
    record of which (scenario, method, seed) triples a store was
    populated with, so everything that reads a store without a spec in
    hand (the analysis layer's series extraction, figure rendering,
    cross-store comparison) goes through this function, exactly as all
    status reporting goes through :func:`manifest_status`.

    Returns ``(rows, stale)``: one row per (scenario, method) cell with
    its deduplicated sorted ``seeds`` and the distinct spec payloads
    (by ``spec_hash``) that declared it, plus how many manifests were
    skipped as *stale* — written under a different engine version,
    whose results are unreachable under current store keys and must
    not be reported as "missing" cells.

    Trace-replay manifests (``repro trace replay``) carry a top-level
    ``trace_workload`` payload — the ``kind="trace"`` workload their
    results were keyed under.  Each row's ``trace_workloads`` lists the
    distinct such payloads that declared the cell (``None`` for a plain
    sweep manifest); the store reader uses it to rebuild the replay
    config, and refuses cells with conflicting declarations.
    """
    stale = 0
    cells: dict[tuple[str, str], dict] = {}
    for manifest in manifests:
        if manifest.get("engine_version") != ENGINE_VERSION:
            stale += 1
            continue
        spec_payload = manifest.get("spec")
        spec_hash = manifest.get("spec_hash")
        trace_payload = manifest.get("trace_workload")
        trace_key = (
            None
            if trace_payload is None
            else json.dumps(trace_payload, sort_keys=True)
        )
        for job in manifest["jobs"]:
            cell = cells.setdefault(
                (job["scenario"], job["method"]),
                {
                    "scenario": job["scenario"],
                    "method": job["method"],
                    "seeds": set(),
                    "specs": {},
                    "traces": {},
                },
            )
            cell["seeds"].add(int(job["seed"]))
            if spec_payload is not None:
                cell["specs"].setdefault(spec_hash, spec_payload)
            cell["traces"].setdefault(trace_key, trace_payload)
    rows = []
    for _, cell in sorted(cells.items()):
        rows.append(
            {
                "scenario": cell["scenario"],
                "method": cell["method"],
                "seeds": tuple(sorted(cell["seeds"])),
                "specs": [
                    cell["specs"][key] for key in sorted(cell["specs"])
                ],
                "trace_workloads": [
                    cell["traces"][key]
                    for key in sorted(
                        cell["traces"], key=lambda k: (k is not None, k)
                    )
                ],
            }
        )
    return rows, stale


def manifest_status(manifests: list[dict]) -> list[dict]:
    """Per-manifest counts as plain JSON-ready rows.

    The single parser behind both ``repro sweep status`` (table and
    ``--json``) and the scheduler's monitor, so the CLI, CI assertions,
    and the queue tooling all read one schema.  ``shard_index`` /
    ``shard_count`` are ``None`` for worker manifests (which carry
    ``worker`` instead), and vice versa; trace record/replay manifests
    carry ``trace`` (the trace-file path) in place of both.
    """
    rows = []
    for manifest in manifests:
        states = [job["state"] for job in manifest["jobs"]]
        engine = manifest.get("engine_version")
        rows.append(
            {
                "sweep": manifest.get("sweep"),
                "spec_hash": manifest.get("spec_hash"),
                "shard_index": manifest.get("shard_index"),
                "shard_count": manifest.get("shard_count"),
                "worker": manifest.get("worker"),
                "trace": manifest.get("trace"),
                "jobs": len(states),
                "simulated": states.count("simulated"),
                "store_hits": states.count("store_hit"),
                "engine_version": engine,
                "stale": engine != ENGINE_VERSION,
                "path": manifest.get("path"),
            }
        )
    return rows
