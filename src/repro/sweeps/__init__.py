"""Sweep orchestration: the paper's whole evaluation as one object.

The paper's evaluation is a grid — environments × methods × seeds,
``nbRepeat = 10`` — that the per-figure experiment families only ever
walked one slice at a time.  This package makes the grid first-class:

* :mod:`repro.sweeps.scenarios` — a catalog of named environments: the
  paper's Table 2 captive/autonomous settings plus new workload shapes
  (flash crowds, diurnal load, provider-churn stress).
* :mod:`repro.sweeps.spec` — :class:`SweepSpec`, a declarative grid
  that expands to a deterministic ordered job list and partitions into
  ``shard k of n`` with no coordination.
* :mod:`repro.sweeps.runner` — :class:`SweepRunner` executes shards
  through the experiment executor/store and writes per-shard JSON
  manifests, so interrupted sweeps resume with zero re-simulation.
* :mod:`repro.sweeps.aggregate` — merges store directories from many
  machines and renders per-(scenario, method) summary tables with
  means *and* quantiles across seeds.

CLI surface: ``python -m repro sweep run|status|merge|report``.
"""

from repro.sweeps.aggregate import (
    MergeReport,
    ScenarioMethodSummary,
    ci_halfwidth,
    format_sweep_table,
    merge_stores,
    summarize_cell,
    sweep_summary,
)
from repro.sweeps.runner import (
    ShardReport,
    SweepRunner,
    load_manifests,
    manifest_directory,
    manifest_status,
)
from repro.sweeps.scenarios import (
    SCALES,
    Scenario,
    available_scenarios,
    scenario_catalog,
)
from repro.sweeps.spec import SweepJob, SweepSpec

__all__ = [
    "MergeReport",
    "SCALES",
    "Scenario",
    "ScenarioMethodSummary",
    "ShardReport",
    "SweepJob",
    "SweepRunner",
    "SweepSpec",
    "available_scenarios",
    "ci_halfwidth",
    "format_sweep_table",
    "load_manifests",
    "manifest_directory",
    "manifest_status",
    "merge_stores",
    "scenario_catalog",
    "summarize_cell",
    "sweep_summary",
]
