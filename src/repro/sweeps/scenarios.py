"""The scenario catalog: named evaluation environments.

A *scenario* is a fully specified environment — workload shape plus
autonomy rules — applied to a base configuration (tiny / scaled /
paper scale, see :data:`SCALES`).  The catalog covers the paper's
Table 2 settings (captive ramp, captive fixed, the Section 6.3.2
autonomous variants) and new workload shapes that stress the methods
beyond the paper's grid:

* ``flash_crowd`` — a burst workload: steady 40 % load with a jump to
  100 % during the middle fifth of the run (think a breaking-news spike
  against a mediator that was provisioned for the steady state).
* ``diurnal`` — piecewise-linear double-peak load (morning and evening
  rush) between 30 % and 100 %.
* ``provider_churn_stress`` — an autonomous environment driven into
  overload (120 %) for the middle of the run, so every departure reason
  can trip; measures how much of the provider population each method
  burns through.
* ``captive_outage`` / ``captive_flap`` — fault injection (see
  :mod:`repro.simulation.faults`): temporary capacity loss at a steady
  80 % workload, either one sustained outage of a quarter of the
  providers or a subset flapping in and out of service.
* ``autonomous_strategic`` — a quarter of the providers exaggerate the
  preferences they report (see :mod:`repro.model.strategic`) in an
  autonomous 80 % environment, probing how much each method's feedback
  loop rewards misreporting.

Scenario names are the unit the sweep layer shards and aggregates by:
``SweepSpec.scenarios`` is a tuple of catalog names, and summary tables
report per (scenario, method).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.simulation.config import (
    DepartureRules,
    FaultSpec,
    SimulationConfig,
    StrategicSpec,
    WorkloadSpec,
    paper_config,
    scaled_config,
    tiny_config,
)
from repro.simulation.faults import FlapSpec, OutageSpec

__all__ = [
    "SCALES",
    "Scenario",
    "available_scenarios",
    "base_config",
    "scenario_catalog",
]

#: Base-configuration factories the catalog can be instantiated at.
SCALES: dict[str, Callable[[], SimulationConfig]] = {
    "tiny": tiny_config,
    "scaled": scaled_config,
    "paper": paper_config,
}


@dataclass(frozen=True)
class Scenario:
    """One named environment: a description plus its full config."""

    name: str
    description: str
    config: SimulationConfig


def _captive_ramp(base: SimulationConfig) -> SimulationConfig:
    return base.with_departures(DepartureRules.captive()).with_workload(
        WorkloadSpec(kind="ramp", start_fraction=0.30, end_fraction=1.00)
    )


def _captive_fixed_80(base: SimulationConfig) -> SimulationConfig:
    return base.with_departures(DepartureRules.captive()).with_workload(
        WorkloadSpec.fixed(0.80)
    )


def _autonomous_full(base: SimulationConfig) -> SimulationConfig:
    return base.with_departures(
        DepartureRules.autonomous(include_overutilization=True)
    ).with_workload(WorkloadSpec.fixed(0.80))


def _autonomous_no_overutilization(base: SimulationConfig) -> SimulationConfig:
    return base.with_departures(
        DepartureRules.autonomous(include_overutilization=False)
    ).with_workload(WorkloadSpec.fixed(0.80))


def _flash_crowd(base: SimulationConfig) -> SimulationConfig:
    return base.with_departures(DepartureRules.captive()).with_workload(
        WorkloadSpec.burst(base=0.40, peak=1.00, start=0.40, end=0.60)
    )


def _diurnal(base: SimulationConfig) -> SimulationConfig:
    return base.with_departures(DepartureRules.captive()).with_workload(
        WorkloadSpec.piecewise(
            (
                (0.00, 0.30),
                (0.25, 0.90),
                (0.50, 0.40),
                (0.75, 1.00),
                (1.00, 0.30),
            )
        )
    )


def _provider_churn_stress(base: SimulationConfig) -> SimulationConfig:
    return base.with_departures(
        DepartureRules.autonomous(include_overutilization=True)
    ).with_workload(
        WorkloadSpec.burst(base=0.50, peak=1.20, start=0.30, end=0.70)
    )


def _captive_outage(base: SimulationConfig) -> SimulationConfig:
    return (
        base.with_departures(DepartureRules.captive())
        .with_workload(WorkloadSpec.fixed(0.80))
        .with_faults(
            FaultSpec(
                outages=(OutageSpec(fraction=0.25, start=0.40, end=0.60),)
            )
        )
    )


def _captive_flap(base: SimulationConfig) -> SimulationConfig:
    return (
        base.with_departures(DepartureRules.captive())
        .with_workload(WorkloadSpec.fixed(0.80))
        .with_faults(
            FaultSpec(
                flaps=(
                    FlapSpec(
                        fraction=0.15,
                        period=0.10,
                        duty=0.5,
                        start=0.30,
                        end=0.90,
                    ),
                )
            )
        )
    )


def _autonomous_strategic(base: SimulationConfig) -> SimulationConfig:
    return (
        base.with_departures(
            DepartureRules.autonomous(include_overutilization=True)
        )
        .with_workload(WorkloadSpec.fixed(0.80))
        .with_strategic(
            StrategicSpec(fraction=0.25, mode="exaggerate", gain=0.6)
        )
    )


#: name → (description, builder applying the scenario to a base config).
_BUILDERS: dict[
    str, tuple[str, Callable[[SimulationConfig], SimulationConfig]]
] = {
    "captive_ramp": (
        "Table 2 / Figure 4: captive participants, 30→100 % uniform ramp",
        _captive_ramp,
    ),
    "captive_fixed_80": (
        "captive participants at the paper's reference 80 % workload",
        _captive_fixed_80,
    ),
    "autonomous_full": (
        "Section 6.3.2: all departure reasons enabled, 80 % workload",
        _autonomous_full,
    ),
    "autonomous_no_overutilization": (
        "Figure 5(a) setting: departures by dissatisfaction/starvation only",
        _autonomous_no_overutilization,
    ),
    "flash_crowd": (
        "burst workload: 40 % steady load spiking to 100 % mid-run",
        _flash_crowd,
    ),
    "diurnal": (
        "piecewise double-peak day: 30→90→40→100→30 % load",
        _diurnal,
    ),
    "provider_churn_stress": (
        "autonomous overload burst (120 % mid-run): provider churn stress",
        _provider_churn_stress,
    ),
    "captive_outage": (
        "25 % of providers down for the middle fifth of an 80 % run",
        _captive_outage,
    ),
    "captive_flap": (
        "15 % of providers flapping (10 % cycles) through 30-90 % of run",
        _captive_flap,
    ),
    "autonomous_strategic": (
        "autonomous 80 % run with 25 % of providers exaggerating preferences",
        _autonomous_strategic,
    ),
}


def available_scenarios() -> tuple[str, ...]:
    """All catalog scenario names, in deterministic order."""
    return tuple(_BUILDERS)


def base_config(scale: str) -> SimulationConfig:
    """The base environment for one of the :data:`SCALES`."""
    try:
        factory = SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; available: {sorted(SCALES)}"
        ) from None
    return factory()


def scenario_catalog(
    base: SimulationConfig | str = "scaled",
    names: tuple[str, ...] | None = None,
) -> dict[str, Scenario]:
    """Build (a subset of) the catalog on one base configuration.

    ``base`` is either a scale name from :data:`SCALES` or an explicit
    base config (tests pass short-horizon configs directly).  The
    returned dict preserves catalog order.
    """
    if isinstance(base, str):
        base = base_config(base)
    selected = names if names is not None else available_scenarios()
    catalog: dict[str, Scenario] = {}
    for name in selected:
        try:
            description, builder = _BUILDERS[name]
        except KeyError:
            raise ValueError(
                f"unknown scenario {name!r}; "
                f"available: {sorted(_BUILDERS)}"
            ) from None
        catalog[name] = Scenario(
            name=name, description=description, config=builder(base)
        )
    return catalog
