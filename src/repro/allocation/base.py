"""Allocation-method interface shared by SQLB and the baselines.

The simulation engine performs everything that is common to all methods
— gathering the candidate set, computing participants' intentions
(lines 2-5 of Algorithm 1), measuring utilisation, bookkeeping — and
delegates only the *selection* decision.  Each method receives an
:class:`AllocationRequest` snapshot and returns which candidates get the
query.  This mirrors the paper's setup: "for all the query allocation
methods we tested, the configuration is the same and the only thing
that changes is the way in which each method allocates the queries"
(Section 6.1).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # avoid a circular import with repro.simulation
    from repro.simulation.queries import Query

__all__ = ["AllocationMethod", "AllocationRequest"]


@dataclass(frozen=True)
class AllocationRequest:
    """Everything a method may look at when allocating one query.

    Attributes
    ----------
    time:
        Current simulation time (seconds).
    query:
        The incoming query (cost, ``q.n``, consumer).
    candidates:
        Provider indices in ``P_q`` (active and capable), ascending.
    consumer_intentions:
        Raw ``CI_q`` aligned with ``candidates``.
    provider_intentions:
        Raw ``PI_q`` aligned with ``candidates``.
    provider_preferences:
        The candidates' private preferences for this query.  Baselines
        that model provider-side behaviour (Mariposa bids are computed
        *by the providers*) may use them; a preference-blind method like
        Capacity based must not.
    utilizations:
        Current ``Ut(p)`` per candidate.
    capacities:
        Treatment units per second per candidate.
    backlog_seconds:
        Seconds of queued work ahead of a new arrival, per candidate.
    consumer_satisfaction:
        Mediator-visible (intention-based) ``δs(c)`` of the issuer.
    provider_satisfactions:
        Mediator-visible (intention-based) ``δs(p)`` per candidate.
    rng:
        Method-private randomness (tie-breaking and the like).
    """

    time: float
    query: Query
    candidates: np.ndarray
    consumer_intentions: np.ndarray
    provider_intentions: np.ndarray
    provider_preferences: np.ndarray
    utilizations: np.ndarray
    capacities: np.ndarray
    backlog_seconds: np.ndarray
    consumer_satisfaction: float
    provider_satisfactions: np.ndarray
    rng: np.random.Generator

    @property
    def n_candidates(self) -> int:
        return int(self.candidates.size)

    @property
    def n_to_select(self) -> int:
        """``min(q.n, N)`` — how many providers must be selected."""
        return min(self.query.n_desired, self.n_candidates)


class AllocationMethod(abc.ABC):
    """One query-allocation strategy.

    Subclasses are stateless with respect to the population (all state
    they need arrives in the request), but may keep internal state such
    as round-robin cursors; :meth:`reset` clears it between runs.
    """

    #: Short identifier used in reports and the registry.
    name: str = "abstract"

    @abc.abstractmethod
    def select(self, request: AllocationRequest) -> np.ndarray:
        """Positions (into ``request.candidates``) of the selected providers.

        Must return exactly ``request.n_to_select`` distinct positions,
        best first.
        """

    def reset(self) -> None:
        """Clear any per-run internal state (no-op by default)."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(name={self.name!r})"
