"""Naive baselines (not in the paper; used for ablations and tests).

* :class:`RandomMethod` — uniform random selection.  Interesting as a
  floor: it is intention-blind *and* load-blind.
* :class:`RoundRobinMethod` — deterministic rotation over the candidate
  set; the classic homogeneous-cluster answer, which ignores capacity
  heterogeneity entirely.
"""

from __future__ import annotations

import numpy as np

from repro.allocation.base import AllocationMethod, AllocationRequest

__all__ = ["RandomMethod", "RoundRobinMethod"]


class RandomMethod(AllocationMethod):
    """Select ``q.n`` candidates uniformly at random."""

    name = "random"

    def select(self, request: AllocationRequest) -> np.ndarray:
        return request.rng.choice(
            request.n_candidates, size=request.n_to_select, replace=False
        )


class RoundRobinMethod(AllocationMethod):
    """Rotate through provider indices, skipping absent candidates.

    The cursor is over the *global* provider index space, so the
    rotation stays fair when the candidate set varies query to query.
    """

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def select(self, request: AllocationRequest) -> np.ndarray:
        candidates = request.candidates
        n_needed = request.n_to_select
        # Positions of candidates at or after the cursor, then wrap.
        after = np.flatnonzero(candidates >= self._cursor)
        before = np.flatnonzero(candidates < self._cursor)
        order = np.concatenate((after, before))
        chosen = order[:n_needed]
        last_provider = int(candidates[chosen[-1]])
        self._cursor = last_provider + 1
        return chosen
