"""Method registry: build allocation methods by name from a config.

Experiments refer to methods by the short names the paper uses
(``sqlb``, ``capacity``, ``mariposa``); the registry centralises their
construction so every experiment builds them identically.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.allocation.base import AllocationMethod
from repro.allocation.capacity_based import CapacityBasedMethod
from repro.allocation.economic import EconomicSQLBMethod
from repro.allocation.knbest import KnBestMethod
from repro.allocation.mariposa import MariposaMethod
from repro.allocation.naive import RandomMethod, RoundRobinMethod
from repro.allocation.sqlb_method import SQLBMethod

if TYPE_CHECKING:  # avoid a circular import with repro.simulation
    from repro.simulation.config import SimulationConfig

__all__ = ["PAPER_METHODS", "available_methods", "build_method"]

#: The three methods the paper's evaluation compares.
PAPER_METHODS = ("sqlb", "capacity", "mariposa")

_BUILDERS: dict[str, Callable[[SimulationConfig], AllocationMethod]] = {
    "sqlb": lambda config: SQLBMethod(
        epsilon=config.epsilon, fixed_omega=config.fixed_omega
    ),
    "capacity": lambda config: CapacityBasedMethod(),
    "mariposa": lambda config: MariposaMethod(
        base_spread=config.mariposa.base_spread,
        load_weight=config.mariposa.load_weight,
        max_delay=config.mariposa.max_delay,
    ),
    "random": lambda config: RandomMethod(),
    "round_robin": lambda config: RoundRobinMethod(),
    # Extensions beyond the paper's evaluation (see their modules):
    "knbest": lambda config: KnBestMethod(base="capacity"),
    "knbest_score": lambda config: KnBestMethod(base="score"),
    "sqlb_econ": lambda config: EconomicSQLBMethod(),
}


def available_methods() -> tuple[str, ...]:
    """All registered method names."""
    return tuple(_BUILDERS)


def build_method(name: str, config: SimulationConfig) -> AllocationMethod:
    """Construct the named method configured for ``config``."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown allocation method {name!r}; "
            f"available: {sorted(_BUILDERS)}"
        ) from None
    return builder(config)
