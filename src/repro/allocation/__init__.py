"""Query-allocation methods: SQLB plus the paper's baselines.

The engine-facing interface is :class:`~repro.allocation.base.AllocationMethod`;
methods are usually built through :func:`~repro.allocation.registry.build_method`.
"""

from repro.allocation.base import AllocationMethod, AllocationRequest
from repro.allocation.capacity_based import CapacityBasedMethod
from repro.allocation.economic import EconomicSQLBMethod
from repro.allocation.knbest import KnBestMethod
from repro.allocation.mariposa import MariposaMethod
from repro.allocation.naive import RandomMethod, RoundRobinMethod
from repro.allocation.registry import (
    PAPER_METHODS,
    available_methods,
    build_method,
)
from repro.allocation.sqlb_method import SQLBMethod

__all__ = [
    "PAPER_METHODS",
    "AllocationMethod",
    "AllocationRequest",
    "CapacityBasedMethod",
    "EconomicSQLBMethod",
    "KnBestMethod",
    "MariposaMethod",
    "RandomMethod",
    "RoundRobinMethod",
    "SQLBMethod",
    "available_methods",
    "build_method",
]
