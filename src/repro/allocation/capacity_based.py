"""The *Capacity based* baseline (Section 6.2.1 of the paper).

The classic query-load-balancing approach in heterogeneous distributed
information systems ([13, 18, 21] in the paper): allocate each query to
the providers with the highest *available capacity* — the least
utilised, weighted by raw power — taking no account whatsoever of the
consumer's or providers' intentions.

Available capacity is ``C_p · (1 - Ut(p))``: the units per second the
provider still has to offer, which goes negative under overload so
overloaded providers rank strictly below merely busy ones.
"""

from __future__ import annotations

import numpy as np

from repro.allocation.base import AllocationMethod, AllocationRequest
from repro.core.ranking import top_selection

__all__ = ["CapacityBasedMethod"]


class CapacityBasedMethod(AllocationMethod):
    """Allocate to the highest-available-capacity providers."""

    name = "capacity"

    def __init__(self, tie_break: str = "random") -> None:
        self._tie_break = tie_break

    def select(self, request: AllocationRequest) -> np.ndarray:
        available = request.capacities * (1.0 - request.utilizations)
        return top_selection(
            available,
            request.n_to_select,
            rng=request.rng,
            tie_break=self._tie_break,
        )
