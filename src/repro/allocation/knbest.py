"""KnBest-style allocation (Quiané-Ruiz et al., DASFAA 2007 [17]).

The paper's related work cites KnBest as a *complementary* set of
balanced request-allocation strategies "one can use to improve
results".  The KnBest idea: instead of deterministically taking the
``n`` best providers under the base criterion (which starves everyone
else), take the ``K = k_factor · n`` best and draw the ``n`` winners at
random among them.  The randomisation spreads load across the whole
good-enough set at a bounded cost in per-query optimality.

This implementation layers KnBest over either base criterion used in
this repository:

* ``base="capacity"`` — K best by available capacity (the classic
  KnBest over a QLB criterion);
* ``base="score"`` — K best by the SQLB score (Definition 9), giving a
  randomised SQLB variant.
"""

from __future__ import annotations

import numpy as np

from repro.allocation.base import AllocationMethod, AllocationRequest
from repro.core.ranking import rank_providers
from repro.core.scoring import omega_vector, provider_score_vector

__all__ = ["KnBestMethod"]

_BASES = ("capacity", "score")


class KnBestMethod(AllocationMethod):
    """Pick ``q.n`` providers uniformly among the ``k_factor·q.n`` best.

    Parameters
    ----------
    base:
        The ranking criterion the candidate short-list is built from:
        ``"capacity"`` (available capacity) or ``"score"`` (SQLB's
        Definition 9).
    k_factor:
        Short-list size multiplier ``K / n``; must be at least 1.
        ``k_factor=1`` degenerates to the deterministic base method.
    epsilon:
        ``ε`` for Definition 9 (only used with ``base="score"``).
    """

    name = "knbest"

    def __init__(
        self,
        base: str = "capacity",
        k_factor: int = 3,
        epsilon: float = 1.0,
    ) -> None:
        if base not in _BASES:
            raise ValueError(f"base must be one of {_BASES}, got {base!r}")
        if k_factor < 1:
            raise ValueError(f"k_factor must be at least 1, got {k_factor}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self._base = base
        self._k_factor = int(k_factor)
        self._epsilon = float(epsilon)

    def _base_scores(self, request: AllocationRequest) -> np.ndarray:
        if self._base == "capacity":
            return request.capacities * (1.0 - request.utilizations)
        omegas = omega_vector(
            request.consumer_satisfaction, request.provider_satisfactions
        )
        return provider_score_vector(
            request.provider_intentions,
            request.consumer_intentions,
            omegas,
            epsilon=self._epsilon,
        )

    def select(self, request: AllocationRequest) -> np.ndarray:
        n_needed = request.n_to_select
        ranking = rank_providers(self._base_scores(request), rng=request.rng)
        shortlist = ranking[: min(self._k_factor * n_needed, ranking.size)]
        winners = request.rng.choice(
            shortlist, size=n_needed, replace=False
        )
        return np.asarray(winners, dtype=np.int64)
