"""SQLB as an allocation method (Section 5 of the paper).

A thin adapter: the scoring/ranking/selection logic lives in
:mod:`repro.core.sqlb`; this class feeds it from an
:class:`~repro.allocation.base.AllocationRequest`.
"""

from __future__ import annotations

import numpy as np

from repro.allocation.base import AllocationMethod, AllocationRequest
from repro.core.ranking import top_selection
from repro.core.scoring import omega_vector, provider_score_vector

__all__ = ["SQLBMethod"]


class SQLBMethod(AllocationMethod):
    """Satisfaction-based Query Load Balancing.

    Parameters
    ----------
    epsilon:
        ``ε`` for Definition 9.
    fixed_omega:
        Optional constant ``ω`` overriding Equation 6 (the paper's
        cooperative-provider variant; ``None`` uses Equation 6).
    tie_break:
        Ranking tie-break policy (see :mod:`repro.core.ranking`).
    """

    name = "sqlb"

    def __init__(
        self,
        epsilon: float = 1.0,
        fixed_omega: float | None = None,
        tie_break: str = "random",
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if fixed_omega is not None and not 0.0 <= fixed_omega <= 1.0:
            raise ValueError(f"fixed omega must be in [0, 1], got {fixed_omega}")
        self._epsilon = float(epsilon)
        self._fixed_omega = fixed_omega
        self._tie_break = tie_break

    def select(self, request: AllocationRequest) -> np.ndarray:
        # Algorithm 1's score/rank/select steps, unrolled from
        # repro.core.sqlb.allocate_query: same arithmetic, minus the
        # SQLBAllocation wrapper the public helper builds per query.
        if (
            request.provider_intentions.shape
            != request.consumer_intentions.shape
        ):
            raise ValueError(
                f"PI_q shape {request.provider_intentions.shape} does not "
                f"match CI_q shape {request.consumer_intentions.shape}"
            )
        if self._fixed_omega is not None:
            omegas = np.full(
                request.provider_intentions.shape, float(self._fixed_omega)
            )
        else:
            omegas = omega_vector(
                request.consumer_satisfaction,
                request.provider_satisfactions,
            )
        scores = provider_score_vector(
            request.provider_intentions,
            request.consumer_intentions,
            omegas,
            epsilon=self._epsilon,
        )
        return top_selection(
            scores,
            request.n_to_select,
            rng=request.rng,
            tie_break=self._tie_break,
        )
