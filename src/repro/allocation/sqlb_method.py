"""SQLB as an allocation method (Section 5 of the paper).

A thin adapter: the scoring/ranking/selection logic lives in
:mod:`repro.core.sqlb`; this class feeds it from an
:class:`~repro.allocation.base.AllocationRequest`.
"""

from __future__ import annotations

import numpy as np

from repro.allocation.base import AllocationMethod, AllocationRequest
from repro.core.sqlb import allocate_query

__all__ = ["SQLBMethod"]


class SQLBMethod(AllocationMethod):
    """Satisfaction-based Query Load Balancing.

    Parameters
    ----------
    epsilon:
        ``ε`` for Definition 9.
    fixed_omega:
        Optional constant ``ω`` overriding Equation 6 (the paper's
        cooperative-provider variant; ``None`` uses Equation 6).
    tie_break:
        Ranking tie-break policy (see :mod:`repro.core.ranking`).
    """

    name = "sqlb"

    def __init__(
        self,
        epsilon: float = 1.0,
        fixed_omega: float | None = None,
        tie_break: str = "random",
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self._epsilon = float(epsilon)
        self._fixed_omega = fixed_omega
        self._tie_break = tie_break

    def select(self, request: AllocationRequest) -> np.ndarray:
        allocation = allocate_query(
            provider_intentions=request.provider_intentions,
            consumer_intentions=request.consumer_intentions,
            consumer_satisfaction=request.consumer_satisfaction,
            provider_satisfactions=request.provider_satisfactions,
            n_desired=request.query.n_desired,
            epsilon=self._epsilon,
            fixed_omega=self._fixed_omega,
            rng=request.rng,
            tie_break=self._tie_break,
        )
        return allocation.selected
