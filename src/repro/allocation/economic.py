"""Economic SQLB (the paper's Section 7 future-work variant).

The paper notes that the flexible economic mediation of Lamarre et al.
(CoopIS 2004, [10]) is complementary to SQLB and that "one can combine
them to obtain an economic version of SQLB, by computing bids w.r.t.
intentions (which is planned as future work)".  This module implements
that combination:

* each provider quotes a **bid** derived from its intention: a provider
  that wants the query discounts its price, a reluctant or overloaded
  one (negative intention) surcharges it;
* the broker scores offers by trading the consumer's intention (the
  quality side of [10]) against the bid's cheapness, using the same
  satisfaction-driven ``ω`` of Equation 6 — so the economic variant
  inherits SQLB's equity mechanism.

Unlike the Mariposa-like baseline, the bid here is a function of the
full Definition 8 intention (preference × load × satisfaction), not of
the raw preference with a bolt-on load multiplier.
"""

from __future__ import annotations

import numpy as np

from repro.allocation.base import AllocationMethod, AllocationRequest
from repro.core.intentions import clip_intention
from repro.core.ranking import rank_providers, select_top
from repro.core.scoring import omega_vector

__all__ = ["EconomicSQLBMethod"]


class EconomicSQLBMethod(AllocationMethod):
    """Bid-based SQLB: intentions priced, quality/price balanced by ω.

    Parameters
    ----------
    bid_spread:
        Price ratio between a maximally reluctant provider (intention
        -1) and a maximally eager one (intention +1); must exceed 1.
    """

    name = "sqlb_econ"

    def __init__(self, bid_spread: float = 3.0) -> None:
        if bid_spread <= 1:
            raise ValueError(f"bid_spread must exceed 1, got {bid_spread}")
        self._spread = float(bid_spread)

    def bids(self, request: AllocationRequest) -> np.ndarray:
        """Each candidate's quoted price for this query.

        Linear in the (clipped) intention: +1 → 1.0, -1 → ``bid_spread``.
        Computing the bid from the intention is exactly the paper's
        future-work recipe — the provider's preference, load, and
        satisfaction all reach the price through Definition 8.
        """
        intentions = clip_intention(request.provider_intentions)
        return 1.0 + (self._spread - 1.0) * (1.0 - intentions) / 2.0

    def select(self, request: AllocationRequest) -> np.ndarray:
        bids = self.bids(request)
        # Quality is the consumer's (clipped) intention rescaled to
        # [0, 1]; cheapness normalises the best bid to 1.
        quality = (clip_intention(request.consumer_intentions) + 1.0) / 2.0
        cheapness = bids.min() / bids
        omegas = omega_vector(
            request.consumer_satisfaction, request.provider_satisfactions
        )
        # ω weighs the provider-controlled side (the price) exactly as
        # it weighs the provider intention in Definition 9.
        scores = np.power(cheapness, omegas) * np.power(
            quality, 1.0 - omegas
        )
        ranking = rank_providers(scores, rng=request.rng)
        return select_top(ranking, request.query.n_desired)
