"""The *Mariposa-like* economic baseline (Section 6.2.2 of the paper).

Mariposa [22] allocates queries through a bidding process: a broker
requests bids from providers, providers bid for the queries they want,
and the broker selects the set of bids whose aggregate price and delay
fall under a *bid curve* supplied by the consumer.  To ensure a crude
form of load balancing, providers modify their bids with their current
load (``bid × load``).

The paper implements "a Mariposa-like method" without giving formulas,
so this is a documented substitution (DESIGN.md §2.3):

* **Base bid** — decreasing in the provider's preference for the query:
  an interested provider bids aggressively to win the business.  With
  spread ``s``, the bid at preference -1 is ``s`` times the bid at
  preference +1.
* **Load modifier** — the quoted bid is ``base × (1 + w · Ut(p))``,
  the multiplicative load adjustment the paper describes.
* **Bid curve** — the consumer accepts the cheapest bids whose estimated
  delay (queue backlog plus service time, which providers can quote
  exactly) stays under ``max_delay``; if too few bids qualify, the
  remainder are filled cheapest-first regardless of delay (queries must
  be treated if possible, Section 2).

This reproduces the qualitative behaviour the paper reports: the most
adapted providers underbid everyone, win a disproportionate share, and
drift into overutilisation that the load modifier only partially damps.
"""

from __future__ import annotations

import numpy as np

from repro.allocation.base import AllocationMethod, AllocationRequest
from repro.core.ranking import rank_providers

__all__ = ["MariposaMethod"]


class MariposaMethod(AllocationMethod):
    """Bidding broker with load-modified bids and a delay bid curve.

    Parameters
    ----------
    base_spread:
        Ratio between the most and least expensive base bids (> 1).
    load_weight:
        Weight ``w`` of utilisation in the load modifier.
    max_delay:
        The consumer bid curve: maximum acceptable estimated delay in
        seconds.
    """

    name = "mariposa"

    def __init__(
        self,
        base_spread: float = 2.5,
        load_weight: float = 1.0,
        max_delay: float = 15.0,
        tie_break: str = "random",
    ) -> None:
        if base_spread <= 1:
            raise ValueError(f"base_spread must exceed 1, got {base_spread}")
        if load_weight < 0:
            raise ValueError(f"load_weight must be non-negative, got {load_weight}")
        if max_delay <= 0:
            raise ValueError(f"max_delay must be positive, got {max_delay}")
        self._spread = float(base_spread)
        self._load_weight = float(load_weight)
        self._max_delay = float(max_delay)
        self._tie_break = tie_break

    def bids(self, request: AllocationRequest) -> np.ndarray:
        """The load-modified bid each candidate quotes for this query."""
        # Map preference 1 → 1.0 and preference -1 → spread, linearly.
        base = 1.0 + (self._spread - 1.0) * (
            (1.0 - request.provider_preferences) / 2.0
        )
        load_factor = 1.0 + self._load_weight * request.utilizations
        return base * load_factor

    def select(self, request: AllocationRequest) -> np.ndarray:
        bids = self.bids(request)
        delays = request.backlog_seconds + (
            request.query.cost_units / request.capacities
        )
        # Cheapest-first ranking: rank on negated bids.
        ranking = rank_providers(
            -bids, rng=request.rng, tie_break=self._tie_break
        )
        qualified = delays[ranking] <= self._max_delay
        n_needed = request.n_to_select
        winners = ranking[qualified][:n_needed]
        if winners.size < n_needed:
            # Not enough bids under the curve: fill with the cheapest
            # disqualified ones — the query must still be treated.
            backfill = ranking[~qualified][: n_needed - winners.size]
            winners = np.concatenate((winners, backfill))
        return winners
