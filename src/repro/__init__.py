"""SQLB — Satisfaction-based Query Load Balancing.

A from-scratch Python reproduction of *"SQLB: A Query Allocation
Framework for Autonomous Consumers and Providers"* (Quiané-Ruiz,
Lamarre, Valduriez; VLDB 2007): the satisfaction model and metrics
(Sections 3-4), the SQLB framework (Section 5), the Capacity-based and
Mariposa-like baselines (Section 6.2), and the mediator simulation the
evaluation runs on.

Quick start::

    from repro import scaled_config, run_simulation

    result = run_simulation(scaled_config(), "sqlb", seed=42)
    print(result.series("provider_intention_satisfaction_mean")[-1])
"""

from repro.allocation import (
    PAPER_METHODS,
    AllocationMethod,
    AllocationRequest,
    CapacityBasedMethod,
    MariposaMethod,
    SQLBMethod,
    build_method,
)
from repro.experiments.executor import (
    ExperimentExecutor,
    SimulationJob,
    configure_default_executor,
    get_default_executor,
    set_default_executor,
)
from repro.experiments.harness import (
    DEFAULT_SEEDS,
    PAPER_SEEDS,
    MethodAverages,
    run_method_family,
    run_repeated,
)
from repro.analysis import (
    FIGURE_CATALOG,
    available_metrics,
    cell_band,
    cells_from_store,
    compare_stores,
    get_metric,
    render_catalog,
)
from repro.experiments.store import ResultStore, cache_key
from repro.sweeps import (
    Scenario,
    SweepJob,
    SweepRunner,
    SweepSpec,
    available_scenarios,
    format_sweep_table,
    merge_stores,
    scenario_catalog,
    sweep_summary,
)
from repro.core import (
    SQLBAllocation,
    allocate_query,
    consumer_intention,
    omega,
    provider_intention,
    provider_score,
)
from repro.model import (
    ConsumerProfile,
    ProviderProfile,
    fairness,
    mean,
    min_max_ratio,
)
from repro.simulation import (
    DepartureRules,
    MediatorSimulation,
    SimulationConfig,
    SimulationResult,
    WorkloadSpec,
    paper_config,
    run_simulation,
    scaled_config,
    tiny_config,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_SEEDS",
    "FIGURE_CATALOG",
    "PAPER_METHODS",
    "PAPER_SEEDS",
    "AllocationMethod",
    "AllocationRequest",
    "CapacityBasedMethod",
    "ConsumerProfile",
    "DepartureRules",
    "ExperimentExecutor",
    "MariposaMethod",
    "MediatorSimulation",
    "MethodAverages",
    "ProviderProfile",
    "ResultStore",
    "SQLBAllocation",
    "SQLBMethod",
    "Scenario",
    "SimulationConfig",
    "SimulationJob",
    "SimulationResult",
    "SweepJob",
    "SweepRunner",
    "SweepSpec",
    "WorkloadSpec",
    "allocate_query",
    "available_metrics",
    "available_scenarios",
    "build_method",
    "cache_key",
    "cell_band",
    "cells_from_store",
    "compare_stores",
    "configure_default_executor",
    "consumer_intention",
    "fairness",
    "format_sweep_table",
    "get_default_executor",
    "get_metric",
    "mean",
    "merge_stores",
    "min_max_ratio",
    "omega",
    "paper_config",
    "provider_intention",
    "provider_score",
    "render_catalog",
    "run_method_family",
    "run_repeated",
    "run_simulation",
    "scaled_config",
    "scenario_catalog",
    "set_default_executor",
    "sweep_summary",
    "tiny_config",
    "__version__",
]
