"""Store-native time-series extraction and across-seed aggregation.

The write side of the system (sweep shards, queue workers) leaves two
artifacts behind: content-addressed result entries and JSON manifests
declaring which (scenario, method, seed) cells those entries cover.
This module is the matching read side: it turns a store directory into
aligned per-seed sampled series and aggregates them across seeds into
the bands every paper figure is made of — mean, p50, p90, and a 95 %
confidence half-width per sample.

Three layers:

* :func:`cells_from_store` — resolve a store's manifests (via the
  :func:`repro.sweeps.runner.manifest_cells` contract) into
  :class:`CellRuns`: one entry per (scenario, method) with its seed
  set and the fully built scenario config.
* :func:`extract_cell_series` — read one named series for every seed
  of a cell through the store's cheap
  :meth:`~repro.experiments.store.ResultStore.load_series` path,
  verifying that every seed sits on the same sample grid (the engine's
  grid is deterministic per config, so a mismatch means the store is
  corrupt or mixes configs under one label — an error, not a warning).
* :func:`cell_band` / :func:`aggregate_band` — the across-seed
  aggregation, NaN-aware per sample, using the same quantiles and CI
  definition as the sweep summary tables
  (:data:`~repro.sweeps.aggregate.SUMMARY_QUANTILES`,
  :data:`~repro.sweeps.aggregate.CI_Z`), so a band's p90 at the final
  sample and a summary row's p90 agree by construction.

Everything here is read-only: a missing seed is *reported*, never
simulated.
"""

from __future__ import annotations

import dataclasses
import warnings
from pathlib import Path

import numpy as np

from repro.experiments.store import ResultStore
from repro.simulation.config import SimulationConfig, WorkloadSpec
from repro.sweeps.aggregate import CI_Z, SUMMARY_QUANTILES
from repro.sweeps.runner import load_manifests, manifest_cells
from repro.sweeps.spec import SweepSpec

__all__ = [
    "CellRuns",
    "SeriesBand",
    "aggregate_band",
    "band_payload",
    "cell_band",
    "cell_scalars",
    "cells_from_store",
    "extract_cell_series",
    "format_band_table",
    "jsonable",
]


def jsonable(value):
    """JSON-ready form: arrays → lists, NaN/inf → None, recursively.

    The one NaN policy for every exported payload (figure data, band
    dumps, compare verdicts): strict-JSON ``null``, never the
    non-standard ``NaN`` token, so exports parse everywhere.
    """
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (float, np.floating)):
        value = float(value)
        return value if np.isfinite(value) else None
    if isinstance(value, (int, np.integer)):
        return int(value)
    return value


@dataclasses.dataclass(frozen=True)
class CellRuns:
    """One readable sweep cell: where its runs live in a store."""

    scenario: str
    method: str
    config: SimulationConfig
    seeds: tuple[int, ...]


@dataclasses.dataclass(frozen=True)
class SeriesBand:
    """Across-seed aggregation of one named series for one cell.

    All arrays share the cell's sample grid.  ``ci_halfwidth`` is the
    95 % normal-approximation half-width of the per-sample mean across
    seeds — NaN wherever fewer than two seeds have a value (undefined,
    not zero, exactly like the scalar
    :func:`~repro.sweeps.aggregate.ci_halfwidth`).  ``missing_seeds``
    are seeds the manifests declared but the store could not serve
    (stale entries, foreign store); they are surfaced, never silently
    dropped.
    """

    scenario: str
    method: str
    name: str
    times: np.ndarray
    mean: np.ndarray
    quantiles: dict[float, np.ndarray]
    ci_halfwidth: np.ndarray
    seeds: tuple[int, ...]
    missing_seeds: tuple[int, ...]


def cells_from_store(
    store_root: Path | str,
) -> tuple[list[CellRuns], int]:
    """Resolve a store directory into readable cells via its manifests.

    Returns ``(cells, stale_manifests)``.  Scenario configs are rebuilt
    from the manifests' spec payloads; if two sweeps in one store
    disagree about what a scenario name means (different scales, say),
    the store is ambiguous and reading it would silently mix
    environments — that is an error the caller must resolve by
    splitting the store, not a judgement call this layer may make.

    A cell declared by a trace-replay manifest gets the manifest's
    recorded ``kind="trace"`` workload grafted onto the scenario
    config, because that is the config its results were keyed under.
    A cell declared both with and without a trace workload (or with
    two different ones) is ambiguous in exactly the same way as a
    two-scale store and raises.
    """
    rows, stale = manifest_cells(load_manifests(store_root))
    configs: dict[str, SimulationConfig] = {}
    cells: list[CellRuns] = []
    for row in rows:
        scenario = row["scenario"]
        for payload in row["specs"]:
            spec = SweepSpec(**payload)
            config = spec.configs()[scenario]
            known = configs.get(scenario)
            if known is None:
                configs[scenario] = config
            elif known != config:
                raise ValueError(
                    f"store {store_root} is ambiguous: scenario "
                    f"{scenario!r} is declared with two different "
                    "configs (sweeps at different scales?); analyze "
                    "the sweeps' stores separately"
                )
        if scenario not in configs:
            # A manifest with no spec payload and no sibling that has
            # one: the cell cannot be keyed into the store at all.
            raise ValueError(
                f"store {store_root} has a manifest declaring "
                f"{scenario!r} without a spec payload; cannot derive "
                "its config"
            )
        config = configs[scenario]
        traces = row.get("trace_workloads") or [None]
        if any(payload is not None for payload in traces):
            if len(traces) != 1:
                raise ValueError(
                    f"store {store_root} is ambiguous: cell "
                    f"({scenario!r}, {row['method']!r}) is declared "
                    "with conflicting trace-replay workloads (or a mix "
                    "of replayed and live runs); analyze the replays' "
                    "stores separately"
                )
            workload = dict(traces[0])
            points = workload.get("points")
            if points is not None:
                workload["points"] = tuple(
                    (float(t), float(v)) for t, v in points
                )
            config = dataclasses.replace(
                config, workload=WorkloadSpec(**workload)
            )
        cells.append(
            CellRuns(
                scenario=scenario,
                method=row["method"],
                config=config,
                seeds=row["seeds"],
            )
        )
    return cells, stale


def extract_cell_series(
    store: ResultStore, cell: CellRuns, name: str
) -> tuple[np.ndarray, dict[int, np.ndarray], tuple[int, ...]]:
    """Read one named series for every seed of a cell.

    Returns ``(times, per_seed, missing)``: the shared sample grid, a
    seed → values mapping (insertion order = sorted seed order), and
    the seeds the store could not serve.  Every served seed must sit on
    exactly the same grid; a mismatch is a corrupt or mixed store and
    raises.
    """
    times: np.ndarray | None = None
    per_seed: dict[int, np.ndarray] = {}
    missing: list[int] = []
    for seed in cell.seeds:
        stored = store.load_series(
            cell.config, cell.method, seed, names=(name,)
        )
        if stored is None:
            missing.append(seed)
            continue
        if times is None:
            times = stored.times
        elif not np.array_equal(times, stored.times):
            raise ValueError(
                f"seed {seed} of ({cell.scenario}, {cell.method}) is "
                f"sampled on a different grid for series {name!r}; "
                "the store mixes incompatible runs under one cell"
            )
        per_seed[seed] = stored.series[name]
    if times is None:
        times = np.empty(0, dtype=float)
    return times, per_seed, tuple(missing)


def aggregate_band(
    per_seed: dict[int, np.ndarray],
) -> tuple[np.ndarray, dict[float, np.ndarray], np.ndarray]:
    """Across-seed per-sample aggregation of aligned series.

    Returns ``(mean, quantiles, ci_halfwidth)`` arrays on the shared
    grid.  NaN samples are ignored per seed (a response-time interval
    with no queries contributes nothing); a sample that is NaN in every
    seed stays NaN.  The CI half-width replicates the scalar
    :func:`~repro.sweeps.aggregate.ci_halfwidth` definition per sample:
    ``CI_Z * std(ddof=1) / sqrt(n)`` over the usable (non-NaN) values,
    NaN wherever ``n < 2``.
    """
    if not per_seed:
        empty = np.empty(0, dtype=float)
        return (
            empty,
            {q: empty.copy() for q in SUMMARY_QUANTILES},
            empty.copy(),
        )
    stacked = np.vstack([per_seed[seed] for seed in sorted(per_seed)])
    usable = ~np.isnan(stacked)
    counts = usable.sum(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"), (
        warnings.catch_warnings()
    ):
        warnings.filterwarnings(
            "ignore", "Mean of empty slice", RuntimeWarning
        )
        warnings.filterwarnings(
            "ignore", "All-NaN slice encountered", RuntimeWarning
        )
        warnings.filterwarnings(
            "ignore", "Degrees of freedom <= 0", RuntimeWarning
        )
        mean = np.nanmean(stacked, axis=0)
        quantiles = {
            q: np.nanquantile(stacked, q, axis=0)
            for q in SUMMARY_QUANTILES
        }
        std = np.nanstd(stacked, axis=0, ddof=1)
        halfwidth = np.where(
            counts >= 2,
            CI_Z * std / np.sqrt(np.maximum(counts, 1)),
            float("nan"),
        )
    return mean, quantiles, halfwidth


def cell_band(store: ResultStore, cell: CellRuns, name: str) -> SeriesBand:
    """The full band of one named series for one cell."""
    times, per_seed, missing = extract_cell_series(store, cell, name)
    mean, quantiles, halfwidth = aggregate_band(per_seed)
    return SeriesBand(
        scenario=cell.scenario,
        method=cell.method,
        name=name,
        times=times,
        mean=mean,
        quantiles=quantiles,
        ci_halfwidth=halfwidth,
        seeds=tuple(sorted(per_seed)),
        missing_seeds=missing,
    )


def cell_scalars(
    store: ResultStore, cell: CellRuns, extract
) -> tuple[dict[int, float], tuple[int, ...]]:
    """Per-seed scalar metric values for one cell.

    ``extract`` is a :class:`~repro.analysis.metrics.ScalarMetric`'s
    extraction (or any result → float callable).  Scalars need the full
    result (departure records, counters), so this goes through
    :meth:`ResultStore.get` rather than the cheap series path.
    Returns ``(seed → value, missing seeds)``.
    """
    values: dict[int, float] = {}
    missing: list[int] = []
    for seed in cell.seeds:
        result = store.get(cell.config, cell.method, seed)
        if result is None:
            missing.append(seed)
            continue
        values[seed] = float(extract(result))
    return values, tuple(missing)


def cell_scalar_map(
    store: ResultStore, cell: CellRuns, extracts: dict[str, object]
) -> tuple[dict[str, dict[int, float]], tuple[int, ...]]:
    """Several scalar metrics over one cell, one result load per seed.

    Deserialising a full result is the expensive part; callers that
    want N metrics for the same cell (comparison, departure figures)
    must not pay it N times.  ``extracts`` maps an output key to an
    extraction callable; returns ``(key → seed → value, missing)``.
    """
    values: dict[str, dict[int, float]] = {key: {} for key in extracts}
    missing: list[int] = []
    for seed in cell.seeds:
        result = store.get(cell.config, cell.method, seed)
        if result is None:
            missing.append(seed)
            continue
        for key, extract in extracts.items():
            values[key][seed] = float(extract(result))
    return values, tuple(missing)


def band_payload(band: SeriesBand) -> dict:
    """One band as a JSON-ready dict (full resolution)."""
    return jsonable(
        {
            "scenario": band.scenario,
            "method": band.method,
            "series": band.name,
            "seeds": list(band.seeds),
            "missing_seeds": list(band.missing_seeds),
            "times": band.times,
            "mean": band.mean,
            **{
                f"p{int(round(q * 100)):02d}": band.quantiles[q]
                for q in SUMMARY_QUANTILES
            },
            "ci_halfwidth": band.ci_halfwidth,
        }
    )


def format_band_table(band: SeriesBand, max_rows: int = 24) -> str:
    """A fixed-width rendering of one band, subsampled to ``max_rows``.

    The full grid can run to thousands of samples; the table is a
    terminal surface, so it shows an even subsample (always including
    the first and last sample).  ``--json`` / the figure data export
    carry the full resolution.
    """
    header = (
        f"# {band.scenario} / {band.method} / {band.name}   "
        f"seeds: {len(band.seeds)}"
        + (
            f"   missing: {list(band.missing_seeds)}"
            if band.missing_seeds
            else ""
        )
    )
    if band.times.size == 0:
        return header + "\nno samples (no readable seeds in the store)"
    count = band.times.size
    if count <= max_rows:
        indices = np.arange(count)
    else:
        indices = np.unique(
            np.linspace(0, count - 1, max_rows).round().astype(int)
        )
    quantile_headers = " ".join(
        f"{f'p{int(round(q * 100)):02d}':>10}" for q in SUMMARY_QUANTILES
    )
    lines = [
        header,
        f"{'time':>10} {'mean':>10} {quantile_headers} {'ci95':>10}",
    ]

    def _cell(value: float) -> str:
        # An undefined sample (NaN in every seed) prints `--`, never a
        # raw `nan` — same convention as the sweep summary tables.
        return f"{'--':>10}" if np.isnan(value) else f"{value:>10.4f}"

    for index in indices:
        cells = " ".join(
            _cell(band.quantiles[q][index]) for q in SUMMARY_QUANTILES
        )
        lines.append(
            f"{band.times[index]:>10.2f} {_cell(band.mean[index])} "
            f"{cells} {_cell(band.ci_halfwidth[index])}"
        )
    return "\n".join(lines)
