"""Cross-store comparison: machine-readable regression verdicts.

Two result stores — an old engine version vs. a new one, two branches,
a queue-drained store vs. a static-shard store — are compared cell by
cell: for every (scenario, method) present in both, each registered
metric's across-seed mean is diffed over the *paired* seeds (seeds
readable on both sides), and the signed worsening is taken in the
metric's own direction (response time worsens upward, satisfaction
downward — the :mod:`~repro.analysis.metrics` registry knows which).

A cell regresses when its relative worsening exceeds the metric's
threshold; thresholds are per metric with one default, so a 30 %
response-time regression gate can coexist with a 5 % satisfaction
gate.  The verdict is JSON-ready and ordered, and the CLI exits
non-zero when any regression is present — droppable straight into CI.

Comparison is read-only on both stores: a cell whose results are
absent is *reported* (``incomparable`` / ``missing``), never
simulated.
"""

from __future__ import annotations

import dataclasses
import math
from pathlib import Path

import numpy as np

from repro.analysis.metrics import get_metric
from repro.analysis.series import (
    cell_scalar_map,
    cells_from_store,
    jsonable,
)
from repro.experiments.store import ResultStore

__all__ = [
    "DEFAULT_COMPARE_METRICS",
    "DEFAULT_THRESHOLD",
    "CellVerdict",
    "CompareReport",
    "compare_stores",
    "format_compare_table",
]

#: Metrics compared by default: the paper's headline number plus the
#: stability/satisfaction axes a regression is most likely to hide in.
DEFAULT_COMPARE_METRICS = (
    "response_time_post_warmup",
    "provider_departure_fraction",
    "consumer_departure_fraction",
    "provider_satisfaction",
)

#: Default relative-worsening threshold (matches the perf gate's 30 %).
DEFAULT_THRESHOLD = 0.30


@dataclasses.dataclass(frozen=True)
class CellVerdict:
    """One (scenario, method, metric) comparison.

    ``relative_worsening`` is positive when store B is worse, in the
    metric's own direction, relative to ``|mean_a|``; NaN when either
    side has no usable value (``status == "incomparable"``).
    """

    scenario: str
    method: str
    metric: str
    seeds: tuple[int, ...]
    mean_a: float
    mean_b: float
    worsening: float
    relative_worsening: float
    threshold: float
    status: str  # ok | regression | incomparable

    def payload(self) -> dict:
        return jsonable(
            {
                "scenario": self.scenario,
                "method": self.method,
                "metric": self.metric,
                "seeds": list(self.seeds),
                "mean_a": self.mean_a,
                "mean_b": self.mean_b,
                "worsening": self.worsening,
                "relative_worsening": self.relative_worsening,
                "threshold": self.threshold,
                "status": self.status,
            }
        )


@dataclasses.dataclass(frozen=True)
class CompareReport:
    """The full verdict of one store-vs-store comparison."""

    store_a: str
    store_b: str
    verdicts: tuple[CellVerdict, ...]
    only_in_a: tuple[tuple[str, str], ...]
    only_in_b: tuple[tuple[str, str], ...]
    stale_manifests_a: int
    stale_manifests_b: int

    @property
    def regressions(self) -> tuple[CellVerdict, ...]:
        return tuple(
            v for v in self.verdicts if v.status == "regression"
        )

    @property
    def ok(self) -> bool:
        return not self.regressions

    def payload(self) -> dict:
        return {
            "store_a": self.store_a,
            "store_b": self.store_b,
            "ok": self.ok,
            "regressions": [v.payload() for v in self.regressions],
            "cells": [v.payload() for v in self.verdicts],
            "only_in_a": [list(c) for c in self.only_in_a],
            "only_in_b": [list(c) for c in self.only_in_b],
            "stale_manifests": {
                "a": self.stale_manifests_a,
                "b": self.stale_manifests_b,
            },
        }


def _mean(values: dict[int, float], seeds: tuple[int, ...]) -> float:
    if not seeds:
        return float("nan")
    return float(np.mean([values[s] for s in seeds]))


def compare_stores(
    root_a: Path | str,
    root_b: Path | str,
    metrics: tuple[str, ...] = DEFAULT_COMPARE_METRICS,
    thresholds: dict[str, float] | None = None,
    default_threshold: float = DEFAULT_THRESHOLD,
) -> CompareReport:
    """Compare every shared cell of two stores, metric by metric.

    ``thresholds`` overrides the relative-worsening gate per metric
    name; everything else uses ``default_threshold``.  Seeds are
    *paired* per metric: a cell is compared over the seeds whose value
    is readable **and non-NaN on both sides**, so an adaptively
    extended store is compared on the common prefix, and a seed whose
    metric is undefined on one side (e.g. no post-warmup queries)
    drops out of *both* means instead of skewing one of them.
    """
    thresholds = thresholds or {}
    unknown = set(thresholds) - set(metrics)
    if unknown:
        raise ValueError(
            "thresholds given for metrics not being compared: "
            f"{sorted(unknown)}"
        )
    resolved = [get_metric(name) for name in metrics]
    cells_a, stale_a = cells_from_store(root_a)
    cells_b, stale_b = cells_from_store(root_b)
    store_a = ResultStore(root_a)
    store_b = ResultStore(root_b)
    map_a = {(c.scenario, c.method): c for c in cells_a}
    map_b = {(c.scenario, c.method): c for c in cells_b}
    shared = sorted(set(map_a) & set(map_b))
    verdicts: list[CellVerdict] = []
    extracts = {metric.name: metric.extract for metric in resolved}
    for key in shared:
        scenario, method = key
        cell_a, cell_b = map_a[key], map_b[key]
        # One result deserialisation per (seed, store), shared by every
        # metric — not one per metric.
        all_a, _ = cell_scalar_map(store_a, cell_a, extracts)
        all_b, _ = cell_scalar_map(store_b, cell_b, extracts)
        for metric in resolved:
            values_a = all_a[metric.name]
            values_b = all_b[metric.name]
            paired = tuple(
                sorted(
                    seed
                    for seed in set(values_a) & set(values_b)
                    if not math.isnan(values_a[seed])
                    and not math.isnan(values_b[seed])
                )
            )
            threshold = thresholds.get(metric.name, default_threshold)
            mean_a = _mean(values_a, paired)
            mean_b = _mean(values_b, paired)
            worsening = metric.worsening(mean_a, mean_b)
            if math.isnan(worsening):
                relative = float("nan")
                status = "incomparable"
            else:
                if mean_a != 0.0:
                    relative = worsening / abs(mean_a)
                elif worsening <= 0.0:
                    relative = 0.0
                else:
                    # Worsened away from an exactly-zero baseline: any
                    # finite threshold is exceeded (0 → 0.1 departures
                    # is not "within 30 % of zero").
                    relative = float("inf")
                status = (
                    "regression" if relative > threshold else "ok"
                )
            verdicts.append(
                CellVerdict(
                    scenario=scenario,
                    method=method,
                    metric=metric.name,
                    seeds=paired,
                    mean_a=mean_a,
                    mean_b=mean_b,
                    worsening=worsening,
                    relative_worsening=relative,
                    threshold=threshold,
                    status=status,
                )
            )
    return CompareReport(
        store_a=str(root_a),
        store_b=str(root_b),
        verdicts=tuple(verdicts),
        only_in_a=tuple(sorted(set(map_a) - set(map_b))),
        only_in_b=tuple(sorted(set(map_b) - set(map_a))),
        stale_manifests_a=stale_a,
        stale_manifests_b=stale_b,
    )


def format_compare_table(report: CompareReport) -> str:
    """Human rendering: one row per verdict, regressions flagged."""
    lines = [
        f"# compare: A={report.store_a}  B={report.store_b}",
        f"{'scenario':<30} {'method':<10} {'metric':<30} {'seeds':>5} "
        f"{'A':>10} {'B':>10} {'worse%':>8}  verdict",
    ]

    def _cell(value: float) -> str:
        return f"{'--':>10}" if math.isnan(value) else f"{value:>10.4f}"

    for verdict in report.verdicts:
        relative = verdict.relative_worsening
        if math.isnan(relative):
            worse = f"{'--':>8}"
        elif math.isinf(relative):
            worse = f"{'inf':>8}"
        else:
            worse = f"{100.0 * relative:>7.1f}%"
        flag = (
            "REGRESSION"
            if verdict.status == "regression"
            else verdict.status
        )
        lines.append(
            f"{verdict.scenario:<30} {verdict.method:<10} "
            f"{verdict.metric:<30} {len(verdict.seeds):>5} "
            f"{_cell(verdict.mean_a)} {_cell(verdict.mean_b)} "
            f"{worse}  {flag}"
        )
    for label, cells in (
        ("only in A", report.only_in_a),
        ("only in B", report.only_in_b),
    ):
        for scenario, method in cells:
            lines.append(f"{label}: {scenario} / {method}")
    lines.append(
        "verdict: "
        + ("OK" if report.ok else f"{len(report.regressions)} regression(s)")
    )
    return "\n".join(lines)
