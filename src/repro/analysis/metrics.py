"""The scalar-metric registry: one name → one number per run.

Every read-side consumer of a result store — sweep summaries, the
figure catalog's bar/delta figures, cross-store comparison verdicts,
and the adaptive seeding controller — needs the same small family of
"one scalar per (config, method, seed) run" extractions: post-warmup
response time, departure fractions, final satisfaction.  Before this
module each consumer hand-rolled its own, which is how the adaptive
controller ended up hard-wired to response time.  The registry does the
extraction once, with the *direction* (is a larger value better or
worse?) attached, so comparison and convergence logic never have to
guess which way a delta points.

Registered metrics are pure functions of a
:class:`~repro.simulation.engine.SimulationResult`; NaN is a legal
return (e.g. response time of a run with no post-warmup queries) and
every consumer must treat it as "no statement".
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Callable

import numpy as np

from repro.simulation.engine import SimulationResult

__all__ = [
    "SCALAR_METRICS",
    "ScalarMetric",
    "available_metrics",
    "get_metric",
]


@dataclasses.dataclass(frozen=True)
class ScalarMetric:
    """One registered per-run scalar.

    ``higher_is_better`` orients regression checks and convergence
    reporting: response time worsens upward, satisfaction worsens
    downward.  ``unit`` is display-only.
    """

    name: str
    label: str
    unit: str
    higher_is_better: bool
    extract: Callable[[SimulationResult], float]

    def worsening(self, before: float, after: float) -> float:
        """Signed worsening of ``after`` relative to ``before``.

        Positive means ``after`` is worse, negative better, in the
        metric's own units; NaN when either side is NaN.
        """
        if math.isnan(before) or math.isnan(after):
            return float("nan")
        delta = after - before
        return -delta if self.higher_is_better else delta


def _final_series_sample(name: str) -> Callable[[SimulationResult], float]:
    def extract(result: SimulationResult) -> float:
        return float(result.series(name)[-1])

    return extract


def _initial_providers(result: SimulationResult) -> int:
    return result.initial_providers or result.config.n_providers


def _provider_availability(result: SimulationResult) -> float:
    """Mean sampled active-provider count over the initial population.

    1.0 for a run that never loses capacity; outages, flapping, and
    permanent churn all pull it down for as long as they hold providers
    out of service.
    """
    series = result.series("active_providers")
    if series.size == 0:
        return float("nan")
    return float(series.mean()) / _initial_providers(result)


def _capacity_recovery_time(result: SimulationResult) -> float:
    """Seconds from first observed capacity loss back to full strength.

    0.0 when the sampled active-provider count never drops below the
    initial population; NaN when it drops and never returns (permanent
    churn, or an outage still open at the horizon).  Resolution is the
    sample interval — faults are observed through the sampled series,
    not the event log.
    """
    series = result.series("active_providers")
    if series.size == 0:
        return float("nan")
    initial = _initial_providers(result)
    below = np.flatnonzero(series < initial)
    if below.size == 0:
        return 0.0
    drop = int(below[0])
    recovered = np.flatnonzero(series[drop:] >= initial)
    if recovered.size == 0:
        return float("nan")
    times = result.times()
    return float(times[drop + int(recovered[0])] - times[drop])


def _combined_departure_fraction(result: SimulationResult) -> float:
    """Distinct departed participants over the initial population."""
    initial = (result.initial_providers or result.config.n_providers) + (
        result.initial_consumers or result.config.n_consumers
    )
    departed = {(d.kind, d.index) for d in result.departures}
    if not departed:
        return 0.0
    return len(departed) / initial


def _registry() -> dict[str, ScalarMetric]:
    metrics = [
        ScalarMetric(
            name="response_time_post_warmup",
            label="response time (post-warmup mean)",
            unit="s",
            higher_is_better=False,
            extract=lambda r: float(r.response_time_post_warmup),
        ),
        ScalarMetric(
            name="response_time_mean",
            label="response time (whole-run mean)",
            unit="s",
            higher_is_better=False,
            extract=lambda r: float(r.response_time_mean),
        ),
        ScalarMetric(
            name="provider_departure_fraction",
            label="provider departures / initial providers",
            unit="fraction",
            higher_is_better=False,
            extract=lambda r: float(r.provider_departure_fraction()),
        ),
        ScalarMetric(
            name="consumer_departure_fraction",
            label="consumer departures / initial consumers",
            unit="fraction",
            higher_is_better=False,
            extract=lambda r: float(r.consumer_departure_fraction()),
        ),
        ScalarMetric(
            name="departure_fraction",
            label="all departures / initial population",
            unit="fraction",
            higher_is_better=False,
            extract=_combined_departure_fraction,
        ),
        ScalarMetric(
            name="provider_satisfaction",
            label="final provider satisfaction (intentions)",
            unit="score",
            higher_is_better=True,
            extract=_final_series_sample(
                "provider_intention_satisfaction_mean"
            ),
        ),
        ScalarMetric(
            name="consumer_satisfaction",
            label="final consumer satisfaction",
            unit="score",
            higher_is_better=True,
            extract=_final_series_sample("consumer_satisfaction_mean"),
        ),
        ScalarMetric(
            name="utilization_mean",
            label="final mean provider utilization",
            unit="fraction",
            higher_is_better=True,
            extract=_final_series_sample("utilization_mean"),
        ),
        ScalarMetric(
            name="provider_availability",
            label="mean active providers / initial providers",
            unit="fraction",
            higher_is_better=True,
            extract=_provider_availability,
        ),
        ScalarMetric(
            name="capacity_recovery_time",
            label="first capacity loss to full recovery",
            unit="s",
            higher_is_better=False,
            extract=_capacity_recovery_time,
        ),
    ]
    return {metric.name: metric for metric in metrics}


#: Every registered metric, keyed by name.  Treat as read-only.
SCALAR_METRICS: dict[str, ScalarMetric] = _registry()


def available_metrics() -> tuple[str, ...]:
    """Registered metric names, in registration order."""
    return tuple(SCALAR_METRICS)


def get_metric(name: str) -> ScalarMetric:
    """Look a metric up by name; unknown names fail loudly."""
    try:
        return SCALAR_METRICS[name]
    except KeyError:
        raise ValueError(
            f"unknown metric {name!r}; available: "
            f"{', '.join(available_metrics())}"
        ) from None
