"""Read-side analysis: stores → series bands, figures, verdicts.

The write side of the system (executor, sweep shards, queue workers)
fills content-addressed result stores and leaves manifests describing
what was run.  This package is the matching read side — it never
simulates anything:

* :mod:`repro.analysis.metrics` — the scalar-metric registry: one
  name → one number per run, with the worsening direction attached.
  Shared by summaries, figures, comparison, and the adaptive seeding
  controller (``--ci-metric``).
* :mod:`repro.analysis.series` — per-(scenario, method, seed) series
  extraction through the manifest contract, aligned on the sample
  grid and aggregated across seeds into mean/p50/p90 bands with 95 %
  CI half-widths.
* :mod:`repro.analysis.figures` — the declarative paper-figure
  catalog, rendered to byte-stable JSON data exports always, and to
  SVG/PNG when the optional matplotlib backend is installed.
* :mod:`repro.analysis.compare` — cell-by-cell comparison of two
  stores with per-metric thresholds and a machine-readable regression
  verdict (non-zero CLI exit on regression).

CLI surface: ``python -m repro analyze series|figures|compare``, plus
``repro queue report --figures`` for partially drained queues.
"""

from repro.analysis.compare import (
    DEFAULT_COMPARE_METRICS,
    DEFAULT_THRESHOLD,
    CellVerdict,
    CompareReport,
    compare_stores,
    format_compare_table,
)
from repro.analysis.figures import (
    FIGURE_CATALOG,
    FigureSpec,
    RenderReport,
    available_figures,
    figure_payload,
    matplotlib_available,
    payload_bytes,
    render_catalog,
)
from repro.analysis.metrics import (
    SCALAR_METRICS,
    ScalarMetric,
    available_metrics,
    get_metric,
)
from repro.analysis.series import (
    CellRuns,
    SeriesBand,
    aggregate_band,
    band_payload,
    cell_band,
    cell_scalars,
    cells_from_store,
    extract_cell_series,
    format_band_table,
    jsonable,
)

__all__ = [
    "DEFAULT_COMPARE_METRICS",
    "DEFAULT_THRESHOLD",
    "FIGURE_CATALOG",
    "SCALAR_METRICS",
    "CellRuns",
    "CellVerdict",
    "CompareReport",
    "FigureSpec",
    "RenderReport",
    "ScalarMetric",
    "SeriesBand",
    "aggregate_band",
    "available_figures",
    "available_metrics",
    "band_payload",
    "cell_band",
    "cell_scalars",
    "cells_from_store",
    "compare_stores",
    "extract_cell_series",
    "figure_payload",
    "format_band_table",
    "format_compare_table",
    "get_metric",
    "jsonable",
    "matplotlib_available",
    "payload_bytes",
    "render_catalog",
]
