"""The paper-figure catalog: declarative figures over a result store.

Each :class:`FigureSpec` names one paper-style figure — satisfaction /
utilization / response-time evolution bands, departure-fraction bars,
method-vs-baseline deltas — and the catalog renders any store that
carries sweep manifests (shard- or queue-produced; the cells come
through the :func:`~repro.sweeps.runner.manifest_cells` contract, or
from an explicit cell list for partially drained queues).

Two output paths, deliberately asymmetric in their dependencies:

* **JSON data export** — always available, no third-party plotting
  dependency.  The payload carries the full-resolution bands (mean,
  p50, p90, 95 % CI half-width per sample) with NaN encoded as
  ``null``, serialised with sorted keys so a warm store exports
  *byte-identical* files on every run — diffable in CI and across
  machines.
* **SVG/PNG rendering** — an optional matplotlib backend
  (:func:`matplotlib_available`), rendered deterministically: fixed
  figure geometry, a fixed per-method colour assignment (colour
  follows the method *name*, never its position in a filtered list),
  an svg hashsalt, and no embedded timestamps.

Rendering never simulates: cells whose results are absent from the
store are reported in the payload's ``missing`` section and skipped.
"""

from __future__ import annotations

import dataclasses
import importlib.util
import json
import math
import warnings
from pathlib import Path

import numpy as np

from repro.allocation.registry import PAPER_METHODS, available_methods
from repro.analysis.metrics import get_metric
from repro.analysis.series import (
    CellRuns,
    cell_band,
    cell_scalar_map,
    cell_scalars,
    cells_from_store,
    jsonable,
)
from repro.experiments.store import ResultStore, _atomic_write_bytes
from repro.simulation.engine import ENGINE_VERSION
from repro.sweeps.aggregate import ci_halfwidth

__all__ = [
    "FIGURE_CATALOG",
    "FigureSpec",
    "RenderReport",
    "available_figures",
    "figure_payload",
    "matplotlib_available",
    "payload_bytes",
    "render_catalog",
]

#: Fixed categorical colour slots (colour-blind-validated order); a
#: method keeps its colour no matter which subset of methods a figure
#: shows.  The paper's three methods take the first three slots.
_COLOR_SLOTS = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)

_TEXT_SECONDARY = "#52514e"
_GRID_COLOR = "#e3e2de"


def method_order(methods: list[str]) -> list[str]:
    """Canonical method ordering: the paper's methods first (in their
    registry order), then everything else alphabetically."""
    paper = [m for m in PAPER_METHODS if m in methods]
    rest = sorted(m for m in methods if m not in PAPER_METHODS)
    return paper + rest


def method_color(method: str) -> str:
    """The fixed colour of one method, everywhere.

    The slot comes from the method's position in the *global* canonical
    order (the whole registry, paper methods first) — never from its
    position within whatever subset one figure or one store happens to
    show, so 'capacity' is the same orange in a two-method sweep, a
    filtered figure, and a delta plot whose baseline is hidden.
    Unregistered names (hand-built cells) fall back to the last slot.
    """
    global_order = method_order(list(available_methods()))
    if method in global_order:
        index = global_order.index(method)
    else:
        index = len(_COLOR_SLOTS) - 1
    return _COLOR_SLOTS[index % len(_COLOR_SLOTS)]


@dataclasses.dataclass(frozen=True)
class FigureSpec:
    """One declared figure.

    ``kind`` is ``series`` (per-scenario evolution bands of one sampled
    series), ``departures`` (provider/consumer departure-fraction bars
    per cell), or ``delta`` (per-scenario metric deltas of every method
    against the baseline method).
    """

    name: str
    title: str
    kind: str
    ylabel: str
    series: str | None = None
    metric: str | None = None


FIGURE_CATALOG: tuple[FigureSpec, ...] = (
    FigureSpec(
        name="provider_satisfaction",
        title="Provider satisfaction (intentions)",
        kind="series",
        ylabel="satisfaction",
        series="provider_intention_satisfaction_mean",
    ),
    FigureSpec(
        name="consumer_satisfaction",
        title="Consumer satisfaction",
        kind="series",
        ylabel="satisfaction",
        series="consumer_satisfaction_mean",
    ),
    FigureSpec(
        name="satisfaction_fairness",
        title="Provider satisfaction fairness",
        kind="series",
        ylabel="fairness",
        series="provider_intention_satisfaction_fairness",
    ),
    FigureSpec(
        name="utilization",
        title="Mean provider utilization",
        kind="series",
        ylabel="utilization",
        series="utilization_mean",
    ),
    FigureSpec(
        name="response_time",
        title="Response time evolution",
        kind="series",
        ylabel="response time (s)",
        series="response_time_mean",
    ),
    FigureSpec(
        name="departures",
        title="Departure fractions",
        kind="departures",
        ylabel="departed (%)",
    ),
    FigureSpec(
        name="response_time_delta",
        title="Response time vs. baseline method",
        kind="delta",
        ylabel="relative delta",
        metric="response_time_post_warmup",
    ),
)


def available_figures() -> tuple[str, ...]:
    return tuple(spec.name for spec in FIGURE_CATALOG)


def matplotlib_available() -> bool:
    """Whether the optional rendering backend can be imported."""
    return importlib.util.find_spec("matplotlib") is not None


# -- payload construction ------------------------------------------------


def _group_cells(
    cells: list[CellRuns],
) -> dict[str, dict[str, CellRuns]]:
    grouped: dict[str, dict[str, CellRuns]] = {}
    for cell in cells:
        grouped.setdefault(cell.scenario, {})[cell.method] = cell
    return grouped


def _series_payload(
    store: ResultStore, spec: FigureSpec, cells: list[CellRuns]
) -> dict:
    scenarios: dict[str, dict] = {}
    missing: list[dict] = []
    for scenario, by_method in sorted(_group_cells(cells).items()):
        ordered = method_order(list(by_method))
        methods: dict[str, dict] = {}
        times: np.ndarray | None = None
        for method in ordered:
            band = cell_band(store, by_method[method], spec.series)
            if band.missing_seeds:
                missing.append(
                    {
                        "scenario": scenario,
                        "method": method,
                        "seeds": list(band.missing_seeds),
                    }
                )
            if not band.seeds:
                continue
            if times is None:
                times = band.times
            methods[method] = {
                "seeds": list(band.seeds),
                "mean": band.mean,
                "p50": band.quantiles[0.5],
                "p90": band.quantiles[0.9],
                "ci_halfwidth": band.ci_halfwidth,
            }
        if methods:
            scenarios[scenario] = {
                "times": times,
                "method_order": [m for m in ordered if m in methods],
                "methods": methods,
            }
    return {"scenarios": scenarios, "missing": missing}


def _departures_payload(
    store: ResultStore, cells: list[CellRuns]
) -> dict:
    provider = get_metric("provider_departure_fraction")
    consumer = get_metric("consumer_departure_fraction")
    scenarios: dict[str, dict] = {}
    missing: list[dict] = []
    for scenario, by_method in sorted(_group_cells(cells).items()):
        ordered = method_order(list(by_method))
        methods: dict[str, dict] = {}
        for method in ordered:
            cell = by_method[method]
            entry: dict[str, dict] = {}
            # Both fractions come from one result load per seed.
            by_kind, absent = cell_scalar_map(
                store,
                cell,
                {
                    "provider": provider.extract,
                    "consumer": consumer.extract,
                },
            )
            if absent:
                missing.append(
                    {
                        "scenario": scenario,
                        "method": method,
                        "seeds": list(absent),
                    }
                )
            for kind in ("provider", "consumer"):
                values = by_kind[kind]
                if not values:
                    continue
                ordered_values = [values[s] for s in sorted(values)]
                entry[kind] = {
                    "per_seed": {
                        str(s): values[s] for s in sorted(values)
                    },
                    "mean": float(np.mean(ordered_values)),
                    "ci_halfwidth": ci_halfwidth(ordered_values),
                }
            if entry:
                methods[method] = entry
        if methods:
            scenarios[scenario] = {
                "method_order": [m for m in ordered if m in methods],
                "methods": methods,
            }
    return {"scenarios": scenarios, "missing": missing}


def _delta_payload(
    store: ResultStore, spec: FigureSpec, cells: list[CellRuns]
) -> dict:
    metric = get_metric(spec.metric)
    scenarios: dict[str, dict] = {}
    missing: list[dict] = []
    for scenario, by_method in sorted(_group_cells(cells).items()):
        ordered = method_order(list(by_method))
        means: dict[str, float] = {}
        for method in ordered:
            values, absent = cell_scalars(
                store, by_method[method], metric.extract
            )
            if absent:
                missing.append(
                    {
                        "scenario": scenario,
                        "method": method,
                        "seeds": list(absent),
                    }
                )
            if values:
                # errstate does not silence nanmean's all-NaN
                # RuntimeWarning — that needs the warnings filter, the
                # same pattern aggregate_band uses.
                with np.errstate(invalid="ignore"), (
                    warnings.catch_warnings()
                ):
                    warnings.filterwarnings(
                        "ignore", "Mean of empty slice", RuntimeWarning
                    )
                    means[method] = float(
                        np.nanmean([values[s] for s in sorted(values)])
                    )
        present = [m for m in ordered if m in means]
        if len(present) < 2:
            continue  # a delta needs a baseline and a comparator
        baseline = present[0]
        base = means[baseline]
        methods: dict[str, dict] = {}
        for method in present[1:]:
            delta = means[method] - base
            methods[method] = {
                "mean": means[method],
                "baseline_mean": base,
                "delta": delta,
                "relative": (
                    delta / abs(base)
                    if base != 0.0 and not math.isnan(base)
                    else float("nan")
                ),
            }
        scenarios[scenario] = {
            "baseline": baseline,
            "method_order": present[1:],
            "methods": methods,
        }
    return {"scenarios": scenarios, "missing": missing}


def figure_payload(
    store: ResultStore, spec: FigureSpec, cells: list[CellRuns]
) -> dict:
    """The JSON-ready data payload of one figure over given cells."""
    if spec.kind == "series":
        body = _series_payload(store, spec, cells)
    elif spec.kind == "departures":
        body = _departures_payload(store, cells)
    elif spec.kind == "delta":
        body = _delta_payload(store, spec, cells)
    else:  # pragma: no cover - catalog is the only FigureSpec source
        raise ValueError(f"unknown figure kind {spec.kind!r}")
    payload = {
        "figure": spec.name,
        "title": spec.title,
        "kind": spec.kind,
        "ylabel": spec.ylabel,
        "series": spec.series,
        "metric": spec.metric,
        "engine_version": ENGINE_VERSION,
        **body,
    }
    return jsonable(payload)


def payload_bytes(payload: dict) -> bytes:
    """The canonical serialisation: sorted keys, fixed indentation.

    Byte-identical across runs of a warm store — floats round-trip
    through ``repr`` and every container is ordered — so CI can diff
    exports and a re-render is a no-op diff.
    """
    return (
        json.dumps(payload, sort_keys=True, indent=1, allow_nan=False)
        + "\n"
    ).encode("utf-8")


# -- rendering -----------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class RenderReport:
    """What one catalog render produced."""

    out_dir: Path
    written: tuple[Path, ...]
    skipped: tuple[str, ...]
    stale_manifests: int

    @property
    def wrote_everything(self) -> bool:
        return not self.skipped


def render_catalog(
    store_root: Path | str,
    out_dir: Path | str,
    formats: tuple[str, ...] = ("json",),
    only: tuple[str, ...] | None = None,
    cells: list[CellRuns] | None = None,
) -> RenderReport:
    """Render the figure catalog from a store into ``out_dir``.

    ``formats`` may contain ``json``, ``svg``, and ``png``; image
    formats need matplotlib and are skipped (with a note) without it.
    ``cells`` overrides manifest discovery — the queue monitor passes
    the cells of a partially drained queue here.  Rendering is
    read-only: nothing is ever simulated.
    """
    store = ResultStore(store_root)
    stale = 0
    if cells is None:
        cells, stale = cells_from_store(store_root)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    unknown = [f for f in formats if f not in ("json", "svg", "png")]
    if unknown:
        raise ValueError(
            f"unknown figure formats {unknown}; choose from json/svg/png"
        )
    image_formats = [f for f in formats if f in ("svg", "png")]
    written: list[Path] = []
    skipped: list[str] = []
    use_images = bool(image_formats)
    if use_images and not matplotlib_available():
        skipped.extend(
            f"{fmt}: matplotlib is not installed (pip install "
            "matplotlib to render images; the JSON export needs no "
            "extra dependency)"
            for fmt in image_formats
        )
        use_images = False
    specs = [
        spec
        for spec in FIGURE_CATALOG
        if only is None or spec.name in only
    ]
    if only is not None:
        unknown_figures = set(only) - {s.name for s in FIGURE_CATALOG}
        if unknown_figures:
            raise ValueError(
                f"unknown figures {sorted(unknown_figures)}; "
                f"available: {', '.join(available_figures())}"
            )
    for spec in specs:
        payload = figure_payload(store, spec, cells)
        if not payload["scenarios"]:
            skipped.append(
                f"{spec.name}: no readable cells in the store"
            )
            continue
        if "json" in formats:
            path = out_dir / f"{spec.name}.json"
            _atomic_write_bytes(path, payload_bytes(payload))
            written.append(path)
        if use_images:
            for fmt in image_formats:
                path = out_dir / f"{spec.name}.{fmt}"
                _render_matplotlib(payload, path, fmt)
                written.append(path)
    return RenderReport(
        out_dir=out_dir,
        written=tuple(written),
        skipped=tuple(skipped),
        stale_manifests=stale,
    )


def _style_axis(ax) -> None:
    ax.grid(True, color=_GRID_COLOR, linewidth=0.6)
    ax.set_axisbelow(True)
    for side in ("top", "right"):
        ax.spines[side].set_visible(False)
    for side in ("left", "bottom"):
        ax.spines[side].set_color(_TEXT_SECONDARY)
    ax.tick_params(colors=_TEXT_SECONDARY, labelsize=8)


def _subplot_grid(figure, count: int):
    cols = min(3, max(1, count))
    rows = -(-count // cols)
    figure.set_size_inches(4.2 * cols, 3.0 * rows)
    return [
        figure.add_subplot(rows, cols, index + 1)
        for index in range(count)
    ]


def _render_matplotlib(payload: dict, path: Path, fmt: str) -> None:
    """Render one figure payload to SVG/PNG, deterministically.

    Determinism levers: a fixed hashsalt (SVG ids), no Date metadata,
    fixed geometry/dpi, and colours assigned from the payload's own
    ``method_order`` (which is itself canonical).
    """
    import matplotlib

    matplotlib.use("Agg")
    from matplotlib.figure import Figure
    from matplotlib.lines import Line2D

    matplotlib.rcParams["svg.hashsalt"] = "repro-analysis"
    figure = Figure(dpi=100)
    scenarios = sorted(payload["scenarios"])
    axes = _subplot_grid(figure, len(scenarios))
    plotted = sorted(
        {
            m
            for body in payload["scenarios"].values()
            for m in body["method_order"]
        }
    )
    if payload["kind"] == "series":
        _draw_series(axes, payload, scenarios)
    elif payload["kind"] == "departures":
        _draw_departures(axes, payload, scenarios)
    else:
        _draw_delta(axes, payload, scenarios)
    handles = [
        Line2D(
            [],
            [],
            color=method_color(m),
            linewidth=2.0,
            label=m,
        )
        for m in method_order(plotted)
    ]
    figure.legend(
        handles=handles,
        loc="lower center",
        ncol=max(1, len(handles)),
        frameon=False,
        fontsize=8,
    )
    figure.suptitle(payload["title"], fontsize=11)
    figure.tight_layout(rect=(0, 0.06, 1, 0.95))
    metadata = {"Date": None} if fmt == "svg" else None
    figure.savefig(path, format=fmt, metadata=metadata)


def _clean(values: list) -> np.ndarray:
    """null → NaN, back into an array."""
    return np.asarray(
        [float("nan") if v is None else float(v) for v in values]
    )


def _draw_series(axes, payload, scenarios) -> None:
    for ax, scenario in zip(axes, scenarios):
        body = payload["scenarios"][scenario]
        times = _clean(body["times"])
        for method in body["method_order"]:
            band = body["methods"][method]
            color = method_color(method)
            mean = _clean(band["mean"])
            ci = _clean(band["ci_halfwidth"])
            ax.plot(times, mean, color=color, linewidth=1.6)
            defined = ~np.isnan(ci) & ~np.isnan(mean)
            if defined.any():
                ax.fill_between(
                    times,
                    np.where(defined, mean - ci, np.nan),
                    np.where(defined, mean + ci, np.nan),
                    color=color,
                    alpha=0.18,
                    linewidth=0,
                )
        _style_axis(ax)
        ax.set_title(scenario, fontsize=9)
        ax.set_xlabel("time (s)", fontsize=8)
        ax.set_ylabel(payload["ylabel"], fontsize=8)


def _draw_departures(axes, payload, scenarios) -> None:
    for ax, scenario in zip(axes, scenarios):
        body = payload["scenarios"][scenario]
        methods = body["method_order"]
        positions = np.arange(len(methods), dtype=float)
        width = 0.38
        for offset, kind, hatch in (
            (-width / 2, "provider", None),
            (width / 2, "consumer", "//"),
        ):
            for index, method in enumerate(methods):
                entry = body["methods"][method].get(kind)
                if entry is None:
                    continue
                color = method_color(method)
                mean = 100.0 * entry["mean"]
                ci = entry["ci_halfwidth"]
                ax.bar(
                    positions[index] + offset,
                    mean,
                    width=width * 0.92,
                    color=color,
                    hatch=hatch,
                    edgecolor="white",
                    linewidth=0.8,
                    yerr=(
                        None
                        if ci is None
                        else 100.0 * float(ci)
                    ),
                    ecolor=_TEXT_SECONDARY,
                    capsize=2,
                )
        _style_axis(ax)
        ax.set_title(
            f"{scenario}  (plain: providers, hatched: consumers)",
            fontsize=8,
        )
        ax.set_xticks(positions)
        ax.set_xticklabels(methods, fontsize=8)
        ax.set_ylabel(payload["ylabel"], fontsize=8)


def _draw_delta(axes, payload, scenarios) -> None:
    for ax, scenario in zip(axes, scenarios):
        body = payload["scenarios"][scenario]
        methods = body["method_order"]
        positions = np.arange(len(methods), dtype=float)
        values = []
        for method in methods:
            relative = body["methods"][method]["relative"]
            values.append(
                float("nan") if relative is None else 100.0 * relative
            )
        ax.barh(
            positions,
            values,
            height=0.55,
            color=[method_color(m) for m in methods],
        )
        ax.axvline(0.0, color=_TEXT_SECONDARY, linewidth=0.8)
        _style_axis(ax)
        ax.set_title(
            f"{scenario}  vs. {body['baseline']}", fontsize=9
        )
        ax.set_yticks(positions)
        ax.set_yticklabels(methods, fontsize=8)
        ax.set_xlabel("relative delta (%)", fontsize=8)
