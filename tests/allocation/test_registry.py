"""Tests for the allocation-method registry."""

from __future__ import annotations

import pytest

from repro.allocation.registry import (
    PAPER_METHODS,
    available_methods,
    build_method,
)
from repro.allocation.capacity_based import CapacityBasedMethod
from repro.allocation.mariposa import MariposaMethod
from repro.allocation.sqlb_method import SQLBMethod
from repro.simulation.config import MariposaParams, tiny_config
from dataclasses import replace


def test_paper_methods_are_registered():
    assert set(PAPER_METHODS) <= set(available_methods())


def test_builds_the_right_types(config):
    assert isinstance(build_method("sqlb", config), SQLBMethod)
    assert isinstance(build_method("capacity", config), CapacityBasedMethod)
    assert isinstance(build_method("mariposa", config), MariposaMethod)


def test_unknown_method_rejected(config):
    with pytest.raises(ValueError, match="unknown allocation method"):
        build_method("oracle", config)


def test_mariposa_takes_parameters_from_config():
    config = replace(
        tiny_config(), mariposa=MariposaParams(max_delay=99.0)
    )
    method = build_method("mariposa", config)
    assert method._max_delay == 99.0


def test_method_names_match_registry_keys(config):
    for name in ("sqlb", "capacity", "mariposa", "random", "round_robin"):
        assert build_method(name, config).name == name
