"""Contract tests every registered allocation method must satisfy.

One parameterized module runs **every** registry method through
:class:`MediatorSimulation` and asserts the shared contract:

* every selection has exactly ``min(q.n, |P_q|)`` distinct positions
  inside the candidate range (checked per query by a spy wrapper, not
  just by the engine's own validation);
* two runs with the same (config, method, seed) are bit-identical;
* satisfaction/adequation series stay in [0, 1] and utilisation stays
  non-negative.

Adding a method to the registry automatically subjects it to this suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation.base import AllocationMethod, AllocationRequest
from repro.allocation.registry import available_methods, build_method
from repro.simulation.config import tiny_config
from repro.simulation.engine import MediatorSimulation, run_simulation

ALL_METHODS = available_methods()

#: Series whose values live in the unit interval (NaN allowed: an
#: interval with no active participants or no queries has no value).
UNIT_INTERVAL_SERIES = (
    "provider_intention_satisfaction_mean",
    "provider_preference_satisfaction_mean",
    "provider_intention_adequation_mean",
    "provider_preference_adequation_mean",
    "consumer_satisfaction_mean",
    "consumer_adequation_mean",
)

#: Series that are non-negative but unbounded above (allocation
#: satisfaction is a satisfaction-to-adequation ratio; utilisation can
#: exceed 1 under overload).
NON_NEGATIVE_SERIES = (
    "consumer_allocation_satisfaction_mean",
    "provider_intention_allocation_satisfaction_mean",
    "provider_preference_allocation_satisfaction_mean",
    "utilization_mean",
)


def contract_config():
    return tiny_config(duration=60.0)


class SelectionContractSpy(AllocationMethod):
    """Delegates to a real method, auditing every selection it makes."""

    def __init__(self, inner: AllocationMethod) -> None:
        self.inner = inner
        self.name = inner.name
        self.selections_audited = 0

    def select(self, request: AllocationRequest) -> np.ndarray:
        positions = np.asarray(self.inner.select(request), dtype=np.int64)
        assert positions.size == request.n_to_select, (
            f"{self.name}: selected {positions.size}, "
            f"expected {request.n_to_select}"
        )
        assert positions.size > 0
        assert positions.min() >= 0
        assert positions.max() < request.n_candidates
        assert np.unique(positions).size == positions.size, (
            f"{self.name}: duplicate selection"
        )
        self.selections_audited += 1
        return positions

    def reset(self) -> None:
        self.inner.reset()


@pytest.mark.parametrize("method_name", ALL_METHODS)
class TestAllocationContract:
    def test_every_selection_well_formed(self, method_name):
        config = contract_config()
        spy = SelectionContractSpy(build_method(method_name, config))
        result = MediatorSimulation(config, spy, seed=9).run()
        assert spy.selections_audited == result.queries_served
        assert result.queries_served > 0

    def test_same_seed_is_bit_identical(self, method_name):
        config = contract_config()
        first = run_simulation(config, method_name, seed=7)
        second = run_simulation(config, method_name, seed=7)
        assert first.queries_issued == second.queries_issued
        assert first.queries_served == second.queries_served
        assert (
            first.response_time_post_warmup == second.response_time_post_warmup
        )
        for name in first.collector.names:
            assert np.array_equal(
                first.series(name), second.series(name), equal_nan=True
            ), name
        for name in first.final:
            assert np.array_equal(
                first.final[name],
                second.final[name],
                equal_nan=first.final[name].dtype.kind == "f",
            ), name

    def test_different_seeds_differ(self, method_name):
        config = contract_config()
        first = run_simulation(config, method_name, seed=1)
        second = run_simulation(config, method_name, seed=2)
        # The arrival process alone guarantees different trajectories.
        assert first.queries_issued != second.queries_issued or not np.array_equal(
            first.series("utilization_mean"),
            second.series("utilization_mean"),
            equal_nan=True,
        )

    def test_satisfaction_and_utilization_bounds(self, method_name):
        result = run_simulation(contract_config(), method_name, seed=9)
        for name in UNIT_INTERVAL_SERIES:
            values = result.series(name)
            finite = values[np.isfinite(values)]
            assert finite.size > 0, name
            assert (finite >= 0.0).all(), name
            assert (finite <= 1.0).all(), name
        for name in NON_NEGATIVE_SERIES:
            values = result.series(name)
            finite = values[np.isfinite(values)]
            assert finite.size > 0, name
            assert (finite >= 0.0).all(), name
        # Sanity: the whole population stayed (captive config).
        assert result.provider_departure_fraction() == 0.0
        assert result.consumer_departure_fraction() == 0.0
