"""Tests for the extension methods (KnBest and economic SQLB)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation.economic import EconomicSQLBMethod
from repro.allocation.knbest import KnBestMethod
from repro.allocation.registry import build_method
from repro.simulation.config import WorkloadSpec, tiny_config
from repro.simulation.engine import run_simulation

from tests.allocation.test_methods import make_request


class TestKnBest:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            KnBestMethod(base="vibes")
        with pytest.raises(ValueError):
            KnBestMethod(k_factor=0)
        with pytest.raises(ValueError):
            KnBestMethod(epsilon=0.0)

    def test_k_factor_one_is_deterministic_base(self):
        method = KnBestMethod(base="capacity", k_factor=1)
        request = make_request(
            capacities=[10.0, 100.0, 50.0, 20.0],
            utilizations=[0.0, 0.0, 0.0, 0.0],
        )
        assert method.select(request).tolist() == [1]

    def test_selection_stays_within_shortlist(self):
        method = KnBestMethod(base="capacity", k_factor=2)
        request = make_request(
            n_providers=6,
            capacities=[100.0, 90.0, 80.0, 1.0, 1.0, 1.0],
            utilizations=[0.0] * 6,
        )
        # Shortlist = the 2 best (K = 2·1); the tiny providers never win.
        picks = {int(method.select(request)[0]) for _ in range(50)}
        assert picks <= {0, 1}
        assert len(picks) == 2  # and the randomisation spreads

    def test_score_base_uses_intentions(self):
        method = KnBestMethod(base="score", k_factor=1)
        request = make_request(
            provider_intentions=[0.9, -0.9],
            consumer_intentions=[0.9, -0.9],
            n_providers=2,
        )
        assert method.select(request).tolist() == [0]

    def test_respects_n_desired(self):
        method = KnBestMethod(k_factor=2)
        request = make_request(n_providers=8, n_desired=3)
        selected = method.select(request)
        assert selected.size == 3
        assert np.unique(selected).size == 3

    def test_spreads_load_more_than_deterministic_base(self):
        """KnBest's purpose: fewer starved providers than the pure
        capacity ranking at equal conditions."""
        config = tiny_config(
            duration=150.0, workload=WorkloadSpec.fixed(0.5)
        )
        deterministic = run_simulation(config, "capacity", seed=9)
        knbest = run_simulation(config, "knbest", seed=9)
        starved_det = (deterministic.final["completed_counts"] == 0).sum()
        starved_kn = (knbest.final["completed_counts"] == 0).sum()
        assert starved_kn <= starved_det


class TestEconomicSQLB:
    def test_validates_spread(self):
        with pytest.raises(ValueError):
            EconomicSQLBMethod(bid_spread=1.0)

    def test_eager_provider_bids_lower(self):
        method = EconomicSQLBMethod(bid_spread=3.0)
        request = make_request(
            provider_intentions=[1.0, -1.0], n_providers=2
        )
        bids = method.bids(request)
        assert bids[0] == pytest.approx(1.0)
        assert bids[1] == pytest.approx(3.0)

    def test_bids_handle_sub_minus_one_intentions(self):
        method = EconomicSQLBMethod()
        request = make_request(
            provider_intentions=[-2.5, 0.5], n_providers=2
        )
        bids = method.bids(request)
        assert np.isfinite(bids).all()
        assert bids[0] == bids.max()

    def test_mutual_interest_wins(self):
        method = EconomicSQLBMethod()
        request = make_request(
            provider_intentions=[0.9, 0.9, -0.9],
            consumer_intentions=[0.9, -0.9, 0.9],
            n_providers=3,
        )
        assert method.select(request).tolist() == [0]

    def test_omega_shifts_weight_to_dissatisfied_provider(self):
        """Equation 6 inside the economic variant: with equal quality,
        the broker favours the cheap bid more when the provider side is
        less satisfied."""
        method = EconomicSQLBMethod()
        # Provider 0 bids cheap (eager), provider 1 offers better
        # quality; when providers are dissatisfied (ω high) price wins.
        request_price = make_request(
            provider_intentions=[0.9, -0.5],
            consumer_intentions=[0.1, 0.9],
            provider_satisfactions=[0.0, 0.0],
            consumer_satisfaction=1.0,
            n_providers=2,
        )
        assert method.select(request_price).tolist() == [0]
        # When the consumer is the dissatisfied side (ω low), quality wins.
        request_quality = make_request(
            provider_intentions=[0.9, -0.5],
            consumer_intentions=[0.1, 0.9],
            provider_satisfactions=[1.0, 1.0],
            consumer_satisfaction=0.0,
            n_providers=2,
        )
        assert method.select(request_quality).tolist() == [1]

    def test_full_simulation_runs(self):
        config = tiny_config(duration=100.0)
        result = run_simulation(config, "sqlb_econ", seed=4)
        assert result.queries_served == result.queries_issued


class TestRegistryExtensions:
    def test_extensions_are_registered(self, config):
        assert isinstance(build_method("knbest", config), KnBestMethod)
        assert isinstance(
            build_method("sqlb_econ", config), EconomicSQLBMethod
        )
        assert build_method("knbest_score", config)._base == "score"
