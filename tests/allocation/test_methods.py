"""Tests for the allocation methods against synthetic requests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation.base import AllocationRequest
from repro.allocation.capacity_based import CapacityBasedMethod
from repro.allocation.mariposa import MariposaMethod
from repro.allocation.naive import RandomMethod, RoundRobinMethod
from repro.allocation.sqlb_method import SQLBMethod
from repro.simulation.queries import Query


def make_request(
    n_providers=4,
    n_desired=1,
    provider_intentions=None,
    consumer_intentions=None,
    provider_preferences=None,
    utilizations=None,
    capacities=None,
    backlog=None,
    consumer_satisfaction=0.5,
    provider_satisfactions=None,
    seed=3,
):
    """A fully specified synthetic allocation request."""
    def default(values, fill):
        if values is None:
            return np.full(n_providers, fill, dtype=float)
        return np.asarray(values, dtype=float)

    query = Query(
        qid=0,
        consumer=0,
        klass=0,
        cost_units=130.0,
        n_desired=n_desired,
        issued_at=10.0,
    )
    return AllocationRequest(
        time=10.0,
        query=query,
        candidates=np.arange(n_providers),
        consumer_intentions=default(consumer_intentions, 0.5),
        provider_intentions=default(provider_intentions, 0.5),
        provider_preferences=default(provider_preferences, 0.5),
        utilizations=default(utilizations, 0.5),
        capacities=default(capacities, 100.0),
        backlog_seconds=default(backlog, 0.0),
        consumer_satisfaction=consumer_satisfaction,
        provider_satisfactions=default(provider_satisfactions, 0.5),
        rng=np.random.default_rng(seed),
    )


class TestRequestProperties:
    def test_n_to_select_caps_at_candidates(self):
        request = make_request(n_providers=3, n_desired=7)
        assert request.n_to_select == 3

    def test_n_to_select_honours_n_desired(self):
        request = make_request(n_providers=5, n_desired=2)
        assert request.n_to_select == 2


class TestCapacityBased:
    def test_selects_highest_available_capacity(self):
        request = make_request(
            capacities=[100.0, 100.0, 50.0, 10.0],
            utilizations=[0.9, 0.2, 0.0, 0.0],
        )
        # Available: 10, 80, 50, 10 → provider 1 wins.
        selected = CapacityBasedMethod().select(request)
        assert selected.tolist() == [1]

    def test_overloaded_provider_ranks_below_idle_small_one(self):
        request = make_request(
            capacities=[100.0, 10.0], utilizations=[1.5, 0.0]
        )
        selected = CapacityBasedMethod().select(request)
        assert selected.tolist() == [1]

    def test_ignores_intentions_entirely(self):
        request = make_request(
            provider_intentions=[-1.0, 1.0],
            consumer_intentions=[-1.0, 1.0],
            capacities=[100.0, 10.0],
            utilizations=[0.0, 0.0],
            n_providers=2,
        )
        selected = CapacityBasedMethod().select(request)
        assert selected.tolist() == [0]


class TestMariposa:
    def test_interested_provider_underbids(self):
        method = MariposaMethod()
        request = make_request(
            provider_preferences=[1.0, -1.0], utilizations=[0.0, 0.0],
            n_providers=2,
        )
        bids = method.bids(request)
        assert bids[0] < bids[1]
        assert method.select(request).tolist() == [0]

    def test_load_modifier_raises_bids(self):
        method = MariposaMethod(load_weight=1.0)
        request = make_request(
            provider_preferences=[1.0, 1.0], utilizations=[2.0, 0.0],
            n_providers=2,
        )
        assert method.select(request).tolist() == [1]

    def test_bid_curve_rejects_slow_providers(self):
        method = MariposaMethod(max_delay=5.0)
        # Provider 0 bids cheapest but has a 100 s backlog.
        request = make_request(
            provider_preferences=[1.0, 0.0],
            backlog=[100.0, 0.0],
            n_providers=2,
        )
        assert method.select(request).tolist() == [1]

    def test_backfills_when_no_bid_under_curve(self):
        method = MariposaMethod(max_delay=5.0)
        request = make_request(
            provider_preferences=[1.0, 0.0],
            backlog=[100.0, 100.0],
            n_providers=2,
        )
        # Both disqualified: cheapest (preference 1.0) still wins.
        assert method.select(request).tolist() == [0]

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            MariposaMethod(base_spread=1.0)
        with pytest.raises(ValueError):
            MariposaMethod(load_weight=-0.5)
        with pytest.raises(ValueError):
            MariposaMethod(max_delay=0.0)


class TestSQLBMethod:
    def test_delegates_to_core_allocation(self):
        request = make_request(
            provider_intentions=[0.9, 0.1],
            consumer_intentions=[0.9, 0.1],
            n_providers=2,
        )
        assert SQLBMethod().select(request).tolist() == [0]

    def test_fixed_omega_zero_follows_consumer(self):
        request = make_request(
            provider_intentions=[0.9, 0.1],
            consumer_intentions=[0.1, 0.9],
            n_providers=2,
        )
        assert SQLBMethod(fixed_omega=0.0).select(request).tolist() == [1]

    def test_validates_epsilon(self):
        with pytest.raises(ValueError):
            SQLBMethod(epsilon=0.0)


class TestNaiveMethods:
    def test_random_selects_valid_positions(self):
        request = make_request(n_providers=5, n_desired=2)
        selected = RandomMethod().select(request)
        assert selected.size == 2
        assert np.unique(selected).size == 2
        assert selected.max() < 5

    def test_round_robin_rotates(self):
        method = RoundRobinMethod()
        picks = [
            int(method.select(make_request(n_providers=3))[0])
            for _ in range(6)
        ]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_round_robin_reset(self):
        method = RoundRobinMethod()
        method.select(make_request(n_providers=3))
        method.reset()
        assert int(method.select(make_request(n_providers=3))[0]) == 0
