"""Fleet-wide trace correlation: enqueue → claim → execute → ack.

The contract under test: every telemetry event a job generates — the
queue protocol notes in the coordinating worker and the cell/run/phase
spans inside the executor — carries the *same* deterministic trace id
in ``attrs["trace"]``, asserted from the merged cross-process stream.
"""

from __future__ import annotations

import json

from repro.experiments.executor import ExperimentExecutor
from repro.experiments.store import ResultStore
from repro.scheduler.queue import WorkQueue
from repro.scheduler.worker import QueueWorker
from repro.sweeps.spec import SweepSpec
from repro.telemetry.merge import merge_events
from repro.telemetry.registry import telemetry_session
from repro.telemetry.timeline import drain_timeline

TTL = 30.0


def spec(seeds=(1, 2)) -> SweepSpec:
    return SweepSpec(
        name="trace-unit",
        scenarios=("captive_fixed_80",),
        methods=("sqlb",),
        seeds=seeds,
        scale="tiny",
    )


def drain(queue, store_path, events_dir, owner, max_jobs=None):
    """Run one worker session under its own file-backed registry."""
    with telemetry_session(events_dir):
        QueueWorker(
            queue,
            executor=ExperimentExecutor(
                workers=1, store=ResultStore(store_path)
            ),
            owner=owner,
            ttl=TTL,
            max_jobs=max_jobs,
        ).run()


class TestEnqueueMintsTraces:
    def test_job_records_carry_deterministic_trace(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        for job in queue.jobs():
            assert job.trace == queue.trace_id(job.id)
            assert len(job.trace) == 16

    def test_distinct_jobs_distinct_traces(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        traces = {job.trace for job in queue.jobs()}
        assert len(traces) == len(queue.jobs()) == 2

    def test_pre_tracing_queue_rederives_identical_id(self, tmp_path):
        # Queues written before this schema carry no "trace" key; the
        # claimer must derive the exact id enqueue would have minted.
        queue = WorkQueue.init(tmp_path / "q", spec(seeds=(1,)))
        [record_path] = queue.jobs_dir.glob("*.json")
        record = json.loads(record_path.read_text())
        expected = record.pop("trace")
        record_path.write_text(json.dumps(record))
        lease = queue.claim("w", TTL)
        assert lease.job.trace == expected


class TestTwoWorkerDrain:
    def test_every_job_event_shares_one_trace(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        expected = {job.id: job.trace for job in queue.jobs()}
        events_dir = tmp_path / "events"
        drain(queue, tmp_path / "s", events_dir, "w1", max_jobs=1)
        drain(queue, tmp_path / "s", events_dir, "w2")
        assert queue.counts().done == 2

        summary = merge_events(events_dir)
        assert summary["files"] == 2
        merged = json.loads(
            "["
            + ",".join(
                (events_dir / "merged.jsonl").read_text().splitlines()
            )
            + "]"
        )

        by_trace: dict[str, set[tuple[str, str]]] = {}
        for event in merged:
            trace = (event.get("attrs") or {}).get("trace")
            if trace is not None:
                by_trace.setdefault(trace, set()).add(
                    (event["kind"], event["name"])
                )
        assert set(by_trace) == set(expected.values())
        for job_id, trace in expected.items():
            kinds = {kind for kind, _ in by_trace[trace]}
            # Queue protocol and executor/engine spans joined by the id.
            assert "queue" in kinds
            assert "cell" in kinds
            assert "run" in kinds
            assert "phase" in kinds
            assert ("queue", "claim") in by_trace[trace]
            assert ("queue", "ack") in by_trace[trace]

    def test_timeline_correlates_the_whole_drain(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        events_dir = tmp_path / "events"
        drain(queue, tmp_path / "s", events_dir, "w1", max_jobs=1)
        drain(queue, tmp_path / "s", events_dir, "w2")
        merge_events(events_dir)
        from repro.telemetry.merge import load_stream

        timeline = drain_timeline(load_stream(events_dir))
        drain_summary = timeline["drain"]
        assert drain_summary["jobs"] == 2
        assert drain_summary["acked"] == 2
        assert drain_summary["orphan_spans"] == 0
        assert set(timeline["workers"]) == {"w1", "w2"}
        for lane in timeline["workers"].values():
            assert lane["queue_wait_s"] + lane["execute_s"] + lane[
                "idle_s"
            ] == lane["wall_s"]
            assert lane["execute_s"] > 0.0

    def test_store_hit_job_is_accounted_via_ack(self, tmp_path):
        # A warm job emits no cell span; the ack's trace/duration must
        # still land it in the timeline with zero execute seconds.
        queue = WorkQueue.init(tmp_path / "q", spec(seeds=(1,)))
        drain(queue, tmp_path / "s", tmp_path / "warmup", "w0")
        rerun = WorkQueue.init(tmp_path / "q2", spec(seeds=(1,)))
        events_dir = tmp_path / "events"
        drain(rerun, tmp_path / "s", events_dir, "w1")
        merge_events(events_dir)
        from repro.telemetry.merge import load_stream

        timeline = drain_timeline(load_stream(events_dir))
        [job] = timeline["jobs"]
        assert job["state"] == "store_hit"
        assert job["execute_s"] == 0.0
        assert timeline["drain"]["orphan_spans"] == 0


class TestDisabledTelemetry:
    def test_traced_jobs_run_silently_without_registry(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec(seeds=(1,)))
        QueueWorker(
            queue,
            executor=ExperimentExecutor(
                workers=1, store=ResultStore(tmp_path / "s")
            ),
            owner="w",
            ttl=TTL,
        ).run()
        assert queue.counts().done == 1
        assert not list(tmp_path.glob("**/events-*.jsonl"))
