"""Zero-byte telemetry husks are gc/fsck litter, never torn files."""

from __future__ import annotations

import os
import time

from repro.scheduler.fsck import fsck_queue
from repro.scheduler.queue import WorkQueue
from repro.sweeps.spec import SweepSpec


def spec() -> SweepSpec:
    return SweepSpec(
        name="husk-unit",
        scenarios=("captive_fixed_80",),
        methods=("sqlb",),
        seeds=(1,),
        scale="tiny",
    )


def make_husk(directory, age_s: float):
    path = directory / "events-host-4242-0.jsonl"
    path.touch()
    old = time.time() - age_s
    os.utime(path, (old, old))
    return path


class TestGc:
    def test_aged_husk_is_pruned(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        telemetry_dir = tmp_path / "events"
        telemetry_dir.mkdir()
        husk = make_husk(telemetry_dir, age_s=10_000.0)
        report = queue.gc(
            prune=True,
            temp_age=3600.0,
            extra_roots=(telemetry_dir,),
        )
        assert husk in report.temp_files
        assert not husk.exists()

    def test_young_husk_left_alone(self, tmp_path):
        # A just-spawned worker legitimately owns a zero-byte file
        # between mkstemp and its first flush.
        queue = WorkQueue.init(tmp_path / "q", spec())
        telemetry_dir = tmp_path / "events"
        telemetry_dir.mkdir()
        husk = make_husk(telemetry_dir, age_s=1.0)
        report = queue.gc(
            prune=True, temp_age=3600.0, extra_roots=(telemetry_dir,)
        )
        assert husk not in report.temp_files
        assert husk.exists()

    def test_aged_nonempty_events_file_is_data_not_litter(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        telemetry_dir = tmp_path / "events"
        telemetry_dir.mkdir()
        data = telemetry_dir / "events-host-4242-0.jsonl"
        data.write_text('{"v": 1}\n')
        old = time.time() - 10_000.0
        os.utime(data, (old, old))
        report = queue.gc(
            prune=True, temp_age=3600.0, extra_roots=(telemetry_dir,)
        )
        assert data not in report.temp_files
        assert data.exists()


class TestFsck:
    def test_aged_husk_in_queue_root_is_a_stale_temp(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        husk = make_husk(queue.root, age_s=10_000.0)
        report = fsck_queue(queue, repair=True)
        assert any(
            v.kind == "stale-temp" and v.subject == str(husk)
            for v in report.violations
        )
        assert not husk.exists()

    def test_young_husk_passes_fsck(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        husk = make_husk(queue.root, age_s=1.0)
        report = fsck_queue(queue, repair=True)
        assert report.clean
        assert husk.exists()
