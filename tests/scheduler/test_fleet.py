"""Tests for the fleet supervisor, driven by fake child processes."""

from __future__ import annotations

import itertools

import pytest

from repro.scheduler.fleet import (
    DEFAULT_RESTARTS_PER_CHILD,
    FleetSupervisor,
    worker_command,
)


class FakeChild:
    """A Popen stand-in whose exit is scripted.

    ``lifetime`` is how many ``poll`` calls return "still running"
    before the child reports ``exit_code``.  ``terminate`` makes the
    next ``wait``/``poll`` observe exit 0 (graceful drain), matching
    how real workers answer SIGTERM.
    """

    _pids = itertools.count(1000)

    def __init__(self, exit_code: int, lifetime: int = 0):
        self.pid = next(self._pids)
        self._exit_code = exit_code
        self._polls_left = lifetime
        self._returncode: int | None = None
        self.terminated = False

    def poll(self) -> int | None:
        if self._returncode is not None:
            return self._returncode
        if self.terminated:
            self._returncode = 0
            return 0
        if self._polls_left > 0:
            self._polls_left -= 1
            return None
        self._returncode = self._exit_code
        return self._returncode

    def terminate(self) -> None:
        self.terminated = True

    def wait(self, timeout=None) -> int:
        if self._returncode is None:
            self._returncode = 0 if self.terminated else self._exit_code
        return self._returncode


def make_spawn(scripts):
    """``scripts[index]`` is a list of FakeChild per successive attempt."""
    spawned = []

    def spawn(index, owner, attempt):
        child = scripts[index].pop(0)
        spawned.append((index, owner, attempt, child))
        return child

    spawn.spawned = spawned
    return spawn


def supervisor(spawn, count, **kwargs) -> FleetSupervisor:
    kwargs.setdefault("poll_interval", 0.0)
    kwargs.setdefault("backoff_base", 0.0)
    return FleetSupervisor(spawn, count, **kwargs)


class TestDrain:
    def test_all_children_drain(self):
        spawn = make_spawn([[FakeChild(0)], [FakeChild(0, lifetime=2)]])
        report = supervisor(spawn, 2).run()
        assert report.drained
        assert not report.parked
        assert report.restarts == 0
        assert [c.state for c in report.children] == ["drained", "drained"]
        assert [c.exit_code for c in report.children] == [0, 0]

    def test_owners_are_predictable(self):
        spawn = make_spawn([[FakeChild(0)]])
        report = supervisor(spawn, 1, owner_prefix="box").run()
        assert report.children[0].owner == "box-0"
        assert spawn.spawned[0][1] == "box-0"


class TestRestart:
    def test_crashed_child_is_restarted_then_drains(self):
        spawn = make_spawn([[FakeChild(73), FakeChild(0)]])
        report = supervisor(spawn, 1).run()
        assert report.drained
        assert report.restarts == 1
        assert report.children[0].restarts == 1
        # The respawn carried the attempt number.
        assert [entry[2] for entry in spawn.spawned] == [0, 1]

    def test_backoff_is_exponential_per_slot(self):
        spawn = make_spawn(
            [[FakeChild(1), FakeChild(1), FakeChild(1), FakeChild(0)]]
        )
        sup = supervisor(spawn, 1, backoff_base=0.001, backoff_cap=0.002)
        events = []
        sup._on_event = events.append
        report = sup.run()
        assert report.drained
        assert report.restarts == 3
        delays = [
            e.split("restarting in ")[1] for e in events if "restarting" in e
        ]
        assert delays == ["0.0s", "0.0s", "0.0s"]  # capped at 2ms

    def test_restarts_share_a_fleet_wide_budget(self):
        # Two slots, budget 1: the second crash parks the whole fleet.
        spawn = make_spawn(
            [
                [FakeChild(1), FakeChild(1)],
                [FakeChild(0, lifetime=50)],
            ]
        )
        report = supervisor(spawn, 2, restart_budget=1).run()
        assert report.parked
        assert not report.drained
        crashed = report.children[0]
        assert crashed.state == "crashed"
        assert crashed.exit_code == 1
        # The healthy survivor was terminated, not leaked.
        survivor = report.children[1]
        assert survivor.state == "parked"

    def test_default_budget_scales_with_fleet_size(self):
        spawn = make_spawn([[FakeChild(0)], [FakeChild(0)], [FakeChild(0)]])
        sup = supervisor(spawn, 3)
        assert sup.restart_budget == 3 * DEFAULT_RESTARTS_PER_CHILD


class TestPoisonEnvironment:
    def test_instant_crashers_park_instead_of_forkbombing(self):
        # Every spawn dies immediately; the supervisor must stop at
        # budget + count spawns, never loop forever.
        scripts = [[FakeChild(70) for _ in range(10)] for _ in range(2)]
        spawn = make_spawn(scripts)
        report = supervisor(spawn, 2, restart_budget=3).run()
        assert report.parked
        assert len(spawn.spawned) == 2 + 3  # initial fleet + budget
        assert report.restarts == 3

    def test_park_reports_crash_exit_code(self):
        spawn = make_spawn([[FakeChild(73)]])
        report = supervisor(spawn, 1, restart_budget=0).run()
        assert report.parked
        assert report.children[0].exit_code == 73


class TestStop:
    def test_request_stop_terminates_children_gracefully(self):
        child = FakeChild(0, lifetime=10**6)
        spawn = make_spawn([[child]])
        sup = supervisor(spawn, 1)
        sup.request_stop()
        report = sup.run()
        assert report.stopped_by_signal
        assert child.terminated
        assert report.children[0].state == "parked"
        assert report.children[0].exit_code == 0

    def test_stop_during_backoff_does_not_respawn(self):
        crashing = FakeChild(1)
        spawn = make_spawn([[crashing, FakeChild(0)]])
        sup = supervisor(spawn, 1, backoff_base=10**6)

        def stop_on_crash(message):
            if "crashed" in message:
                sup.request_stop()

        sup._on_event = stop_on_crash
        report = sup.run()
        assert report.stopped_by_signal
        assert len(spawn.spawned) == 1  # backoff slot never respawned
        assert report.children[0].state == "parked"


class TestReportShape:
    def test_payload_is_json_ready(self):
        import json

        spawn = make_spawn([[FakeChild(0)]])
        payload = json.loads(json.dumps(supervisor(spawn, 1).run().payload()))
        assert payload["drained"] is True
        assert payload["children"][0]["owner"] == "fleet-0"

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError, match="fleet size"):
            FleetSupervisor(lambda *a: None, 0)


class TestWorkerCommand:
    def test_command_shape(self):
        argv = worker_command("/q", "fleet-0", "/cache", ("--ttl", "60"))
        assert argv[1:5] == ["-m", "repro", "queue", "work"]
        assert argv[argv.index("--queue-dir") + 1] == "/q"
        assert argv[argv.index("--cache-dir") + 1] == "/cache"
        assert argv[argv.index("--owner") + 1] == "fleet-0"
        assert argv[-2:] == ["--ttl", "60"]
