"""Tests for queue monitoring: status payload, liveness, ETA, report."""

from __future__ import annotations

from repro.experiments.executor import ExperimentExecutor
from repro.experiments.store import ResultStore
from repro.scheduler.monitor import (
    format_queue_status,
    queue_report,
    queue_status,
)
from repro.scheduler.queue import WorkQueue
from repro.scheduler.worker import QueueWorker
from repro.sweeps.aggregate import format_sweep_table
from repro.sweeps.spec import SweepSpec

TTL = 30.0


def spec() -> SweepSpec:
    return SweepSpec(
        name="monitor-unit",
        scenarios=("captive_fixed_80",),
        methods=("sqlb", "capacity"),
        seeds=(1,),
        scale="tiny",
    )


def executor_for(path) -> ExperimentExecutor:
    return ExperimentExecutor(workers=1, store=ResultStore(path))


class TestQueueStatus:
    def test_fresh_queue(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        status = queue_status(queue)
        assert status["name"] == "monitor-unit"
        assert status["spec_hash"] == spec().spec_hash()
        assert status["counts"] == {
            "jobs": 2, "pending": 2, "leased": 0, "done": 0, "errors": 0,
        }
        assert not status["drained"]
        assert status["workers"] == []
        assert status["eta_seconds"] is None  # no durations yet
        assert status["adaptive"] == {"enabled": False}
        assert "manifests" not in status

    def test_worker_liveness_against_injected_now(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        queue.claim("alive", TTL, now=1000.0)
        queue.heartbeat("stale", TTL, now=0.0)
        status = queue_status(queue, now=1000.0 + TTL / 2.0)
        by_owner = {w["owner"]: w for w in status["workers"]}
        assert by_owner["alive"]["alive"]
        assert by_owner["alive"]["leases"] == 1
        assert not by_owner["stale"]["alive"]
        assert by_owner["stale"]["leases"] == 0

    def test_eta_extrapolates_mean_duration(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        lease = queue.claim("w", TTL, now=1000.0)
        queue.ack(lease, "simulated", duration_s=2.0)
        status = queue_status(queue, now=1000.0)
        # One job left, one live worker, 2 s mean duration.
        assert status["eta_seconds"] == 2.0
        # Drained queues report a zero ETA regardless of durations.
        queue.ack(queue.claim("w", TTL, now=1000.0), "simulated", 4.0)
        assert queue_status(queue, now=1000.0)["eta_seconds"] == 0.0

    def test_store_manifests_ride_along(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        executor = executor_for(tmp_path / "store")
        QueueWorker(queue, executor=executor, owner="w", ttl=TTL).run()
        status = queue_status(queue, store_root=str(tmp_path / "store"))
        [row] = status["manifests"]
        assert row["worker"] == "w"
        assert row["jobs"] == 2
        assert row["simulated"] == 2
        assert not row["stale"]

    def test_human_rendering_smoke(self, tmp_path):
        queue = WorkQueue.init(
            tmp_path / "q",
            spec(),
            adaptive={
                "ci_threshold": 0.5,
                "max_seeds": 10,
                "seed_batch": 2,
                "metric": "response_time_post_warmup",
            },
        )
        queue.claim("render", TTL)
        text = format_queue_status(queue_status(queue))
        assert "monitor-unit" in text
        assert "pending: 1" in text
        assert "render" in text
        assert "adaptive: ci_threshold=0.5s" in text


class TestQueueReport:
    def test_reports_only_completed_cells(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        executor = executor_for(tmp_path / "store")
        QueueWorker(
            queue, executor=executor, owner="w", ttl=TTL, max_jobs=1
        ).run()
        summaries = queue_report(queue, executor=executor)
        assert len(summaries) == 1  # one cell done, one still pending
        assert executor.simulations_run == 1  # report added no work

    def test_drained_queue_reports_every_cell(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        executor = executor_for(tmp_path / "store")
        QueueWorker(queue, executor=executor, owner="w", ttl=TTL).run()
        summaries = queue_report(queue, executor=executor)
        assert [(s.scenario, s.method) for s in summaries] == [
            ("captive_fixed_80", "sqlb"),
            ("captive_fixed_80", "capacity"),
        ]
        table = format_sweep_table(summaries)
        assert "captive_fixed_80" in table
        # Single-seed cells render an undefined CI, never "nan".
        assert "--" in table
        assert "nan" not in table


class TestDeadFleetEta:
    def test_no_live_workers_means_no_eta(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        lease = queue.claim("w", TTL, now=1000.0)
        queue.ack(lease, "simulated", duration_s=2.0)
        # One job outstanding, but the only worker's deadline passed.
        status = queue_status(queue, now=1000.0 + TTL * 10)
        assert status["counts"]["pending"] == 1
        assert status["eta_seconds"] is None
