"""Tests for queue maintenance: retry, gc, and mtime-clock expiry."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.scheduler.queue import WorkQueue
from repro.sweeps.spec import SweepSpec

TTL = 30.0


def spec() -> SweepSpec:
    return SweepSpec(
        name="maintenance-unit",
        scenarios=("captive_fixed_80",),
        methods=("sqlb", "capacity"),
        seeds=(1, 2),
        scale="tiny",
    )


@pytest.fixture
def queue(tmp_path) -> WorkQueue:
    return WorkQueue.init(tmp_path / "q", spec())


def park_one_error(queue: WorkQueue) -> str:
    """Claim a job and fail it past its budget; returns its id."""
    lease = queue.claim("worker-a", TTL)
    outcome = queue.fail(lease, "engine exploded", max_attempts=1)
    assert outcome == "error"
    return lease.job.id


class TestRetry:
    def test_retry_requeues_with_fresh_attempts(self, queue):
        identifier = park_one_error(queue)
        assert queue.error_records()[0]["id"] == identifier
        report = queue.retry_errors()
        assert report.requeued == (identifier,)
        assert report.skipped == ()
        # Error record gone, ticket back with a zeroed budget.
        assert not (queue.done_dir / f"{identifier}.json").exists()
        ticket = json.loads(
            (queue.pending_dir / identifier).read_text()
        )
        assert ticket == {"attempts": 0}
        # The job is claimable and completable again.
        lease = queue.claim("worker-b", TTL)
        assert lease.job.id == identifier
        queue.ack(lease, "simulated", duration_s=0.1)
        assert queue.done_records()[0]["state"] == "simulated"

    def test_retry_is_selective_by_id(self, queue):
        first = park_one_error(queue)
        second = park_one_error(queue)
        assert first != second
        report = queue.retry_errors(ids=[first])
        assert report.requeued == (first,)
        assert (queue.done_dir / f"{second}.json").exists()

    def test_retry_skips_non_error_records(self, queue):
        lease = queue.claim("worker-a", TTL)
        queue.ack(lease, "simulated", duration_s=0.1)
        report = queue.retry_errors(ids=[lease.job.id])
        assert report.requeued == ()
        assert report.skipped == (
            (lease.job.id, "done record is not an error park"),
        )

    def test_retry_unknown_id_is_reported(self, queue):
        report = queue.retry_errors(ids=["not--a--job"])
        assert report.skipped == (("not--a--job", "no error record"),)

    def test_retry_repairs_stranded_jobs(self, queue):
        # Forge the crash footprint: a ticket vanishes with no lease
        # or done record (enqueue died between its two writes).
        ticket = queue.pending_dir / os.listdir(queue.pending_dir)[0]
        identifier = ticket.name
        ticket.unlink()
        assert queue.stranded_jobs() == [identifier]
        report = queue.retry_errors()
        assert report.reticketed == (identifier,)
        assert (queue.pending_dir / identifier).exists()
        assert queue.stranded_jobs() == []


class TestGc:
    def test_clean_queue_reports_clean(self, queue):
        report = queue.gc()
        assert report.clean
        assert not report.pruned

    def test_old_temp_files_are_found_and_pruned(self, queue, tmp_path):
        stale = queue.pending_dir / ".ticket.stale123"
        stale.write_text("{}")
        old = time.time() - 7200.0
        os.utime(stale, (old, old))
        fresh = queue.done_dir / ".fresh.tmp"
        fresh.write_text("{}")  # younger than temp_age: left alone

        extra_root = tmp_path / "store"
        extra_root.mkdir()
        store_temp = extra_root / ".entry.npz.partial"
        store_temp.write_text("x")
        os.utime(store_temp, (old, old))

        report = queue.gc(extra_roots=(extra_root,))
        assert set(report.temp_files) == {stale, store_temp}
        assert stale.exists()  # listing does not remove

        pruned = queue.gc(prune=True, extra_roots=(extra_root,))
        assert pruned.pruned
        assert not stale.exists()
        assert not store_temp.exists()
        assert fresh.exists()

    def test_temp_scan_never_touches_live_records(self, queue):
        report = queue.gc(prune=True, temp_age=0.0)
        assert report.temp_files == ()
        counts = queue.counts()
        assert counts.pending == 4  # full grid intact

    def test_stale_heartbeats_are_swept_only_without_leases(self, queue):
        now = time.time()
        queue.heartbeat("dead-owner", ttl=1.0)
        queue.heartbeat("leaseholder", ttl=1.0)
        lease = queue.claim("leaseholder", TTL)
        assert lease is not None
        queue.heartbeat("leaseholder", ttl=1.0)
        # Staleness is judged by file mtime (the file server's stamp),
        # not recorded deadlines: age both files two hours.
        old = now - 7200.0
        for owner in ("dead-owner", "leaseholder"):
            path = queue.heartbeats_dir / f"{owner}.json"
            os.utime(path, (old, old))
        report = queue.gc(prune=True, now=now)
        assert report.stale_heartbeats == ("dead-owner",)
        assert not (
            queue.heartbeats_dir / "dead-owner.json"
        ).exists()
        assert (queue.heartbeats_dir / "leaseholder.json").exists()


class TestMtimeExpiry:
    def test_filesystem_now_tracks_the_clock(self, queue):
        probed = queue.filesystem_now()
        assert abs(probed - time.time()) < 60.0
        # The probe must not leave litter a queue scan could trip on.
        assert not any(
            p.name.startswith(".clockprobe")
            for p in queue.root.iterdir()
        )

    def test_mtime_clock_ignores_wall_deadlines(self, queue):
        """A skewed writer's bogus absolute deadline must not matter."""
        lease = queue.claim("skewed", TTL)
        assert lease is not None
        heartbeat_path = queue.heartbeats_dir / "skewed.json"
        # The owner's clock runs a day fast: wall deadline far in the
        # future, but the *file* was last touched over two TTLs ago.
        payload = json.loads(heartbeat_path.read_text())
        payload["deadline"] = time.time() + 86400.0
        heartbeat_path.write_text(json.dumps(payload))
        old = time.time() - 3.0 * TTL
        os.utime(heartbeat_path, (old, old))

        assert queue.requeue_expired(clock="wall") == []
        requeued = queue.requeue_expired(clock="mtime")
        assert requeued == [lease.job.id]

    def test_mtime_clock_keeps_live_leases(self, queue):
        lease = queue.claim("live-owner", TTL)
        assert lease is not None
        # Freshly written heartbeat: mtime + ttl is comfortably ahead.
        assert queue.requeue_expired(clock="mtime") == []
        assert lease.path.exists()

    def test_unknown_clock_is_refused(self, queue):
        with pytest.raises(ValueError, match="unknown expiry clock"):
            queue.requeue_expired(clock="sundial")

    def test_missing_heartbeat_expires_under_either_clock(self, queue):
        lease = queue.claim("ghost", TTL)
        assert lease is not None
        queue.retire("ghost")
        assert queue.requeue_expired(clock="mtime") == [lease.job.id]


class TestWorkerExpiryClock:
    def test_worker_validates_the_clock(self, queue):
        from repro.scheduler.worker import QueueWorker

        with pytest.raises(ValueError, match="unknown expiry clock"):
            QueueWorker(queue, expiry_clock="sundial")

    def test_worker_accepts_mtime(self, queue):
        from repro.scheduler.worker import QueueWorker

        worker = QueueWorker(queue, expiry_clock="mtime")
        assert worker.expiry_clock == "mtime"


class TestReviewRegressions:
    def test_selective_retry_of_a_stranded_id_is_not_double_reported(
        self, queue
    ):
        """A stranded id passed via --ids must be re-ticketed only,
        never also listed as skipped."""
        ticket = queue.pending_dir / os.listdir(queue.pending_dir)[0]
        identifier = ticket.name
        ticket.unlink()
        report = queue.retry_errors(ids=[identifier])
        assert report.reticketed == (identifier,)
        assert report.skipped == ()
        assert report.requeued == ()

    def test_idle_requeue_expired_skips_the_clock_probe(
        self, queue, monkeypatch
    ):
        """With no leases there is nothing to judge, so the mtime
        clock must not touch the filesystem at all."""

        def _boom(self):
            raise AssertionError("probed the clock with no leases")

        monkeypatch.setattr(WorkQueue, "filesystem_now", _boom)
        assert queue.requeue_expired(clock="mtime") == []
