"""Tests for the worker daemon: draining, crash recovery, manifests."""

from __future__ import annotations

import json
import time
import threading

import pytest

from repro.experiments.executor import ExperimentExecutor
from repro.experiments.store import ResultStore
from repro.scheduler.queue import WorkQueue
from repro.scheduler.worker import QueueWorker
from repro.simulation.engine import ENGINE_VERSION
from repro.sweeps.aggregate import format_sweep_table, sweep_summary
from repro.sweeps.runner import SweepRunner, load_manifests
from repro.sweeps.spec import SweepSpec

TTL = 30.0


def spec() -> SweepSpec:
    return SweepSpec(
        name="unit",
        scenarios=("captive_fixed_80",),
        methods=("sqlb", "capacity"),
        seeds=(1, 2),
        scale="tiny",
    )


def executor_for(path) -> ExperimentExecutor:
    return ExperimentExecutor(workers=1, store=ResultStore(path))


class TestExpiryClock:
    def test_worker_adopts_the_queue_handle_clock(self, tmp_path):
        queue = WorkQueue(
            WorkQueue.init(tmp_path / "q", spec()).root, clock="mtime"
        )
        worker = QueueWorker(queue, owner="adopter", ttl=TTL)
        assert worker.expiry_clock == "mtime"

    def test_explicit_clock_is_pushed_onto_the_handle(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        assert queue.clock == "wall"
        worker = QueueWorker(
            queue, owner="pusher", ttl=TTL, expiry_clock="mtime"
        )
        assert worker.expiry_clock == "mtime"
        # Heartbeats and scavenging must judge time the same way.
        assert queue.clock == "mtime"

    def test_unknown_clock_refused(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        with pytest.raises(ValueError, match="expiry clock"):
            QueueWorker(queue, owner="x", ttl=TTL, expiry_clock="sundial")


class TestDrain:
    def test_single_worker_drains_the_queue(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        executor = executor_for(tmp_path / "store")
        report = QueueWorker(
            queue, executor=executor, owner="solo", ttl=TTL
        ).run()
        assert report.processed == 4
        assert report.simulated == 4
        assert report.store_hits == 0
        assert queue.counts().drained
        assert executor.simulations_run == 4

    def test_worker_manifest_speaks_the_sweep_format(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        executor = executor_for(tmp_path / "store")
        report = QueueWorker(
            queue, executor=executor, owner="manifesto", ttl=TTL
        ).run()
        manifest = json.loads(report.manifest_path.read_text())
        assert manifest["format"] == 1
        assert manifest["worker"] == "manifesto"
        assert manifest["spec_hash"] == spec().spec_hash()
        assert manifest["engine_version"] == ENGINE_VERSION
        assert len(manifest["jobs"]) == 4
        for entry in manifest["jobs"]:
            assert entry["state"] == "simulated"
            assert len(entry["key"]) == 64
        # load_manifests accepts it alongside shard manifests.
        [loaded] = load_manifests(tmp_path / "store")
        assert loaded["worker"] == "manifesto"

    def test_max_jobs_bounds_a_session(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        executor = executor_for(tmp_path / "store")
        report = QueueWorker(
            queue, executor=executor, owner="bounded", ttl=TTL, max_jobs=1
        ).run()
        assert report.processed == 1
        assert queue.counts().done == 1
        assert queue.counts().pending == 3

    def test_storeless_executor_is_rejected(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        with pytest.raises(ValueError, match="store"):
            QueueWorker(queue, executor=ExperimentExecutor(workers=1)).run()

    def test_request_stop_exits_before_claiming(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        worker = QueueWorker(
            queue, executor=executor_for(tmp_path / "store"), owner="stopme"
        )
        worker.request_stop()
        report = worker.run()
        assert report.processed == 0
        assert report.stopped_by_signal
        assert queue.counts().pending == 4


class TestConcurrentWorkers:
    def test_two_workers_split_the_queue_without_duplicates(self, tmp_path):
        """Acceptance: two concurrent workers drain a queued sweep with
        zero duplicate simulations (store-hit dedupe)."""
        queue = WorkQueue.init(tmp_path / "q", spec())
        executors = [
            executor_for(tmp_path / "store"),
            executor_for(tmp_path / "store"),
        ]
        reports = [None, None]

        def drain(index: int) -> None:
            reports[index] = QueueWorker(
                queue,
                executor=executors[index],
                owner=f"worker-{index}",
                ttl=TTL,
            ).run()

        threads = [
            threading.Thread(target=drain, args=(i,)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert queue.counts().drained
        assert queue.counts().done == 4
        total_simulated = sum(e.simulations_run for e in executors)
        assert total_simulated == 4  # every job exactly once
        assert sum(r.processed for r in reports) == 4
        # Each worker that did work left its own manifest.
        manifests = load_manifests(tmp_path / "store")
        assert sum(len(m["jobs"]) for m in manifests) == 4

    def test_queue_store_reports_identically_to_static_shard(self, tmp_path):
        """Acceptance: `sweep report` over a queue-produced store is
        byte-identical to the same sweep run via static shard 1/1."""
        queue = WorkQueue.init(tmp_path / "q", spec())
        queue_executor = executor_for(tmp_path / "queue-store")
        QueueWorker(queue, executor=queue_executor, owner="q", ttl=TTL).run()
        assert queue_executor.simulations_run == 4
        queue_table = format_sweep_table(
            sweep_summary(spec(), executor=queue_executor)
        )
        # The report itself came entirely from the store.
        assert queue_executor.simulations_run == 4

        shard_executor = executor_for(tmp_path / "shard-store")
        SweepRunner(shard_executor).run_shard(spec(), 0, 1)
        shard_table = format_sweep_table(
            sweep_summary(spec(), executor=shard_executor)
        )
        assert queue_table == shard_table


class TestCrashRecovery:
    def test_expired_lease_is_requeued_and_deduped_by_the_store(
        self, tmp_path
    ):
        """Satellite: kill a worker mid-lease (simulated by an expired
        lease), assert the job is requeued, re-executed, and the result
        store dedupes the work to zero extra simulations."""
        # A first worker drains the whole queue into the shared store.
        warm_queue = WorkQueue.init(tmp_path / "q1", spec())
        first = executor_for(tmp_path / "store")
        QueueWorker(warm_queue, executor=first, owner="first", ttl=TTL).run()
        assert first.simulations_run == 4

        # Same sweep, fresh queue: a worker claims a job and "dies"
        # (its heartbeat deadline is already in the past).
        queue = WorkQueue.init(tmp_path / "q2", spec())
        dead_lease = queue.claim("dead-worker", TTL, now=0.0)
        assert dead_lease is not None
        assert queue.counts().leased == 1

        survivor_executor = executor_for(tmp_path / "store")
        report = QueueWorker(
            queue, executor=survivor_executor, owner="survivor", ttl=TTL
        ).run()

        # The survivor scavenged the dead worker's lease and ran
        # everything — but the store already had every result, so the
        # recovery cost zero extra simulations.
        assert report.requeued == 1
        assert report.processed == 4
        assert report.store_hits == 4
        assert report.simulated == 0
        assert survivor_executor.simulations_run == 0
        assert queue.counts().drained
        ticket_attempts = [
            record for record in queue.done_records()
            if record["id"] == dead_lease.job.id
        ]
        assert ticket_attempts[0]["owner"] == "survivor"


class TestOwnerSanitisation:
    def test_unsafe_owner_drains_and_writes_a_manifest(self, tmp_path):
        """An owner id needing sanitisation must not crash the manifest
        write at session end, and liveness joins on one spelling."""
        from repro.scheduler.monitor import queue_status

        queue = WorkQueue.init(tmp_path / "q", spec())
        executor = executor_for(tmp_path / "store")
        worker = QueueWorker(
            queue, executor=executor, owner="ci/a b", ttl=TTL, max_jobs=1
        )
        assert worker.owner == "ci-a-b"
        report = worker.run()
        assert report.processed == 1
        assert report.manifest_path.is_file()
        assert "ci-a-b" in report.manifest_path.name
        # While alive (heartbeat published directly), liveness joins on
        # the sanitised spelling the lease filenames use.
        queue.heartbeat("ci/a b", TTL)
        status = queue_status(queue)
        [w] = [x for x in status["workers"] if x["owner"] == "ci-a-b"]
        assert w["alive"]


class _ExplodingExecutor(ExperimentExecutor):
    """Raises on every execution — a worst-case poison queue."""

    def run_detailed(self, jobs):
        raise RuntimeError("boom")


class TestPoisonJobs:
    def test_failing_jobs_are_bounded_not_crash_looped(self, tmp_path):
        """An execution that raises must not kill the worker; the job
        retries up to max_attempts, then parks as an error record."""
        queue = WorkQueue.init(tmp_path / "q", spec())
        exploding = _ExplodingExecutor(
            workers=1, store=ResultStore(tmp_path / "store")
        )
        report = QueueWorker(
            queue, executor=exploding, owner="victim", ttl=TTL,
            max_attempts=2,
        ).run()
        # Every job failed once (attempts=1, requeued) and once more
        # (attempts=2 = budget, parked); the worker survived to drain.
        assert report.processed == 0
        assert report.failed == 8  # 4 jobs x 2 attempts
        assert report.manifest_path is None
        counts = queue.counts()
        assert counts.drained
        assert counts.done == 4
        for record in queue.done_records():
            assert record["state"] == "error"
            assert record["attempts"] == 2
            assert "RuntimeError: boom" in record["error"]

    def test_error_records_do_not_poison_the_report(self, tmp_path):
        from repro.scheduler.monitor import queue_report, queue_status

        queue = WorkQueue.init(tmp_path / "q", spec())
        exploding = _ExplodingExecutor(
            workers=1, store=ResultStore(tmp_path / "store")
        )
        QueueWorker(
            queue, executor=exploding, owner="victim", ttl=TTL,
            max_attempts=1,
        ).run()
        assert queue_status(queue)["counts"]["errors"] == 4
        assert queue_report(
            queue, executor=executor_for(tmp_path / "store")
        ) == []


class TestManifestSessions:
    def test_sessions_with_one_owner_keep_separate_manifests(self, tmp_path):
        """Cron-style re-runs under a fixed --owner must append a new
        manifest per session, not overwrite the previous one."""
        queue = WorkQueue.init(tmp_path / "q", spec())
        executor = executor_for(tmp_path / "store")
        first = QueueWorker(
            queue, executor=executor, owner="box1", ttl=TTL, max_jobs=3
        ).run()
        second = QueueWorker(
            queue, executor=executor, owner="box1", ttl=TTL
        ).run()
        assert first.manifest_path != second.manifest_path
        manifests = load_manifests(tmp_path / "store")
        assert len(manifests) == 2
        assert sum(len(m["jobs"]) for m in manifests) == 4


class TestReportStoreGuard:
    def test_report_refuses_a_store_missing_the_done_work(self, tmp_path):
        from repro.scheduler.monitor import queue_report

        queue = WorkQueue.init(tmp_path / "q", spec())
        QueueWorker(
            queue, executor=executor_for(tmp_path / "store"), ttl=TTL
        ).run()
        wrong_store = executor_for(tmp_path / "typo")
        with pytest.raises(ValueError, match="absent from the store"):
            queue_report(queue, executor=wrong_store)
        with pytest.raises(ValueError, match="store"):
            queue_report(queue, executor=ExperimentExecutor(workers=1))


class TestHeartbeatRetirement:
    def test_exited_worker_is_not_reported_alive(self, tmp_path):
        from repro.scheduler.monitor import queue_status

        queue = WorkQueue.init(tmp_path / "q", spec())
        QueueWorker(
            queue, executor=executor_for(tmp_path / "store"),
            owner="brief", ttl=TTL, max_jobs=1,
        ).run()
        assert all(
            b["owner"] != "brief" for b in queue.heartbeats()
        )
        assert queue_status(queue)["workers"] == []

    def test_exit_keeps_the_heartbeat_while_a_peer_holds_a_lease(
        self, tmp_path
    ):
        """A session sharing --owner with a mid-simulation peer must
        not delete the shared liveness on exit."""
        queue = WorkQueue.init(tmp_path / "q", spec())
        # The "peer": a lease held under the same owner id.
        queue.claim("shared", TTL)
        QueueWorker(
            queue, executor=executor_for(tmp_path / "store"),
            owner="shared", ttl=TTL, max_jobs=1,
        ).run()
        assert any(b["owner"] == "shared" for b in queue.heartbeats())
        # With no lease outstanding, exit retires the heartbeat.
        queue2 = WorkQueue.init(tmp_path / "q2", spec())
        QueueWorker(
            queue2, executor=executor_for(tmp_path / "store"),
            owner="alone", ttl=TTL, max_jobs=1,
        ).run()
        assert all(b["owner"] != "alone" for b in queue2.heartbeats())

    def test_max_jobs_counts_failed_attempts(self, tmp_path):
        """A bounded session must not spend extra executions on a
        poison job beyond its budget."""
        queue = WorkQueue.init(tmp_path / "q", spec())
        exploding = _ExplodingExecutor(
            workers=1, store=ResultStore(tmp_path / "store")
        )
        report = QueueWorker(
            queue, executor=exploding, owner="budget", ttl=TTL,
            max_jobs=2, max_attempts=5,
        ).run()
        assert report.processed + report.failed == 2

class TestHeartbeatLoss:
    """The _Heartbeater gives up after its failure budget, visibly."""

    def test_transient_misses_recover_and_reset(self, tmp_path):
        from repro.scheduler.worker import _Heartbeater

        queue = WorkQueue.init(tmp_path / "q", spec())
        beater = _Heartbeater(queue, "hb", ttl=0.03)
        fails = {"left": 2}
        real = queue.heartbeat

        def flaky(owner, ttl, now=None):
            if fails["left"] > 0:
                fails["left"] -= 1
                raise OSError("transient")
            real(owner, ttl, now)

        queue.heartbeat = flaky
        beater.start()
        deadline = time.time() + 10.0
        while fails["left"] > 0 and time.time() < deadline:
            time.sleep(0.01)
        time.sleep(0.1)  # one successful renewal after the faults
        beater.stop()
        beater.join(timeout=10.0)
        assert beater.consecutive_misses == 0  # reset on success
        assert any(b["owner"] == "hb" for b in queue.heartbeats())

    def test_budget_exhaustion_invokes_on_failure_once(self, tmp_path):
        from repro.scheduler.worker import _Heartbeater

        queue = WorkQueue.init(tmp_path / "q", spec())

        def always_fails(owner, ttl, now=None):
            raise OSError("dead mount")

        queue.heartbeat = always_fails
        lost = []
        beater = _Heartbeater(
            queue, "hb", ttl=0.03, on_failure=lambda: lost.append(1)
        )
        # retry_io sleeps for real inside the renewal; shrink the pain
        # by patching the retry budget down via ttl (ttl/3 cadence) and
        # waiting generously.
        beater.start()
        beater.join(timeout=60.0)
        assert not beater.is_alive()  # gave up on its own
        assert lost == [1]
        assert (
            beater.consecutive_misses == beater.MAX_CONSECUTIVE_MISSES
        )

    def test_heartbeat_lost_stamps_counters_and_stops(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        worker = QueueWorker(
            queue,
            executor=executor_for(tmp_path / "store"),
            owner="zombie",
            ttl=TTL,
        )
        worker._last_counters = {"processed": 3}
        worker._heartbeat_lost()
        assert worker._stop_requested
        snapshot = queue.worker_counters()["zombie"]
        assert snapshot["heartbeat_lost"] is True
        assert snapshot["processed"] == 3
